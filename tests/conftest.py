"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsl import Eq, Function, Grid, SparseTimeFunction, TimeFunction, solve
from repro.ir import Operator


@pytest.fixture
def grid3d():
    return Grid(shape=(12, 11, 10), extent=(110.0, 100.0, 90.0))


@pytest.fixture
def grid2d():
    return Grid(shape=(14, 12), extent=(130.0, 110.0))


@pytest.fixture
def grid1d():
    return Grid(shape=(32,), extent=(310.0,))


def make_acoustic_operator(grid, so=4, nt=10, src_coords=None, rec_coords=None, seed=7):
    """A fully-populated acoustic operator on *grid* with off-grid sparse ops."""
    rng = np.random.default_rng(seed)
    u = TimeFunction("u", grid, time_order=2, space_order=so)
    m = Function("m", grid, space_order=so)
    m.data = (1.0 / 1.5**2) * (1.0 + 0.05 * rng.random(grid.shape))
    update = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))

    sparse = []
    src = rec = None
    lo = np.asarray(grid.origin)
    hi = lo + np.asarray(grid.extent)
    if src_coords is None:
        src_coords = lo + (hi - lo) * rng.uniform(0.2, 0.8, size=(2, grid.ndim))
    if src_coords is not False:
        src = SparseTimeFunction("src", grid, npoint=len(src_coords), nt=nt + 1,
                                 coordinates=np.asarray(src_coords))
        t = np.arange(nt + 1)
        src.data[:] = (np.sin(0.9 * t)[:, None] + 0.3) * rng.uniform(0.5, 1.5, src.npoint)
        dt_sym = grid.stepping_dim.spacing
        sparse.append(src.inject(u, expr=dt_sym**2 / m))
    if rec_coords is None:
        rec_coords = lo + (hi - lo) * rng.uniform(0.15, 0.85, size=(3, grid.ndim))
    if rec_coords is not False:
        rec = SparseTimeFunction("rec", grid, npoint=len(rec_coords), nt=nt + 1,
                                 coordinates=np.asarray(rec_coords))
        sparse.append(rec.interpolate(u))
    op = Operator([update], sparse=sparse, name="acoustic-test")
    return op, u, m, src, rec


def run_and_capture(op, u, rec, nt, dt, schedule, sparse_mode="auto", engine=None):
    """Zero state, run, return (final wavefield copy, receiver copy)."""
    u.data_with_halo[...] = 0.0
    if rec is not None:
        rec.data[...] = 0.0
    op.apply(time_M=nt, dt=dt, schedule=schedule, sparse_mode=sparse_mode, engine=engine)
    return u.interior(nt).copy(), (rec.data.copy() if rec is not None else None)
