"""Tests for machine specs and the cache-aware roofline."""

import pytest

from repro.core import SpatialBlockSchedule, WavefrontSchedule
from repro.machine import (
    BROADWELL,
    GridGeometry,
    MACHINES,
    PerformanceModel,
    SKYLAKE,
    SourceLoad,
)
from repro.machine.roofline import render_roofline, roofline_points
from repro.machine.spec import CacheLevel, MachineSpec

from .test_kernels import make_spec


# -- specs ------------------------------------------------------------------------
def test_paper_cache_sizes():
    """§IV-A: the exact hierarchy the paper describes."""
    assert BROADWELL.l1.size_bytes == 32 * 1024
    assert BROADWELL.l2.size_bytes == 256 * 1024
    assert BROADWELL.l3.size_bytes == 50 * 1024 * 1024
    assert BROADWELL.cores == 8
    assert SKYLAKE.l2.size_bytes == 1024 * 1024
    assert SKYLAKE.l3.size_bytes == int(35.75 * 1024 * 1024)
    assert SKYLAKE.cores == 16


def test_peak_flops():
    # 8 cores * 2.3 GHz * 8 lanes * 4 = 588.8 GF
    assert BROADWELL.peak_gflops == pytest.approx(588.8)
    assert SKYLAKE.peak_gflops > BROADWELL.peak_gflops
    assert BROADWELL.sustained_gflops < BROADWELL.peak_gflops


def test_levels_listing():
    names = [n for n, _ in BROADWELL.levels()]
    assert names == ["L1", "L2", "L3", "DRAM"]


def test_registry():
    assert set(MACHINES) == {"broadwell", "skylake"}


def test_cache_level_validation():
    with pytest.raises(ValueError):
        CacheLevel("bad", 0, 10.0)
    with pytest.raises(ValueError):
        CacheLevel("bad", 1024, -1.0)


def test_effective_bytes():
    lvl = CacheLevel("L", 1000, 10.0, effective_fraction=0.5)
    assert lvl.effective_bytes == 500


# -- roofline ------------------------------------------------------------------------
@pytest.fixture(scope="module")
def points():
    pm = PerformanceModel(
        make_spec("acoustic", 4), BROADWELL,
        GridGeometry((512, 512, 512), 100), SourceLoad(),
    )
    return roofline_points(pm, {
        "spatial": SpatialBlockSchedule(block=(8, 8)),
        "wtb": WavefrontSchedule(tile=(48, 48), block=(8, 8), height=2),
    })


def test_roofline_ai_per_level(points):
    sp = next(p for p in points if p.label == "spatial")
    # AI grows toward DRAM (less traffic further out)
    assert sp.ai["DRAM"] > sp.ai["L1"]


def test_wtb_raises_dram_ai(points):
    sp = next(p for p in points if p.label == "spatial")
    wf = next(p for p in points if p.label == "wtb")
    assert wf.ai["DRAM"] > 1.5 * sp.ai["DRAM"]
    assert wf.gflops > sp.gflops


def test_achieved_below_limiting_ceiling(points):
    for p in points:
        _, ceil = p.limiting_ceiling()
        assert p.gflops <= ceil * 1.01


def test_render_roofline(points):
    text = render_roofline(points, machine_name="broadwell")
    assert "broadwell" in text
    assert "AI@DRAM" in text
    assert "spatial" in text and "wtb" in text
