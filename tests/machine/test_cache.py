"""Unit tests for the LRU / set-associative cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheHierarchy, LRUCache, SetAssociativeCache


# -- fully-associative LRU ----------------------------------------------------------
def test_lru_hit_after_install():
    c = LRUCache(4)
    assert not c.access(1)
    assert c.access(1)
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    c = LRUCache(2)
    c.access(1)
    c.access(2)
    c.access(3)  # evicts 1
    assert not c.contains(1)
    assert c.contains(2) and c.contains(3)
    assert c.evictions == 1


def test_lru_touch_refreshes_recency():
    c = LRUCache(2)
    c.access(1)
    c.access(2)
    c.access(1)  # 2 is now LRU
    c.access(3)  # evicts 2
    assert c.contains(1) and not c.contains(2)


def test_lru_capacity_validation():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_lru_reset():
    c = LRUCache(2)
    c.access(1)
    c.reset_counters()
    assert c.hits == c.misses == c.evictions == 0
    assert c.contains(1)  # content kept


@given(
    capacity=st.integers(1, 16),
    stream=st.lists(st.integers(0, 30), min_size=1, max_size=200),
)
@settings(max_examples=40, deadline=None)
def test_lru_invariants(capacity, stream):
    c = LRUCache(capacity)
    for x in stream:
        c.access(x)
    assert len(c) <= capacity
    assert c.hits + c.misses == len(stream)
    # a working set that fits never misses after the first pass
    distinct = set(stream)
    if len(distinct) <= capacity:
        c.reset_counters()
        for x in stream:
            c.access(x)
        assert c.misses == 0


# -- set-associative -------------------------------------------------------------------
def test_setassoc_conflict_misses():
    c = SetAssociativeCache(capacity=4, ways=1)  # 4 direct-mapped sets
    c.access(0)
    c.access(4)  # same set (mod 4): conflict
    assert not c.contains(0)
    assert c.evictions == 1


def test_setassoc_ways_prevent_conflict():
    c = SetAssociativeCache(capacity=8, ways=2)
    c.access(0)
    c.access(4)
    assert c.contains(0) and c.contains(4)


def test_setassoc_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(capacity=2, ways=4)


# -- hierarchy ----------------------------------------------------------------------------
def test_hierarchy_inclusive_install():
    h = CacheHierarchy([("L1", 2), ("L2", 8)], chunk_bytes=64)
    assert h.access(1) == "memory"
    assert h.access(1) == "L1"
    # push 1 out of L1 but keep in L2
    h.access(2)
    h.access(3)
    assert h.access(1) == "L2"


def test_hierarchy_stats_traffic():
    h = CacheHierarchy([("L1", 2), ("L2", 8)], chunk_bytes=32)
    for x in (1, 2, 3, 1):
        h.access(x)
    s = h.stats()
    assert s.accesses == 4
    assert s.memory_fetches == 3
    assert s.traffic_bytes("memory") == 3 * 32
    assert s.level_hits["L2"] + s.level_hits["L1"] == 1


def test_hierarchy_reset():
    h = CacheHierarchy([("L1", 2)])
    h.access(1)
    h.reset()
    assert h.stats().accesses == 0
    # contents survive the counter reset (warm cache)
    assert h.access(1) == "L1"


def test_hierarchy_requires_levels():
    with pytest.raises(ValueError):
        CacheHierarchy([])


@given(stream=st.lists(st.integers(0, 50), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_hierarchy_accounting_consistent(stream):
    h = CacheHierarchy([("L1", 4), ("L2", 16)])
    h.access_many(stream)
    s = h.stats()
    assert s.accesses == len(stream)
    assert s.memory_fetches + sum(s.level_hits.values()) == len(stream)
