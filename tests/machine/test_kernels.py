"""Tests for KernelSpec extraction from symbolic operators."""

import pytest

from repro.machine import KernelSpec
from repro.propagators import (
    AcousticPropagator,
    ElasticPropagator,
    SeismicModel,
    TTIPropagator,
    layered_velocity,
)

SHAPE = (12, 12, 12)


def make_spec(kind, so):
    vp = layered_velocity(SHAPE, 1.5, 3.0, 2)
    kwargs = {}
    if kind == "tti":
        kwargs = dict(epsilon=0.1, delta=0.05, theta=0.3, phi=0.2)
    if kind == "elastic":
        kwargs = dict(rho=2.0, vs=vp / 1.8)
    model = SeismicModel(SHAPE, (10.0,) * 3, vp, nbl=3, space_order=so, **kwargs)
    cls = {"acoustic": AcousticPropagator, "tti": TTIPropagator, "elastic": ElasticPropagator}[kind]
    return KernelSpec.from_operator(cls(model, space_order=so).op)


def test_acoustic_spec_shape():
    spec = make_spec("acoustic", 8)
    assert len(spec.sweeps) == 1
    (sweep,) = spec.sweeps
    assert sweep.radius == 4
    names = {s.name for s in sweep.reads}
    assert names == {"u@0", "u@-1", "m", "damp"}
    u0 = next(s for s in sweep.reads if s.name == "u@0")
    assert u0.radius == 4 and u0.buffers == 3
    assert sweep.writes == 1
    # state: u 3 buffers + m + damp = 5 slices x 4 B
    assert spec.state_bytes_per_point == 20.0
    assert spec.retained_bytes_per_point == 16.0


def test_acoustic_angle_scales_with_order():
    assert make_spec("acoustic", 4).angle == 2
    assert make_spec("acoustic", 12).angle == 6


def test_elastic_spec_two_sweeps():
    spec = make_spec("elastic", 4)
    assert len(spec.sweeps) == 2
    assert [s.radius for s in spec.sweeps] == [2, 2]
    assert spec.angle == 4
    # 9 time fields x 2 buffers + b, lam, mu, damp
    assert spec.state_bytes_per_point == 9 * 2 * 4 + 4 * 4
    v_sweep, tau_sweep = spec.sweeps
    assert v_sweep.writes == 3 and tau_sweep.writes == 6


def test_tti_spec_two_sweeps():
    spec = make_spec("tti", 4)
    assert len(spec.sweeps) == 2
    # temporaries sweep first (radius so//4), update sweep radius so//2
    assert [s.radius for s in spec.sweeps] == [1, 2]
    assert spec.angle == 3


def test_lag_span():
    spec = make_spec("acoustic", 4)
    assert spec.lag_span(1) == 0
    assert spec.lag_span(4) == 6
    elastic = make_spec("elastic", 4)
    assert elastic.lag_span(2) == 2 * 4 - 2


def test_flops_monotone_in_order():
    f4 = make_spec("acoustic", 4).flops_per_point_step
    f12 = make_spec("acoustic", 12).flops_per_point_step
    assert f12 > f4 > 0


def test_flops_ordering_across_kernels():
    """TTI and elastic cost far more per point than acoustic (§III)."""
    a = make_spec("acoustic", 8).flops_per_point_step
    t = make_spec("tti", 8).flops_per_point_step
    e = make_spec("elastic", 8).flops_per_point_step
    assert t > 2 * a
    assert e > 2 * a


def test_concurrency_extraction():
    assert make_spec("acoustic", 4).sweeps[0].concurrency == 1
    elastic = make_spec("elastic", 4)
    assert elastic.sweeps[0].concurrency == 3  # each v-eq reads 3 stress slices


def test_accesses_counts():
    spec = make_spec("acoustic", 4)
    # 13-pt star + u@-1 + m + damp (m twice: update and source scale are
    # separate) -> at least 16 reads + 1 write
    assert spec.accesses_per_step >= 17
