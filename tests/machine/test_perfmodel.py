"""Tests for the analytical performance model."""

import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.machine import (
    BROADWELL,
    GridGeometry,
    KernelSpec,
    PerformanceModel,
    SKYLAKE,
    SourceLoad,
)

from .test_kernels import make_spec

GEO = GridGeometry((512, 512, 512), 100)


@pytest.fixture(scope="module")
def acoustic4():
    return make_spec("acoustic", 4)


@pytest.fixture(scope="module")
def model(acoustic4):
    return PerformanceModel(acoustic4, BROADWELL, GEO, SourceLoad())


def test_spatial_is_dram_bound(model):
    res = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    assert res.bound == "DRAM"
    assert res.feasible
    assert res.gpoints_s > 0 and res.gflops > 0


def test_traffic_hierarchy_ordering(model):
    """Inner levels move at least as many bytes as outer ones."""
    res = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    t = res.traffic_bytes_ppt
    assert t["L1"] >= t["L2"] >= t["DRAM"] * 0.99


def test_wavefront_cuts_dram_traffic(model):
    base = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    wf = model.evaluate(WavefrontSchedule(tile=(32, 32), block=(8, 8), height=4))
    assert wf.traffic_bytes_ppt["DRAM"] < 0.6 * base.traffic_bytes_ppt["DRAM"]
    assert wf.time_s < base.time_s


def test_height_one_degenerates_to_spatial(model):
    base = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    wf1 = model.evaluate(WavefrontSchedule(tile=(32, 32), block=(8, 8), height=1))
    # identical stencil traffic; only the sparse-operator path differs
    # (precomputed vs off-grid), which is sub-percent for one source
    assert wf1.time_s == pytest.approx(base.time_s, rel=0.01)


def test_oversized_tile_infeasible(model):
    wf = model.evaluate(WavefrontSchedule(tile=(2048, 2048), block=(8, 8), height=16))
    assert not wf.feasible
    # the infeasible penalty makes it no better than the baseline
    base = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    assert wf.time_s >= base.time_s * 0.99


def test_skew_overhead_grows_with_height(model):
    t16 = model.evaluate(WavefrontSchedule(tile=(16, 16), block=(8, 8), height=2))
    t16_tall = model.evaluate(WavefrontSchedule(tile=(16, 16), block=(8, 8), height=12))
    # tiny tile + tall wavefront: skew eats the reuse
    assert t16_tall.traffic_bytes_ppt["L3"] > t16.traffic_bytes_ppt["L3"]


def test_speedup_shrinks_with_space_order():
    sp = {}
    for so in (4, 8, 12):
        pm = PerformanceModel(make_spec("acoustic", so), BROADWELL, GEO, SourceLoad())
        sp[so] = pm.speedup(WavefrontSchedule(tile=(48, 48), block=(8, 8), height=2))
    assert sp[4] > sp[8] > sp[12] - 1e-9


def test_naive_never_faster_than_blocked(model):
    naive = model.evaluate(NaiveSchedule())
    blocked = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    assert naive.time_s >= blocked.time_s * 0.999


def test_machines_differ(acoustic4):
    b = PerformanceModel(acoustic4, BROADWELL, GEO, SourceLoad())
    s = PerformanceModel(acoustic4, SKYLAKE, GEO, SourceLoad())
    base_b = b.evaluate(SpatialBlockSchedule(block=(8, 8)))
    base_s = s.evaluate(SpatialBlockSchedule(block=(8, 8)))
    assert base_s.gpoints_s > base_b.gpoints_s  # more cores + bandwidth


def test_sparse_overhead_dense_sources(acoustic4):
    dense = SourceLoad(nsources=10**6, npts=5 * 10**7, corners=8,
                       occupied_pencils=250000)
    pm_dense = PerformanceModel(acoustic4, BROADWELL, GEO, dense)
    pm_single = PerformanceModel(acoustic4, BROADWELL, GEO, SourceLoad())
    sched = WavefrontSchedule(tile=(48, 48), block=(8, 8), height=2)
    assert pm_dense.speedup(sched) < pm_single.speedup(sched)


def test_no_sources_no_overhead(acoustic4):
    pm = PerformanceModel(acoustic4, BROADWELL, GEO, None)
    res = pm.evaluate(SpatialBlockSchedule(block=(8, 8)))
    pm2 = PerformanceModel(acoustic4, BROADWELL, GEO, SourceLoad())
    res2 = pm2.evaluate(SpatialBlockSchedule(block=(8, 8)))
    assert res.time_s <= res2.time_s


def test_working_set_scales(model):
    small = model.wavefront_working_set(WavefrontSchedule(tile=(16, 16), height=4))
    big = model.wavefront_working_set(WavefrontSchedule(tile=(64, 64), height=4))
    assert big > small


def test_max_feasible_height(model):
    h_small = model.max_feasible_height((256, 256))
    h_big = model.max_feasible_height((16, 16))
    assert h_big >= h_small >= 1


def test_occupancy_reported(model):
    res = model.evaluate(SpatialBlockSchedule(block=(8, 8)))
    assert set(res.occupancy_ns_ppt) == {"compute", "L1", "L2", "L3", "DRAM"}
    assert res.occupancy_ns_ppt[res.bound] == max(res.occupancy_ns_ppt.values())
