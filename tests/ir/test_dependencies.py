"""Unit tests for dependence analysis: sweeps, radii, wavefront lags."""

import pytest

from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.ir.dependencies import (
    build_sweeps,
    read_accesses,
    spatial_read_radius,
    validate_wavefront,
    wavefront_angle,
    wavefront_lags,
    written_access,
)


@pytest.fixture
def grid():
    return Grid(shape=(10, 10, 10))


def _forward_in_time(expr, grid):
    """Shift every access of *expr* one step forward in time."""
    from repro.dsl.symbols import Indexed

    return expr.subs({ix: ix.shift(grid.stepping_dim, 1) for ix in expr.atoms(Indexed)})


def acoustic_eq(grid, so=4):
    u = TimeFunction("u", grid, time_order=2, space_order=so)
    m = Function("m", grid, space_order=so)
    return Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward)), u, m


# -- access classification ----------------------------------------------------------
def test_written_access(grid):
    eq, u, m = acoustic_eq(grid)
    w = written_access(eq)
    assert w.function is u and w.time_offset == 1 and w.radius == 0


def test_read_accesses_radii(grid):
    eq, u, m = acoustic_eq(grid, so=8)
    radii = {a.radius for a in read_accesses(eq) if a.function is u}
    assert max(radii) == 4
    assert spatial_read_radius(eq) == 4


def test_radius_along(grid):
    eq, u, m = acoustic_eq(grid, so=4)
    xs = [a.radius_along("x") for a in read_accesses(eq)]
    assert max(xs) == 2


# -- sweep construction -----------------------------------------------------------------
def test_single_eq_single_sweep(grid):
    eq, u, m = acoustic_eq(grid)
    sweeps = build_sweeps([eq])
    assert len(sweeps) == 1
    assert sweeps[0].read_radius() == 2


def test_independent_eqs_merge(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, b.dy)]
    sweeps = build_sweeps(eqs)
    assert len(sweeps) == 1


def test_flow_dependent_eqs_split(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    # b reads a.forward with nonzero radius -> must be a second sweep
    da = _forward_in_time(a.dx, grid)
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, da)]
    sweeps = build_sweeps(eqs)
    assert len(sweeps) == 2
    assert sweeps[1].read_radius() == 2


def test_pointwise_intrasweep_read_allowed(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, a.forward * 2)]  # radius-0 read
    assert len(build_sweeps(eqs)) == 1


def test_double_write_splits(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    eqs = [Eq(a.forward, a.dx), Eq(a.forward, a.dy)]
    assert len(build_sweeps(eqs)) == 2


# -- wavefront geometry -----------------------------------------------------------------
def test_wavefront_angle_single_sweep(grid):
    eq, u, m = acoustic_eq(grid, so=8)
    assert wavefront_angle(build_sweeps([eq])) == 4


def test_lags_single_sweep(grid):
    eq, u, m = acoustic_eq(grid, so=4)
    sweeps = build_sweeps([eq])
    assert wavefront_lags(sweeps, 4) == [0, 2, 4, 6]


def test_lags_multi_sweep(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=8)
    da = _forward_in_time(a.dx, grid)  # radius 2 read of a@+1
    eqs = [Eq(a.forward, b.dx2), Eq(b.forward, da)]
    sweeps = build_sweeps(eqs)
    assert [s.read_radius() for s in sweeps] == [4, 2]
    # instance order (t0,s0),(t0,s1),(t1,s0),(t1,s1): +2, +4, +2
    assert wavefront_lags(sweeps, 2) == [0, 2, 6, 8]


def test_lags_invalid_height(grid):
    eq, u, m = acoustic_eq(grid)
    with pytest.raises(ValueError):
        wavefront_lags(build_sweeps([eq]), 0)


def test_validate_passes_for_propagators(grid):
    eq, u, m = acoustic_eq(grid)
    validate_wavefront(build_sweeps([eq]), 4)  # must not raise


def test_validate_rejects_future_read(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    da = _forward_in_time(a.dx, grid)
    bad = Eq(b.indexify(), da)  # writes b@0 but reads a@+1 at radius > 0
    with pytest.raises(ValueError, match="future"):
        validate_wavefront(build_sweeps([bad]), 2)


def test_sweep_time_reads_exclude_own_writes(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, a.forward * 2)]
    (sweep,) = build_sweeps(eqs)
    names = {(x.function.name, x.time_offset) for x in sweep.time_reads()}
    assert ("a", 1) not in names  # produced in-sweep, pointwise
    assert ("a", 0) in names


def test_model_fields_do_not_add_lag(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=4)
    m = Function("m", grid, space_order=4)
    # reading the model field with a wide stencil must not steepen the front
    eq = Eq(u.forward, m.laplace + u.indexify())
    (sweep,) = build_sweeps([eq])
    assert sweep.read_radius() == 0


# -- sweep_read_radius (module-level form) ------------------------------------------
def test_sweep_read_radius_exported():
    import repro.ir.dependencies as dep

    assert "sweep_read_radius" in dep.__all__
    from repro.ir.dependencies import sweep_read_radius  # noqa: F401


def test_sweep_read_radius_matches_method(grid):
    from repro.ir.dependencies import sweep_read_radius

    eq, u, m = acoustic_eq(grid, so=8)
    (sweep,) = build_sweeps([eq])
    assert sweep_read_radius(sweep) == sweep.read_radius() == 4


def test_sweep_read_radius_zero_radius_sweep(grid):
    from repro.ir.dependencies import sweep_read_radius

    u = TimeFunction("u", grid, time_order=1, space_order=4)
    # pointwise damping update: no spatial reach, no wavefront lag
    (sweep,) = build_sweeps([Eq(u.forward, 0.9 * u.indexify())])
    assert sweep_read_radius(sweep) == 0
    assert wavefront_angle([sweep]) == 0


def test_sweep_read_radius_multi_field_sweep(grid):
    from repro.ir.dependencies import sweep_read_radius

    # one sweep reading several time fields at different radii (the elastic
    # pattern): the lag is the maximum over all external time-field reads
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=8)
    c = TimeFunction("c", grid, time_order=1, space_order=4)
    eqs = [Eq(a.forward, b.dx2 + c.dy)]
    (sweep,) = build_sweeps(eqs)
    assert sweep_read_radius(sweep) == 4  # b.dx2 at so=8 dominates c.dy


def test_sweep_read_radius_ignores_in_sweep_pointwise_products(grid):
    from repro.ir.dependencies import sweep_read_radius

    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, a.forward * 2)]
    (sweep,) = build_sweeps(eqs)
    # the in-sweep pointwise consumption of a.forward adds no radius
    assert sweep_read_radius(sweep) == 2
