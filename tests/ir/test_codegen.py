"""Structural tests on the generated loop nests (Listings 1-6)."""

import pytest

from repro.core import WavefrontSchedule
from repro.ir.codegen import MODES, generate_code, render
from repro.ir.nodes import Comment, Iteration, Pragma, Statement
from repro.ir.passes import build_compressed, build_fused, build_naive, build_wavefront

from ..conftest import make_acoustic_operator


@pytest.fixture
def op(grid3d):
    op, *_ = make_acoustic_operator(grid3d, so=4)
    return op


# -- Listing 1: naive -------------------------------------------------------------
def test_naive_structure(op):
    tree = build_naive(op)
    assert tree.is_("time") and tree.index == "t"
    space = [n for n in tree.find(Iteration) if n.is_("space")]
    assert [n.index for n in space] == ["x", "y", "z"]
    sparse = [n for n in tree.find(Iteration) if n.is_("sparse")]
    assert len(sparse) == 4  # src (s, i) + rec (r, i)


def test_naive_sparse_is_nonaffine(op):
    code = generate_code(op, "naive")
    assert "map(s, i)" in code  # the indirection of Listing 1
    assert "src[t][s]" in code


def test_naive_statement_roles(op):
    tree = build_naive(op)
    roles = {s.role for s in tree.find(Statement)}
    assert {"stencil", "injection", "interpolation", "indirection"} <= roles


# -- Listing 4: fused -------------------------------------------------------------
def test_fused_structure(op):
    tree = build_fused(op)
    z2 = [n for n in tree.find(Iteration) if n.index == "z2"]
    assert len(z2) == 1
    assert z2[0].is_("fused")
    code = generate_code(op, "fused")
    assert "SM[x][y][z2]" in code and "SID[x][y][z2]" in code
    assert "src_dcmp[t]" in code
    assert "map(" not in code  # indirection through coordinates is gone


def test_fused_injection_at_z_level(op):
    """The z2 loop must sit inside the y loop, beside the z loop (Listing 4)."""
    tree = build_fused(op)
    y_loops = [n for n in tree.find(Iteration) if n.index == "y"]
    (y,) = y_loops
    inner_indices = [n.index for n in y.body if isinstance(n, Iteration)]
    assert inner_indices == ["z", "z2"]


# -- Listing 5: compressed ---------------------------------------------------------
def test_compressed_structure(op):
    code = generate_code(op, "compressed")
    assert "nnz_mask[x][y]" in code
    assert "Sp_SID[x][y][z2]" in code
    assert "zind" in code
    tree = build_compressed(op)
    z2 = [n for n in tree.find(Iteration) if n.index == "z2"]
    assert z2[0].hi == "nnz_mask[x][y]"
    assert z2[0].is_("compressed")


# -- Listing 6: wavefront ------------------------------------------------------------
def test_wavefront_structure(op):
    sched = WavefrontSchedule(tile=(16, 16), block=(8, 8), height=4)
    tree = build_wavefront(op, sched)
    assert tree.is_("tile") and tree.step == "tile_t"
    skewed = [n for n in tree.find(Iteration) if n.is_("skewed")]
    assert [n.index for n in skewed] == ["xt", "yt"]
    assert all("max_lag" in n.hi for n in skewed)
    blocks = [n for n in tree.find(Iteration) if n.is_("block")]
    assert {n.index for n in blocks} == {"xb", "yb"}
    # the compressed injection survives inside the tile
    code = generate_code(op, "wavefront", schedule=sched)
    assert "nnz_mask" in code
    assert "lag_table" in code


def test_wavefront_lag_comment(op):
    code = generate_code(op, "wavefront")
    assert "lag advances by 2" in code  # so=4 -> radius 2


# -- generic -----------------------------------------------------------------------------
def test_all_modes_render(op):
    for mode in MODES:
        code = generate_code(op, mode)
        assert code.count("{") == code.count("}")
        assert code.startswith("/*")


def test_unknown_mode(op):
    with pytest.raises(ValueError):
        generate_code(op, "bogus")


def test_fuse_requires_injections(grid3d):
    op, *_ = make_acoustic_operator(grid3d, src_coords=False, rec_coords=False)
    with pytest.raises(ValueError, match="no injections"):
        generate_code(op, "fused")


def test_render_rejects_unknown_node():
    with pytest.raises(TypeError):
        render(object())


def test_ccode_entrypoint(op):
    assert "for (int t" in op.ccode("naive")
