"""Unit tests for the common-subexpression-elimination pass of the engine."""

import numpy as np
import pytest

from repro.dsl.symbols import Add, Call, Indexed, Mul, Number, Pow, Symbol
from repro.ir.passes import CSEResult, cse_sweep


class DummyFunc:
    def __init__(self, name):
        self.name = name


def acc(name, t=0, x=0):
    return Indexed(DummyFunc(name), {Symbol("t"): t, Symbol("x"): x})


def evaluate_result(result: CSEResult, env):
    """Run the CSE program sequentially, returning each equation's value."""
    env = dict(env)
    values = []
    for sink, rhs in zip(result.assignments, result.rhss):
        for sym, expr in sink:
            env[sym] = expr.evaluate(env)
        values.append(rhs.evaluate(env))
    return values


@pytest.fixture
def leaves():
    rng = np.random.default_rng(11)
    names = {n: acc(n) for n in "abcd"}
    env = {v: rng.normal(size=5) for v in names.values()}
    return names, env


def test_shared_across_equations_assigned_once(leaves):
    names, env = leaves
    a, b, c, d = (names[n] for n in "abcd")
    shared = Add(a, b)
    rhss = [Mul(shared, c), Mul(shared, d)]
    res = cse_sweep(rhss)
    assert res.ntemps == 1
    # the temp is assigned at its first-use equation only
    assert len(res.assignments[0]) == 1
    assert res.assignments[1] == []
    sym, expr = res.assignments[0][0]
    assert expr == shared and res.origin[sym] == shared
    # both rewritten rhss reference the temp
    assert sym in res.rhss[0].free_symbols()
    assert sym in res.rhss[1].free_symbols()
    for got, want in zip(evaluate_result(res, env), [e.evaluate(env) for e in rhss]):
        np.testing.assert_array_equal(got, want)


def test_nested_shared_subexpressions_in_dependency_order(leaves):
    names, env = leaves
    a, b, c, d = (names[n] for n in "abcd")
    inner = Add(a, b)
    outer = Call("sqrt", Mul(inner, inner))
    rhss = [Add(outer, c), Add(outer, d), inner]
    res = cse_sweep(rhss)
    # inner (used twice inside outer, plus standalone) and outer both extracted
    assert res.ntemps >= 2
    seen = set()
    for sink in res.assignments:
        for sym, expr in sink:
            assert expr.free_symbols() <= seen  # children assigned before parents
            seen.add(sym)
    for got, want in zip(evaluate_result(res, env), [e.evaluate(env) for e in rhss]):
        np.testing.assert_array_equal(got, want)


def test_unique_subexpressions_untouched(leaves):
    names, _ = leaves
    a, b, c, d = (names[n] for n in "abcd")
    rhss = [Add(a, b), Mul(c, d)]
    res = cse_sweep(rhss)
    assert res.ntemps == 0
    assert res.rhss == rhss
    assert res.assignments == [[], []]


def test_protected_reads_never_hoisted_across_equations():
    # u(t+1) is written by the sweep: a subexpression reading it observes
    # different values before/after the producing equation, so it must not
    # be shared across equations...
    u_next = acc("u", t=1)
    v = acc("v")
    shared = Mul(u_next, v)
    rhss = [Add(shared, v), Add(shared, u_next)]
    res = cse_sweep(rhss, protected_keys=frozenset({("u", 1)}))
    assert res.ntemps == 0  # one occurrence per equation: recomputed in place
    assert res.rhss == rhss

    # ... but duplicate occurrences *within* one equation are still shared
    # (flat Mul/Add canonicalisation would merge identical args, so wrap the
    # two occurrences in distinct Call nodes)
    rhss2 = [Add(Call("sqrt", shared), Call("exp", shared)), Add(shared, v)]
    res2 = cse_sweep(rhss2, protected_keys=frozenset({("u", 1)}))
    assert any(res2.origin[s] == shared for sink in res2.assignments for s, _ in sink)
    # and the later equation does not reuse equation 0's protected temp
    assert res2.rhss[1] == Add(shared, v)


def test_unprotected_time_offsets_shared():
    u_prev = acc("u", t=-1)
    v = acc("v")
    shared = Mul(u_prev, v)
    rhss = [Add(shared, v), shared]
    res = cse_sweep(rhss, protected_keys=frozenset({("u", 1)}))
    assert res.ntemps == 1


def test_min_uses_and_prefix(leaves):
    names, _ = leaves
    a, b = names["a"], names["b"]
    shared = Add(a, b)
    res = cse_sweep([Mul(shared, a), Mul(shared, b)], min_uses=3, prefix="tmp")
    assert res.ntemps == 0
    res2 = cse_sweep([Mul(shared, a), Mul(shared, b), shared], min_uses=3, prefix="tmp")
    assert res2.ntemps == 1
    assert next(iter(res2.origin)).name == "tmp0"


def test_pow_and_call_subexpressions(leaves):
    names, env = leaves
    a, b = names["a"], names["b"]
    env = {k: np.abs(v) + 1.0 for k, v in env.items()}
    shared = Pow(Add(a, b), Number(-1))
    rhss = [Mul(shared, a), Mul(shared, b)]
    res = cse_sweep(rhss)
    assert any(isinstance(e, Pow) for s in res.assignments for _, e in s)
    for got, want in zip(evaluate_result(res, env), [e.evaluate(env) for e in rhss]):
        np.testing.assert_array_equal(got, want)


# -- time-invariant hoisting ------------------------------------------------------


def _model_setup():
    from repro.dsl.functions import Function, TimeFunction
    from repro.dsl.grid import Grid

    g = Grid(shape=(8, 7), extent=(70.0, 60.0))
    u = TimeFunction("u", g, time_order=1, space_order=2)
    m = Function("m", g, space_order=2)
    return g, u, m


def test_hoist_pulls_model_only_subtrees():
    from repro.dsl.functions import Function
    from repro.ir.passes import HoistedField, hoist_invariants

    g, u, m = _model_setup()
    inv = Pow(m.indexify(), Number(-1))  # 1/m: reads no TimeFunction
    rhs = Mul(inv, u.indexify())
    res = hoist_invariants([rhs])
    assert len(res.fields) == 1
    hf = res.fields[0]
    assert isinstance(hf, HoistedField)
    assert hf.expr == inv and hf.halo == m.halo
    # the rewritten rhs reads the placeholder instead of recomputing 1/m
    reads = {a.function.name for a in res.rhss[0].atoms(Indexed)}
    assert hf.name in reads and "m" not in reads
    # dtype inferred from the expression without touching real data
    assert hf.dtype == np.dtype(np.float32)


def test_hoist_dedups_and_skips_time_reads():
    from repro.ir.passes import hoist_invariants

    g, u, m = _model_setup()
    inv = Pow(m.indexify(), Number(-1))
    rhss = [Mul(inv, u.indexify()), Mul(inv, u.backward)]
    res = hoist_invariants(rhss)
    assert len(res.fields) == 1  # shared across equations, hoisted once
    # expressions reading a TimeFunction are never hoisted
    res2 = hoist_invariants([Mul(u.indexify(), u.backward)])
    assert res2.fields == []
    assert res2.rhss == [Mul(u.indexify(), u.backward)]


def test_hoisted_field_materialise_and_refresh():
    from repro.ir.passes import hoist_invariants

    g, u, m = _model_setup()
    m.data = 2.0
    res = hoist_invariants([Mul(Pow(m.indexify(), Number(-1)), u.indexify())])
    hf = res.fields[0]
    with pytest.raises(RuntimeError):
        hf.data_with_halo  # not materialised yet
    hf.materialise()
    first = hf.data_with_halo
    interior = tuple(slice(m.halo, m.halo + s) for s in g.shape)
    np.testing.assert_array_equal(first[interior], np.float32(0.5))
    # refresh happens in place so views bound earlier stay valid
    m.data = 4.0
    hf.materialise()
    assert hf.data_with_halo is first
    np.testing.assert_array_equal(first[interior], np.float32(0.25))
