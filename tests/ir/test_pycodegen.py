"""Tests for the generated-NumPy-kernel fast path."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.dsl.symbols import Call, Indexed, Number, Pow, Symbol
from repro.execution.evalbox import BoundEq, full_box
from repro.ir.pycodegen import compile_rhs, render_numpy_expression

from ..conftest import make_acoustic_operator, run_and_capture


class DummyFunc:
    def __init__(self, name):
        self.name = name


def test_render_basic():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    b = Indexed(DummyFunc("b"), {Symbol("x"): 1})
    expr = a * 2 + b
    src = render_numpy_expression(expr, {a: "v0", b: "v1"})
    v0, v1 = 3.0, 4.0
    assert eval(src, {"np": np, "v0": v0, "v1": v1}) == 10.0


def test_render_pow_and_div():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    assert "1.0/" in render_numpy_expression(Pow(a, Number(-1)), {a: "v"})
    assert render_numpy_expression(Pow(a, Number(3)), {a: "v"}) == "(v*v*v)"


def test_render_calls():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    assert render_numpy_expression(Call("cos", a), {a: "v"}) == "np.cos(v)"
    with pytest.raises(ValueError, match="unsupported call"):
        render_numpy_expression(Call("erf", a), {a: "v"})


def test_render_rejects_unbound_symbol():
    with pytest.raises(ValueError, match="unbound"):
        render_numpy_expression(Symbol("dt"), {})


def test_compile_rhs_executes():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    kernel, reads = compile_rhs(a * 2 + 1, [a])
    out = np.zeros(4)
    kernel(out, np.arange(4.0))
    np.testing.assert_array_equal(out, [1, 3, 5, 7])
    assert "def _kernel" in kernel.__source__


def test_compiled_matches_interpreted_boundeq(grid3d):
    u = TimeFunction("u", grid3d, time_order=2, space_order=8)
    m = Function("m", grid3d, space_order=8)
    rng = np.random.default_rng(0)
    m.data = 0.4 + 0.1 * rng.random(grid3d.shape)
    eq = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    from repro.dsl.symbols import Number as N

    subs = {Symbol("dt"): N(0.5)}
    subs.update({d.spacing: N(h) for d, h in zip(grid3d.dimensions, grid3d.spacing)})
    eq = eq.subs(subs)

    init = rng.normal(size=grid3d.shape).astype(np.float32)
    u.interior(0)[...] = init
    BoundEq(eq, grid3d, compiled=True).evaluate(0, full_box(grid3d))
    compiled = u.interior(1).copy()

    u.data_with_halo[...] = 0
    u.interior(0)[...] = init
    BoundEq(eq, grid3d, compiled=False).evaluate(0, full_box(grid3d))
    np.testing.assert_array_equal(u.interior(1), compiled)


def test_operator_compiled_flag_end_to_end(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=8)
    sched = WavefrontSchedule(tile=(5, 5), block=(5, 5), height=4)
    a = run_and_capture(op, u, rec, 8, 1.0, sched)
    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid3d, nt=8)

    def run_interp():
        u2.data_with_halo[...] = 0
        rec2.data[...] = 0
        op2.apply(time_M=8, dt=1.0, schedule=sched, compiled=False)
        return u2.interior(8).copy(), rec2.data.copy()

    b = run_interp()
    np.testing.assert_array_equal(a[0], b[0])
    np.testing.assert_array_equal(a[1], b[1])


def test_float32_output_preserved(grid3d):
    u = TimeFunction("u", grid3d, time_order=1, space_order=2)
    eq = Eq(u.forward, u.indexify() * 0.123456789)
    beq = BoundEq(eq, grid3d, compiled=True)
    u.interior(0)[...] = 1.0
    beq.evaluate(0, full_box(grid3d))
    assert u.interior(1).dtype == np.float32
