"""Tests for the generated-NumPy-kernel fast path."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.dsl.symbols import Call, Indexed, Number, Pow, Symbol
from repro.execution.evalbox import BoundEq, full_box
from repro.ir.pycodegen import compile_rhs, render_numpy_expression

from ..conftest import make_acoustic_operator, run_and_capture


class DummyFunc:
    def __init__(self, name):
        self.name = name


def test_render_basic():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    b = Indexed(DummyFunc("b"), {Symbol("x"): 1})
    expr = a * 2 + b
    src = render_numpy_expression(expr, {a: "v0", b: "v1"})
    v0, v1 = 3.0, 4.0
    assert eval(src, {"np": np, "v0": v0, "v1": v1}) == 10.0


def test_render_pow_and_div():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    assert "1.0/" in render_numpy_expression(Pow(a, Number(-1)), {a: "v"})
    assert render_numpy_expression(Pow(a, Number(3)), {a: "v"}) == "(v*v*v)"


def test_render_calls():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    assert render_numpy_expression(Call("cos", a), {a: "v"}) == "np.cos(v)"
    with pytest.raises(ValueError, match="unsupported call"):
        render_numpy_expression(Call("erf", a), {a: "v"})


def test_render_rejects_unbound_symbol():
    with pytest.raises(ValueError, match="unbound"):
        render_numpy_expression(Symbol("dt"), {})


def test_compile_rhs_executes():
    a = Indexed(DummyFunc("a"), {Symbol("x"): 0})
    kernel, reads = compile_rhs(a * 2 + 1, [a])
    out = np.zeros(4)
    kernel(out, np.arange(4.0))
    np.testing.assert_array_equal(out, [1, 3, 5, 7])
    assert "def _kernel" in kernel.__source__


def test_compiled_matches_interpreted_boundeq(grid3d):
    u = TimeFunction("u", grid3d, time_order=2, space_order=8)
    m = Function("m", grid3d, space_order=8)
    rng = np.random.default_rng(0)
    m.data = 0.4 + 0.1 * rng.random(grid3d.shape)
    eq = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    from repro.dsl.symbols import Number as N

    subs = {Symbol("dt"): N(0.5)}
    subs.update({d.spacing: N(h) for d, h in zip(grid3d.dimensions, grid3d.spacing)})
    eq = eq.subs(subs)

    init = rng.normal(size=grid3d.shape).astype(np.float32)
    u.interior(0)[...] = init
    BoundEq(eq, grid3d, compiled=True).evaluate(0, full_box(grid3d))
    compiled = u.interior(1).copy()

    u.data_with_halo[...] = 0
    u.interior(0)[...] = init
    BoundEq(eq, grid3d, compiled=False).evaluate(0, full_box(grid3d))
    np.testing.assert_array_equal(u.interior(1), compiled)


def test_operator_compiled_flag_end_to_end(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=8)
    sched = WavefrontSchedule(tile=(5, 5), block=(5, 5), height=4)
    a = run_and_capture(op, u, rec, 8, 1.0, sched)
    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid3d, nt=8)

    def run_interp():
        u2.data_with_halo[...] = 0
        rec2.data[...] = 0
        op2.apply(time_M=8, dt=1.0, schedule=sched, compiled=False)
        return u2.interior(8).copy(), rec2.data.copy()

    b = run_interp()
    np.testing.assert_array_equal(a[0], b[0])
    np.testing.assert_array_equal(a[1], b[1])


def test_float32_output_preserved(grid3d):
    u = TimeFunction("u", grid3d, time_order=1, space_order=2)
    eq = Eq(u.forward, u.indexify() * 0.123456789)
    beq = BoundEq(eq, grid3d, compiled=True)
    u.interior(0)[...] = 1.0
    beq.evaluate(0, full_box(grid3d))
    assert u.interior(1).dtype == np.float32


# -- golden source / caches / the fused sweep engine -----------------------------


def _bound_acoustic_eq(grid, dt=0.5, so=2):
    u = TimeFunction("u", grid, time_order=2, space_order=so)
    m = Function("m", grid, space_order=so)
    eq = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    subs = {Symbol("dt"): Number(dt)}
    subs.update({d.spacing: Number(h) for d, h in zip(grid.dimensions, grid.spacing)})
    return eq.subs(subs), u, m


def test_compile_rhs_golden_source(grid1d):
    """The exact source of a representative (1-D acoustic so=2) update."""
    eq, _, _ = _bound_acoustic_eq(grid1d)
    beq = BoundEq(eq, grid1d, compiled=True)
    assert beq._kernel.__source__ == (
        "def _kernel(out, v0, v1, v2, v3, v4):\n"
        "    out[...] = (-1*((4*v0*((-2*v3) + v4)) + (-0.01*(v2 + (-2*v3) + v1)))"
        "*(1.0/(4*v0)))\n"
    )
    assert [str(r) for r in beq.reads] == [
        "m[x]", "u[t, x+1]", "u[t, x-1]", "u[t, x]", "u[t-1, x]",
    ]
    # the compile() filename is the plain string, not an f-string artefact
    assert beq._kernel.__code__.co_filename == "<repro-kernel>"


def test_rhs_kernel_cache_hits(grid1d):
    from repro.ir.pycodegen import kernel_cache_stats

    eq, _, _ = _bound_acoustic_eq(grid1d)
    k1 = BoundEq(eq, grid1d, compiled=True)._kernel
    before = kernel_cache_stats()
    k2 = BoundEq(eq, grid1d, compiled=True)._kernel
    after = kernel_cache_stats()
    assert k1 is k2
    assert after["rhs_hits"] == before["rhs_hits"] + 1


def test_rhs_cache_hit_rebinds_fresh_reads(grid1d):
    """A cache hit must return the caller's accesses, not the cached ones.

    Indexed equality is structural, so a hit can come from an equation over
    different (same-named) Function objects; returning the cached reads would
    silently bind views to the stale arrays.
    """
    eq, u, _ = _bound_acoustic_eq(grid1d)
    BoundEq(eq, grid1d, compiled=True)
    eq2, u2, _ = _bound_acoustic_eq(grid1d)
    beq2 = BoundEq(eq2, grid1d, compiled=True)
    funcs = {r.function.name: r.function for r in beq2.reads}
    assert funcs["u"] is u2 and funcs["u"] is not u


def test_scratch_pool_reuse_and_identity():
    from repro.ir.pycodegen import ScratchPool

    pool = ScratchPool()
    a = pool.get((4, 3), np.dtype(np.float32), 0)
    b = pool.get((4, 3), np.dtype(np.float32), 1)
    assert a is not b and a.shape == (4, 3) and a.dtype == np.float32
    assert pool.get((4, 3), np.dtype(np.float32), 0) is a  # stable across calls
    assert pool.get((4, 3), np.dtype(np.float64), 0) is not a
    assert len(pool) == 3 and pool.nbytes() == 2 * 48 + 96
    pool.clear()
    assert len(pool) == 0


def test_fused_sweep_kernel_structure(grid3d):
    """The fused kernel is three-address: every op writes into out= and the
    final instruction stores directly into the output view."""
    from repro.execution.evalbox import BoundSweep

    eq, u, m = _bound_acoustic_eq(grid3d, so=4)
    sweep = BoundSweep([eq], grid3d, engine="fused")
    src = sweep._kernel.__source__
    assert src.startswith("def _kernel(slots, outs, views):")
    body = [l.strip() for l in src.splitlines()[1:] if l.strip()]
    computes = [l for l in body if l.startswith("np.")]
    # three-address form: every instruction's final (positional out) argument
    # is a scratch slot or an output view
    assert computes and all(
        l.rsplit(", ", 1)[1].rstrip(")").startswith(("s", "o")) for l in computes
    )
    # the last compute writes straight into the output view (no copy store)
    assert computes[-1].endswith(", o0)")
    assert not any(l.startswith("o0[...] = ") for l in body)
    # scratch checkout happens once per (t, box) binding, driven by the spec
    spec = sweep._kernel.__slotspec__
    assert len(spec) == sweep._kernel.__nslots__
    assert all(isinstance(dt, np.dtype) for dt, _ in spec)
    # no full-size temporaries: slot count stays far below instruction count
    assert 0 < sweep._kernel.__nslots__ <= 8 < len(computes)


def test_fused_sweep_cache_and_view_cache(grid3d):
    from repro.execution.evalbox import BoundSweep
    from repro.ir.pycodegen import kernel_cache_stats

    eq, u, m = _bound_acoustic_eq(grid3d)
    s1 = BoundSweep([eq], grid3d, engine="fused")
    before = kernel_cache_stats()
    s2 = BoundSweep([eq], grid3d, engine="fused")
    assert s2._kernel is s1._kernel
    assert kernel_cache_stats()["sweep_hits"] == before["sweep_hits"] + 1

    rng = np.random.default_rng(5)
    u.interior(0)[...] = rng.normal(size=grid3d.shape).astype(np.float32)
    m.data = 0.5
    box = full_box(grid3d)
    s1.evaluate(0, box)
    got = u.interior(1).copy()
    # time-congruent revisit hits the view cache (period = 3 buffers)
    assert (0 % s1._period, box) in s1._view_cache
    s1.evaluate(3, box)
    np.testing.assert_array_equal(u.interior(4), got)
    assert len(s1._view_cache) == 1


def test_fused_sweep_intra_sweep_dependency(grid1d):
    """Equation 2 of a sweep reads what equation 1 just wrote (radius 0)."""
    from repro.execution.evalbox import BoundSweep

    u = TimeFunction("u", grid1d, time_order=1, space_order=2)
    w = TimeFunction("w", grid1d, time_order=1, space_order=2)
    e1 = Eq(u.forward, u.indexify() * 2.0)
    e2 = Eq(w.forward, u.forward * 3.0)  # reads u[t+1], written by e1
    for engine in ("fused", "interp"):
        u.data_with_halo[...] = 0
        w.data_with_halo[...] = 0
        u.interior(0)[...] = 1.5
        BoundSweep([e1, e2], grid1d, engine=engine).evaluate(0, full_box(grid1d))
        np.testing.assert_array_equal(u.interior(1), np.full(grid1d.shape, 3.0, np.float32))
        np.testing.assert_array_equal(w.interior(1), np.full(grid1d.shape, 9.0, np.float32))


def test_engine_rejects_unknown(grid1d):
    from repro.execution.evalbox import BoundSweep

    u = TimeFunction("u", grid1d, time_order=1, space_order=2)
    with pytest.raises(ValueError, match="unknown engine"):
        BoundSweep([Eq(u.forward, u.indexify())], grid1d, engine="jit")


def test_fused_kernel_hoists_model_division(grid3d):
    """dt^2/m is precomputed once per bind: the hot kernel has no divide."""
    from repro.execution.evalbox import BoundSweep

    eq, u, m = _bound_acoustic_eq(grid3d, so=4)
    sweep = BoundSweep([eq], grid3d, engine="fused")
    src = sweep._kernel.__source__
    assert "divide" not in src and "power" not in src
    assert len(sweep.hoisted_fields) >= 1
    assert all(hf.name.startswith("__inv") for hf in sweep.hoisted_fields)
    assert any(a.function.name.startswith("__inv") for a in sweep.reads)


def test_negation_folds_into_subtract(grid1d):
    """a + (-1)*b compiles to np.subtract (bit-identical, one op cheaper)."""
    from repro.execution.evalbox import BoundSweep

    u = TimeFunction("u", grid1d, time_order=1, space_order=2)
    w = TimeFunction("w", grid1d, time_order=1, space_order=2)
    eq = Eq(u.forward, w.indexify() + Number(-1) * u.indexify())
    sweep = BoundSweep([eq], grid1d, engine="fused")
    src = sweep._kernel.__source__
    assert "np.subtract(" in src
    assert "np.multiply(-1" not in src
    rng = np.random.default_rng(3)
    u.interior(0)[...] = rng.normal(size=grid1d.shape).astype(np.float32)
    w.interior(0)[...] = rng.normal(size=grid1d.shape).astype(np.float32)
    sweep.evaluate(0, full_box(grid1d))
    np.testing.assert_array_equal(
        u.interior(1), w.interior(0) + np.float32(-1) * u.interior(0)
    )


def test_model_mutation_between_applies_is_observed(grid3d):
    """Cached bound sweeps re-materialise hoisted model terms per apply."""
    from repro.ir.operator import Operator

    u = TimeFunction("u", grid3d, time_order=2, space_order=4)
    m = Function("m", grid3d, space_order=4)
    eq = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    op = Operator([eq])
    rng = np.random.default_rng(9)
    init = rng.normal(size=grid3d.shape).astype(np.float32)

    def run(mval):
        u.data_with_halo[...] = 0
        u.interior(0)[...] = init
        m.data = mval
        op.apply(time_M=2, dt=0.5)
        return u.interior(2).copy()

    first = run(1.5)
    second = run(3.0)  # same cached sweeps, mutated model
    assert not np.array_equal(first, second)
    u.data_with_halo[...] = 0
    u.interior(0)[...] = init
    m.data = 3.0
    Operator([eq]).apply(time_M=2, dt=0.5, engine="interp")
    np.testing.assert_array_equal(u.interior(2), second)
