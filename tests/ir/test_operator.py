"""Unit tests for the Operator front-end."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.dsl import Eq, Function, Grid, SparseTimeFunction, TimeFunction, solve
from repro.ir import Operator

from ..conftest import make_acoustic_operator, run_and_capture


def test_operator_requires_equations():
    with pytest.raises(ValueError):
        Operator([])


def test_operator_requires_single_grid():
    g1, g2 = Grid(shape=(6, 6, 6)), Grid(shape=(8, 8, 8))
    a = TimeFunction("a", g1, time_order=1, space_order=2)
    b = TimeFunction("b", g2, time_order=1, space_order=2)
    with pytest.raises(ValueError, match="one grid"):
        Operator([Eq(a.forward, a.dx), Eq(b.forward, b.dx)])


def test_wavefront_angle_property(grid3d):
    op, *_ = make_acoustic_operator(grid3d, so=8)
    assert op.wavefront_angle == 4
    assert op.sweep_radii == [4]


def test_sparse_op_lists(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d)
    assert len(op.injections()) == 1
    assert len(op.interpolations()) == 1


def test_sweep_attachment_error(grid3d):
    u = TimeFunction("u", grid3d, time_order=2, space_order=4)
    m = Function("m", grid3d, space_order=4)
    m.data = 1.0
    upd = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    other = TimeFunction("w", grid3d, time_order=2, space_order=4)
    src = SparseTimeFunction("s", grid3d, npoint=1, nt=4)
    op = Operator([upd], sparse=[src.inject(other)])  # nothing writes w
    with pytest.raises(ValueError, match="no equation writes"):
        op.apply(time_M=2, dt=0.5)


def test_apply_time_range_validation(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    with pytest.raises(ValueError):
        op.apply(time_M=0, dt=0.5)


def test_wavefront_rejects_offgrid_mode(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    with pytest.raises(ValueError, match="precompute"):
        op.apply(time_M=4, dt=0.5, schedule=WavefrontSchedule(tile=(4, 4)),
                 sparse_mode="offgrid")


def test_unknown_sparse_mode(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    with pytest.raises(ValueError, match="sparse mode"):
        op.apply(time_M=4, dt=0.5, sparse_mode="bogus")


def test_auto_mode_selects_by_schedule(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=6)
    plan = op.apply(time_M=4, dt=0.5, schedule=NaiveSchedule())
    from repro.execution.sparse import RawInjection

    assert any(isinstance(i, RawInjection) for lst in plan.injections.values() for i in lst)
    plan2 = op.apply(time_M=4, dt=0.5, schedule=WavefrontSchedule(tile=(4, 4), block=(2, 2), height=2))
    from repro.core.aligned import AlignedInjection

    assert any(isinstance(i, AlignedInjection) for lst in plan2.injections.values() for i in lst)


def test_precompute_cache_reused(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=6)
    op.apply(time_M=4, dt=0.5, schedule=WavefrontSchedule(tile=(4, 4), block=(2, 2), height=2))
    n_masks = len(op._mask_cache)
    op.apply(time_M=4, dt=0.5, schedule=WavefrontSchedule(tile=(6, 6), block=(3, 3), height=3))
    assert len(op._mask_cache) == n_masks  # same sparse functions, no rebuild


def test_unbound_symbol_detection(grid3d):
    u = TimeFunction("u", grid3d, time_order=2, space_order=4)
    from repro.dsl.symbols import Symbol

    eq = Eq(u.forward, u.indexify() * Symbol("mystery"))
    op = Operator([eq])
    with pytest.raises(ValueError, match="mystery"):
        op.apply(time_M=2, dt=0.5)


def test_plan_exposes_angle(grid3d):
    op, *_ = make_acoustic_operator(grid3d, so=4)
    plan = op.apply(time_M=2, dt=0.5)
    assert plan.angle == 2


def test_repr(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    assert "sweeps=1" in repr(op)
