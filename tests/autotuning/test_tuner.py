"""Tests for the schedule autotuner (Table I machinery)."""

import pytest

from repro.autotuning import tune_spatial, tune_wavefront
from repro.autotuning.tuner import DEFAULT_BLOCKS, DEFAULT_TILES
from repro.core import SpatialBlockSchedule, WavefrontSchedule
from repro.machine import BROADWELL, GridGeometry, PerformanceModel, SourceLoad

from ..machine.test_kernels import make_spec

GEO = GridGeometry((512, 512, 512), 100)


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(make_spec("acoustic", 4), BROADWELL, GEO, SourceLoad())


def test_best_beats_arbitrary_choice(model):
    result = tune_wavefront(model)
    arbitrary = model.evaluate(WavefrontSchedule(tile=(16, 16), block=(4, 4), height=12))
    assert result.best.gpoints_s >= arbitrary.gpoints_s


def test_best_is_global_max(model):
    result = tune_wavefront(model, tiles=(16, 32), blocks=(4, 8), heights=(1, 2, 4))
    assert result.best.gpoints_s == pytest.approx(
        max(c.gpoints_s for c in result.candidates)
    )


def test_candidates_enumerated(model):
    result = tune_wavefront(model, tiles=(16, 32), blocks=(4, 8), heights=(2,))
    # 2x2 tiles x 2x2 blocks x 1 height
    assert len(result.candidates) == 16


def test_top_sorted(model):
    result = tune_wavefront(model, tiles=(16, 32), blocks=(4, 8), heights=(1, 2))
    top = result.top(3)
    assert len(top) == 3
    assert top[0].gpoints_s >= top[1].gpoints_s >= top[2].gpoints_s


def test_block_never_exceeds_tile(model):
    result = tune_wavefront(model, tiles=(8,), blocks=(4, 8, 16), heights=(2,))
    for c in result.candidates:
        assert c.schedule.block[0] <= c.schedule.tile[0]
        assert c.schedule.block[1] <= c.schedule.tile[1]


def test_square_tiles_option(model):
    result = tune_wavefront(model, tiles=(16, 32), blocks=(8,), heights=(2,),
                            square_tiles_only=True)
    assert all(c.schedule.tile[0] == c.schedule.tile[1] for c in result.candidates)


def test_tuned_wavefront_beats_tuned_spatial(model):
    base = tune_spatial(model)
    wf = tune_wavefront(model)
    assert model.evaluate(wf.schedule).time_s < model.evaluate(base).time_s


def test_spatial_tuner_returns_schedule(model):
    sched = tune_spatial(model)
    assert isinstance(sched, SpatialBlockSchedule)
    assert sched.block[0] in DEFAULT_BLOCKS and sched.block[1] in DEFAULT_BLOCKS


def test_elastic_so12_prefers_height_one_or_large_tiles():
    """At space order 12 the model finds (almost) nothing to gain — the tuned
    config degenerates (paper Table I's 256x256 entries)."""
    pm = PerformanceModel(make_spec("elastic", 12), BROADWELL, GEO, SourceLoad())
    result = tune_wavefront(pm)
    s = result.schedule
    assert s.height <= 2 or s.tile[0] * s.tile[1] >= 128 * 128
