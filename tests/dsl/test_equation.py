"""Unit tests for Eq and the explicit-scheme solver."""

import pytest

from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.dsl.symbols import Indexed, NonLinearError, Number, Symbol


@pytest.fixture
def setup():
    g = Grid(shape=(8, 8, 8))
    u = TimeFunction("u", g, time_order=2, space_order=4)
    m = Function("m", g, space_order=4)
    return g, u, m


def test_eq_coerces_function_lhs(setup):
    g, u, m = setup
    e = Eq(m, 1.0)
    assert isinstance(e.lhs, Indexed)


def test_eq_rejects_expression_lhs(setup):
    g, u, m = setup
    with pytest.raises(TypeError):
        Eq(u.forward * 2, 0)


def test_eq_reads_sorted(setup):
    g, u, m = setup
    e = Eq(u.forward, u.laplace)
    reads = e.reads()
    assert all(isinstance(r, Indexed) for r in reads)
    assert reads == sorted(reads, key=str)


def test_eq_subs(setup):
    g, u, m = setup
    e = Eq(u.forward, u.indexify() * Symbol("dt"))
    e2 = e.subs({Symbol("dt"): Number(0.5)})
    assert Symbol("dt") not in e2.rhs.free_symbols()


def test_solve_wave_equation(setup):
    g, u, m = setup
    expr = m * u.dt2 - u.laplace
    upd = solve(expr, u.forward)
    # verify algebraically: substituting back yields (numerically) zero
    import numpy as np

    rng = np.random.default_rng(0)
    env = {}
    for access in set(expr.atoms(Indexed)) | set(upd.atoms(Indexed)):
        if access != u.forward:
            env[access] = float(rng.uniform(0.5, 2.0))
    subs = {Symbol("dt"): Number(0.1)}
    subs.update({d.spacing: Number(h) for d, h in zip(g.dimensions, g.spacing)})
    forward_value = upd.subs(subs).evaluate(env)
    env[u.forward] = forward_value
    residual = expr.subs(subs).evaluate(env)
    assert residual == pytest.approx(0.0, abs=1e-9)


def test_solve_accepts_function_target(setup):
    g, u, m = setup
    e = m * 2 - 3
    out = solve(e, m)
    assert out == Number(1.5)


def test_solve_missing_target(setup):
    g, u, m = setup
    with pytest.raises(ValueError, match="does not occur"):
        solve(m * u.dt2 - u.laplace, TimeFunction("w", g, 2, 4).forward)


def test_solve_nonlinear_target(setup):
    g, u, m = setup
    with pytest.raises(NonLinearError):
        solve(u.forward * u.forward - 1, u.forward)


def test_solve_with_damping_term(setup):
    g, u, m = setup
    damp = Function("damp", g, space_order=4)
    expr = m * u.dt2 + damp * u.dt - u.laplace
    upd = solve(expr, u.forward)
    # u.forward appears in both dt2 and dt; coefficient must combine both
    assert not upd.contains(u.forward)
    assert upd.contains(u.backward)
