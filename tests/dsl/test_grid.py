"""Unit tests for Grid and Dimension."""

import numpy as np
import pytest

from repro.dsl import Grid
from repro.dsl.grid import Dimension, SteppingDimension


def test_dimension_spacing_symbol():
    d = Dimension("x")
    assert d.spacing.name == "h_x"
    assert not d.is_time


def test_stepping_dimension_dt():
    t = SteppingDimension()
    assert t.spacing.name == "dt"
    assert t.is_time


def test_dimension_equality_hash():
    assert Dimension("x") == Dimension("x")
    assert Dimension("x") != Dimension("y")
    assert Dimension("t") != SteppingDimension("t")
    assert hash(Dimension("x")) == hash(Dimension("x"))


def test_grid_defaults():
    g = Grid(shape=(11, 11, 11))
    assert g.ndim == 3
    assert g.spacing == (10.0, 10.0, 10.0)
    assert [d.name for d in g.dimensions] == ["x", "y", "z"]
    assert g.npoints == 11**3


def test_grid_2d_and_1d():
    g2 = Grid(shape=(5, 7))
    assert [d.name for d in g2.dimensions] == ["x", "y"]
    g1 = Grid(shape=(9,))
    assert [d.name for d in g1.dimensions] == ["x"]


def test_grid_custom_extent_origin():
    g = Grid(shape=(11, 21), extent=(100.0, 100.0), origin=(-50.0, 10.0))
    assert g.spacing == (10.0, 5.0)
    assert g.origin == (-50.0, 10.0)


def test_grid_rank_validation():
    with pytest.raises(ValueError):
        Grid(shape=(4, 4, 4, 4))
    with pytest.raises(ValueError):
        Grid(shape=(4, 4), extent=(10.0,))
    with pytest.raises(ValueError):
        Grid(shape=(4, 4), origin=(0.0,))
    with pytest.raises(ValueError):
        Grid(shape=(1, 4))


def test_spacing_map():
    g = Grid(shape=(11, 11))
    smap = g.spacing_map()
    assert {s.name for s in smap} == {"h_x", "h_y"}
    assert all(v == 10.0 for v in smap.values())


def test_dimension_lookup():
    g = Grid(shape=(4, 4, 4))
    assert g.dimension("y").name == "y"
    with pytest.raises(KeyError):
        g.dimension("w")


def test_physical_to_logical():
    g = Grid(shape=(11, 11), extent=(100.0, 100.0), origin=(50.0, 0.0))
    logical = g.physical_to_logical(np.array([[60.0, 25.0]]))
    np.testing.assert_allclose(logical, [[1.0, 2.5]])


def test_contains_points():
    g = Grid(shape=(11, 11))
    inside = g.contains_points(np.array([[0.0, 0.0], [100.0, 100.0], [50.0, 101.0], [-1.0, 3.0]]))
    assert inside.tolist() == [True, True, False, False]


def test_time_dim_alias():
    g = Grid(shape=(4, 4))
    assert g.time_dim is g.stepping_dim
