"""Unit tests for dense/time/sparse grid functions and their derivatives."""

import numpy as np
import pytest

from repro.dsl import Function, Grid, SparseTimeFunction, TimeFunction
from repro.dsl.symbols import Indexed


@pytest.fixture
def grid():
    return Grid(shape=(16, 14, 12), extent=(150.0, 130.0, 110.0))


# -- storage -------------------------------------------------------------------
def test_function_storage_and_halo(grid):
    f = Function("f", grid, space_order=4)
    assert f.halo == 4
    assert f.data.shape == grid.shape
    assert f.data_with_halo.shape == tuple(s + 8 for s in grid.shape)
    f.data = 3.0
    assert float(f.data_with_halo[0, 0, 0]) == 0.0  # halo untouched
    assert float(f.data[0, 0, 0]) == 3.0


def test_function_dtype_single_precision(grid):
    f = Function("f", grid)
    assert f.data.dtype == np.float32


def test_space_order_validation(grid):
    with pytest.raises(ValueError):
        Function("f", grid, space_order=3)
    with pytest.raises(ValueError):
        Function("f", grid, space_order=0)


def test_timefunction_buffers(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    assert u.buffers == 3
    assert u.data.shape == (3,) + grid.shape
    v = TimeFunction("v", grid, time_order=1, space_order=2)
    assert v.buffers == 2
    with pytest.raises(ValueError):
        TimeFunction("w", grid, time_order=0)


def test_timefunction_circular_buffer(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    u.interior(4)[...] = 7.0  # 4 % 3 == 1
    assert float(u.interior(1)[0, 0, 0]) == 7.0
    assert np.shares_memory(u.buffer(4), u.buffer(1))
    assert not np.shares_memory(u.buffer(4), u.buffer(2))


# -- symbolic access ---------------------------------------------------------------
def test_indexify_offsets(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    offs = u.indexify().offset_map()
    assert offs == {"t": 0, "x": 0, "y": 0, "z": 0}
    f = Function("f", grid)
    assert f.indexify().offset_map() == {"x": 0, "y": 0, "z": 0}


def test_forward_backward(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    assert u.forward.offset_map()["t"] == 1
    assert u.backward.offset_map()["t"] == -1


def test_function_arithmetic_coercion(grid):
    f = Function("f", grid)
    e = 2 * f + 1
    assert any(isinstance(a, Indexed) for a in e.preorder())


# -- derivatives: numerical accuracy ----------------------------------------------------
def _eval_deriv(expr, f, values, point):
    """Evaluate a derivative expression at one grid point."""
    env = {}
    for access in expr.atoms(Indexed):
        offs = access.offset_map()
        idx = tuple(point[i] + offs[d.name] for i, d in enumerate(f.grid.dimensions))
        env[access] = values[idx]
    env_syms = {d.spacing: h for d, h in zip(f.grid.dimensions, f.grid.spacing)}
    return expr.subs(env_syms).evaluate(env)


@pytest.mark.parametrize("so", [2, 4, 8])
def test_dx2_matches_analytic(so):
    grid = Grid(shape=(32, 8, 8), extent=(3.1, 0.7, 0.7))
    f = Function("f", grid, space_order=so)
    x = np.linspace(0, 3.1, 32)
    values = np.broadcast_to(np.sin(x)[:, None, None], grid.shape).copy()
    expr = f.dx2
    got = _eval_deriv(expr, f, values, (16, 4, 4))
    assert got == pytest.approx(-np.sin(x[16]), abs=10 ** (-so + 1))


def test_laplace_constant_field_is_zero(grid):
    f = Function("f", grid, space_order=4)
    values = np.full(grid.shape, 5.0)
    got = _eval_deriv(f.laplace, f, values, (8, 7, 6))
    assert got == pytest.approx(0.0, abs=1e-12)


def test_dx_linear_field_exact(grid):
    f = Function("f", grid, space_order=4)
    x = np.arange(grid.shape[0]) * grid.spacing[0]
    values = np.broadcast_to((3.0 * x)[:, None, None], grid.shape).copy()
    got = _eval_deriv(f.dx, f, values, (8, 7, 6))
    assert got == pytest.approx(3.0, rel=1e-10)


def test_staggered_derivative_linear_exact(grid):
    f = Function("f", grid, space_order=4)
    x = np.arange(grid.shape[0]) * grid.spacing[0]
    values = np.broadcast_to((2.0 * x)[:, None, None], grid.shape).copy()
    d = f.diff_staggered(grid.dimension("x"), side=1)
    got = _eval_deriv(d, f, values, (8, 7, 6))
    assert got == pytest.approx(2.0, rel=1e-10)


def test_dt2_structure(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    accesses = sorted(str(a) for a in u.dt2.atoms(Indexed))
    assert len(accesses) == 3  # t-1, t, t+1


def test_dt_requires_time_order(grid):
    v = TimeFunction("v", grid, time_order=1, space_order=2)
    with pytest.raises(ValueError):
        v.dt2
    # forward Euler dt for first-order fields
    offsets = {a.offset_map()["t"] for a in v.dt.atoms(Indexed)}
    assert offsets == {0, 1}


def test_dt_centered_for_second_order(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    offsets = {a.offset_map()["t"] for a in u.dt.atoms(Indexed)}
    assert offsets == {-1, 1}


def test_diff_rejects_time_dimension(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    with pytest.raises(ValueError):
        u.diff(grid.stepping_dim, 1)


# -- sparse functions -----------------------------------------------------------------
def test_sparse_defaults_to_domain_centre(grid):
    s = SparseTimeFunction("s", grid, npoint=2, nt=5)
    centre = [o + e / 2 for o, e in zip(grid.origin, grid.extent)]
    np.testing.assert_allclose(s.coordinates, [centre, centre])
    assert s.data.shape == (5, 2)


def test_sparse_rejects_outside_points(grid):
    with pytest.raises(ValueError, match="outside"):
        SparseTimeFunction("s", grid, npoint=1, nt=5,
                           coordinates=np.array([[1e4, 0.0, 0.0]]))


def test_sparse_shape_validation(grid):
    with pytest.raises(ValueError):
        SparseTimeFunction("s", grid, npoint=2, nt=5, coordinates=np.zeros((3, 3)))
    with pytest.raises(ValueError):
        SparseTimeFunction("s", grid, npoint=0, nt=5)
    with pytest.raises(ValueError):
        SparseTimeFunction("s", grid, npoint=1, nt=0)


def test_inject_interpolate_factories(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    s = SparseTimeFunction("s", grid, npoint=1, nt=5)
    inj = s.inject(u, expr=2.0)
    itp = s.interpolate(u)
    assert inj.field is u and inj.time_offset == 1
    assert itp.field is u and itp.time_offset == 1
    with pytest.raises(TypeError):
        s.inject(Function("f", grid))
    other = Grid(shape=(4, 4, 4))
    v = TimeFunction("v", other, time_order=1, space_order=2)
    with pytest.raises(ValueError, match="different grids"):
        s.inject(v)
