"""Unit and property tests for off-the-grid interpolation machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import Grid
from repro.dsl.interpolation import (
    corner_offsets,
    inject_values,
    interpolate_values,
    locate_points,
    multilinear_coefficients,
    support_points,
)


@pytest.fixture
def grid():
    return Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))


def test_locate_interior_point(grid):
    base, frac = locate_points(np.array([[25.0, 37.5, 0.0]]), grid)
    np.testing.assert_array_equal(base, [[2, 3, 0]])
    np.testing.assert_allclose(frac, [[0.5, 0.75, 0.0]])


def test_locate_upper_boundary_attaches_to_last_cell(grid):
    base, frac = locate_points(np.array([[100.0, 100.0, 100.0]]), grid)
    np.testing.assert_array_equal(base, [[9, 9, 9]])
    np.testing.assert_allclose(frac, [[1.0, 1.0, 1.0]])


def test_locate_rejects_outside(grid):
    with pytest.raises(ValueError):
        locate_points(np.array([[150.0, 0.0, 0.0]]), grid)


def test_corner_offsets_shape():
    c = corner_offsets(3)
    assert c.shape == (8, 3)
    assert set(map(tuple, c)) == {(i, j, k) for i in (0, 1) for j in (0, 1) for k in (0, 1)}


def test_weights_on_grid_point():
    w = multilinear_coefficients(np.array([[0.0, 0.0]]))
    np.testing.assert_allclose(w[0], [1.0, 0.0, 0.0, 0.0])


def test_weights_cell_centre():
    w = multilinear_coefficients(np.array([[0.5, 0.5, 0.5]]))
    np.testing.assert_allclose(w[0], np.full(8, 0.125))


def test_support_points_in_bounds(grid):
    idx, w = support_points(np.array([[99.9, 99.9, 99.9]]), grid)
    assert idx.max() <= 10 and idx.min() >= 0


def test_inject_then_interpolate_roundtrip(grid):
    """Interpolating at the injection point recovers w^T w * amplitude."""
    buf = np.zeros(tuple(s + 4 for s in grid.shape), dtype=np.float64)
    coords = np.array([[33.3, 47.2, 61.8]])
    idx, w = support_points(coords, grid)
    inject_values(buf, 2, idx, w, np.array([2.0]))
    got = interpolate_values(buf, 2, idx, w)
    assert got[0] == pytest.approx(2.0 * float((w**2).sum()))


def test_inject_accumulates_shared_corners(grid):
    """Two sources sharing support points must accumulate, not overwrite."""
    buf = np.zeros(tuple(s + 2 for s in grid.shape), dtype=np.float64)
    coords = np.array([[35.0, 35.0, 35.0], [35.0, 35.0, 35.0]])
    idx, w = support_points(coords, grid)
    inject_values(buf, 1, idx, w, np.array([1.0, 1.0]))
    assert buf.sum() == pytest.approx(2.0)


def test_interpolate_constant_field_exact(grid):
    buf = np.full(tuple(s + 2 for s in grid.shape), 7.0)
    coords = np.array([[12.3, 45.6, 78.9]])
    idx, w = support_points(coords, grid)
    assert interpolate_values(buf, 1, idx, w)[0] == pytest.approx(7.0)


coords3 = st.lists(
    st.tuples(*([st.floats(0.0, 100.0, allow_nan=False)] * 3)), min_size=1, max_size=8
)


@given(coords=coords3)
@settings(max_examples=50, deadline=None)
def test_partition_of_unity(coords):
    """Multilinear weights always sum to 1 — amplitude conservation."""
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    _, w = support_points(np.array(coords), grid)
    np.testing.assert_allclose(w.sum(axis=1), 1.0, rtol=1e-12)


@given(coords=coords3)
@settings(max_examples=50, deadline=None)
def test_weights_nonnegative_bounded(coords):
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    _, w = support_points(np.array(coords), grid)
    assert (w >= -1e-12).all() and (w <= 1 + 1e-12).all()


@given(coords=coords3, amp=st.floats(-10, 10, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_injection_conserves_amplitude(coords, amp):
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    buf = np.zeros(tuple(s + 2 for s in grid.shape), dtype=np.float64)
    idx, w = support_points(np.array(coords), grid)
    inject_values(buf, 1, idx, w, np.full(len(coords), amp))
    assert buf.sum() == pytest.approx(amp * len(coords), rel=1e-9, abs=1e-9)


def test_interpolate_linear_field_exact(grid):
    """Multilinear interpolation is exact on (multi)linear fields."""
    pad = 1
    shape = tuple(s + 2 for s in grid.shape)
    xs = (np.arange(shape[0]) - pad) * 10.0
    ys = (np.arange(shape[1]) - pad) * 10.0
    zs = (np.arange(shape[2]) - pad) * 10.0
    buf = (2.0 * xs[:, None, None] - 0.5 * ys[None, :, None] + zs[None, None, :] + 3.0)
    coords = np.array([[12.3, 45.6, 78.9], [99.0, 1.0, 50.0]])
    idx, w = support_points(coords, grid)
    got = interpolate_values(buf, pad, idx, w)
    expected = 2.0 * coords[:, 0] - 0.5 * coords[:, 1] + coords[:, 2] + 3.0
    np.testing.assert_allclose(got, expected, rtol=1e-12)
