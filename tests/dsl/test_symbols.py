"""Unit tests for the symbolic expression engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.symbols import (
    Add,
    Call,
    Indexed,
    Mul,
    NonLinearError,
    Number,
    Pow,
    S_ONE,
    S_ZERO,
    Symbol,
    cos,
    sin,
    sqrt,
    sympify,
)


class DummyFunc:
    """Minimal stand-in for a grid function inside Indexed."""

    def __init__(self, name):
        self.name = name


F = DummyFunc("f")
G = DummyFunc("g")
X, Y = Symbol("x"), Symbol("y")


def acc(func=F, **offs):
    return Indexed(func, {Symbol(k): v for k, v in offs.items()} or {Symbol("x"): 0})


# -- sympify ----------------------------------------------------------------------
def test_sympify_int_and_float():
    assert sympify(3) == Number(3)
    assert sympify(2.5) == Number(2.5)


def test_sympify_integral_float_canonicalises():
    assert Number(2.0) == Number(2)
    assert hash(Number(2.0)) == hash(Number(2))


def test_sympify_rejects_bool_and_junk():
    with pytest.raises(TypeError):
        sympify(True)
    with pytest.raises(TypeError):
        sympify("nope")


def test_sympify_passthrough():
    e = X + 1
    assert sympify(e) is e


# -- construction & canonicalisation ----------------------------------------------
def test_add_flattens_and_folds():
    e = Add(X, Add(Y, Number(2)), Number(3))
    assert isinstance(e, Add)
    assert Number(5) in e.args
    assert len(e.args) == 3  # x, y, 5


def test_add_drops_zero_and_collapses():
    assert Add(X, Number(0)) == X
    assert Add() == S_ZERO
    assert Add(Number(2), Number(-2)) == S_ZERO


def test_mul_flattens_folds_and_absorbs_zero():
    assert Mul(X, Number(0), Y) == S_ZERO
    assert Mul(Number(2), Mul(Number(3), X)) == Mul(Number(6), X)
    assert Mul(X) == X
    assert Mul() == S_ONE


def test_mul_unit_coefficient_dropped():
    assert Mul(Number(1), X) == X


def test_pow_folding():
    assert Pow(X, Number(0)) == S_ONE
    assert Pow(X, Number(1)) == X
    assert Pow(Number(2), Number(10)) == Number(1024)
    assert Pow(Number(4), Number(-1)) == Number(0.25)


def test_operator_overloads():
    e = (X + 1) * 2 - Y / 2
    env = {X: 3.0, Y: 4.0}
    assert e.evaluate(env) == pytest.approx(6.0)


def test_neg_and_sub():
    assert (-X).evaluate({X: 2.0}) == -2.0
    assert (5 - X).evaluate({X: 2.0}) == 3.0
    assert (1 / X).evaluate({X: 4.0}) == 0.25


# -- equality / hashing -------------------------------------------------------------
def test_structural_equality_and_hash():
    a = Add(X, Mul(Number(2), Y))
    b = Add(X, Mul(Number(2), Y))
    assert a == b and hash(a) == hash(b)
    assert a != Add(X, Mul(Number(3), Y))


def test_indexed_equality_sorted_offsets():
    a = Indexed(F, {Symbol("x"): 1, Symbol("y"): 0})
    b = Indexed(F, {Symbol("y"): 0, Symbol("x"): 1})
    assert a == b and hash(a) == hash(b)


def test_indexed_distinguishes_functions_and_offsets():
    assert Indexed(F, {X: 1}) != Indexed(G, {X: 1})
    assert Indexed(F, {X: 1}) != Indexed(F, {X: 2})


def test_expressions_are_immutable():
    with pytest.raises(AttributeError):
        X.name = "other"


# -- traversal ---------------------------------------------------------------------
def test_free_symbols():
    e = X * 2 + Y ** 2 + Number(3)
    assert e.free_symbols() == frozenset({X, Y})


def test_atoms_by_type():
    ix = Indexed(F, {X: 0})
    e = ix * 2 + X
    assert e.atoms(Indexed) == frozenset({ix})


def test_contains():
    e = (X + Y) * 2
    assert e.contains(X) and e.contains(Y)
    assert not e.contains(Symbol("z"))


# -- substitution ---------------------------------------------------------------------
def test_subs_symbol():
    e = X * Y + X
    out = e.subs({X: Number(2)})
    assert out.evaluate({Y: 3.0}) == 8.0


def test_subs_simultaneous():
    e = X + Y
    out = e.subs({X: Y, Y: X})  # swap, not chain
    assert out == Add(Y, X)


def test_subs_indexed():
    ix = Indexed(F, {X: 0})
    shifted = ix.shift(Symbol("x"), 1)
    e = ix * 2
    out = e.subs({ix: shifted})
    assert out.atoms(Indexed) == frozenset({shifted})


def test_indexed_shift_accumulates():
    ix = Indexed(F, {X: 0})
    assert ix.shift(X, 1).shift(X, 2) == ix.shift(X, 3)


# -- linear decomposition ----------------------------------------------------------------
def test_as_linear_simple():
    t = Indexed(F, {X: 0})
    e = Mul(Number(3), t) + Y
    a, b = e.as_linear(t)
    assert a == Number(3) and b == Y


def test_as_linear_nested_product():
    t = Indexed(F, {X: 0})
    m = Indexed(G, {X: 0})
    e = Mul(m, Add(t, Mul(Number(-2), Y)))
    a, b = e.as_linear(t)
    assert a == m
    assert b == Mul(m, Mul(Number(-2), Y))


def test_as_linear_absent_target():
    a, b = (X + 1).as_linear(Indexed(F, {X: 0}))
    assert a == S_ZERO


def test_as_linear_rejects_nonlinear():
    t = Indexed(F, {X: 0})
    with pytest.raises(NonLinearError):
        (Pow(t, Number(2))).as_linear(t)
    with pytest.raises(NonLinearError):
        Mul(t, t).as_linear(t)
    with pytest.raises(NonLinearError):
        Call("sin", t).as_linear(t)


# -- calls --------------------------------------------------------------------------------
def test_call_numeric_folding():
    assert Call("cos", Number(0)) == Number(1)
    assert sin(0) == S_ZERO


def test_call_evaluates_with_numpy():
    e = sqrt(X)
    out = e.evaluate({X: np.array([4.0, 9.0])})
    np.testing.assert_allclose(out, [2.0, 3.0])


def test_call_str():
    assert str(cos(X)) == "cos(x)"


# -- evaluation errors ------------------------------------------------------------------------
def test_unbound_symbol_raises():
    with pytest.raises(KeyError, match="x"):
        X.evaluate({})


def test_unbound_indexed_raises():
    with pytest.raises(KeyError):
        Indexed(F, {X: 0}).evaluate({})


# -- property-based: algebraic laws under evaluation -------------------------------------------
nums = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)


@given(a=nums, b=nums, c=nums)
@settings(max_examples=60, deadline=None)
def test_eval_matches_python_arithmetic(a, b, c):
    e = (X + a) * (Y + b) - c
    expected = (1.5 + a) * (-2.25 + b) - c
    assert e.evaluate({X: 1.5, Y: -2.25}) == pytest.approx(expected, rel=1e-6, abs=1e-6)


@given(vals=st.lists(nums, min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_add_fold_is_sum(vals):
    e = Add(*[Number(float(v)) for v in vals])
    assert isinstance(e, Number)
    assert float(e.value) == pytest.approx(float(sum(float(v) for v in vals)), rel=1e-6, abs=1e-6)


@given(shift1=st.integers(-5, 5), shift2=st.integers(-5, 5))
@settings(max_examples=40, deadline=None)
def test_shift_composition(shift1, shift2):
    ix = Indexed(F, {X: 0})
    assert ix.shift(X, shift1).shift(X, shift2) == ix.shift(X, shift1 + shift2)
