"""Checkpoint/restart: an interrupted-then-resumed run must be bit-identical
to the uninterrupted one — wavefields *and* receiver traces — on every
schedule."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.errors import InjectedFault
from repro.propagators import AcousticPropagator, SeismicModel, point_source, receiver_line
from repro.runtime import (
    CheckpointConfig,
    Fault,
    FaultInjector,
    FileCheckpointStore,
    MemoryCheckpointStore,
)

from ..conftest import make_acoustic_operator, run_and_capture

NT = 10
DT = 0.5
CRASH_T = 6

SCHEDULES = {
    "naive": NaiveSchedule(),
    "spatial": SpatialBlockSchedule(block=(5, 4)),
    "wavefront": WavefrontSchedule(tile=(6, 6), height=2),
}


def _schedule_param():
    return pytest.mark.parametrize(
        "schedule", list(SCHEDULES.values()), ids=list(SCHEDULES)
    )


def _mode(schedule):
    return "precomputed" if isinstance(schedule, WavefrontSchedule) else "auto"


@pytest.mark.faults
@_schedule_param()
def test_restart_is_bit_identical(grid2d, schedule, tmp_path):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, schedule, _mode(schedule))

    # interrupted run: checkpoint every 2 steps, injected abort at CRASH_T
    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    store = MemoryCheckpointStore(keep=2)
    cfg = CheckpointConfig(every=2, store=store)
    faults = FaultInjector([Fault(t=CRASH_T, kind="raise")])
    with pytest.raises(InjectedFault):
        op.apply(
            time_M=NT, dt=DT, schedule=schedule, sparse_mode=_mode(schedule),
            checkpoint=cfg, faults=faults,
        )
    snap = store.latest()
    assert snap is not None and 0 < snap.step <= CRASH_T

    # resume: the monitor restores the snapshot and replays the remainder
    op.apply(
        time_M=NT, dt=DT, schedule=schedule, sparse_mode=_mode(schedule),
        checkpoint=CheckpointConfig(every=2, store=store, resume=True),
    )
    np.testing.assert_array_equal(u.interior(NT), ref_u)
    np.testing.assert_array_equal(rec.data, ref_rec)


@_schedule_param()
def test_checkpointed_run_unchanged_without_resume(grid2d, schedule):
    """Snapshotting must not perturb the run it observes."""
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, schedule, _mode(schedule))
    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    op.apply(
        time_M=NT, dt=DT, schedule=schedule, sparse_mode=_mode(schedule),
        checkpoint=CheckpointConfig(every=3),
    )
    np.testing.assert_array_equal(u.interior(NT), ref_u)
    np.testing.assert_array_equal(rec.data, ref_rec)


@pytest.mark.faults
def test_restart_from_file_store(grid2d, tmp_path):
    schedule = WavefrontSchedule(tile=(6, 6), height=2)
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, schedule, "precomputed")

    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    store = FileCheckpointStore(tmp_path / "ckpt", keep=2)
    faults = FaultInjector([Fault(t=CRASH_T, kind="raise")])
    with pytest.raises(InjectedFault):
        op.apply(
            time_M=NT, dt=DT, schedule=schedule, sparse_mode="precomputed",
            checkpoint=CheckpointConfig(every=2, store=store), faults=faults,
        )
    assert list((tmp_path / "ckpt").glob("ckpt_*.npz"))

    op.apply(
        time_M=NT, dt=DT, schedule=schedule, sparse_mode="precomputed",
        checkpoint=CheckpointConfig(every=2, store=store, resume=True),
    )
    np.testing.assert_array_equal(u.interior(NT), ref_u)
    np.testing.assert_array_equal(rec.data, ref_rec)


def test_file_store_keeps_newest(tmp_path):
    from repro.runtime.checkpoint import Snapshot

    store = FileCheckpointStore(tmp_path, keep=2)
    for step in (2, 4, 6):
        store.save(
            Snapshot(step=step, fields={"u": np.full((3, 3), step, np.float32)},
                     receivers=[])
        )
    assert len(list(tmp_path.glob("ckpt_*.npz"))) == 2
    latest = store.latest()
    assert latest.step == 6
    np.testing.assert_array_equal(latest.fields["u"], np.full((3, 3), 6, np.float32))
    store.clear()
    assert store.latest() is None


def test_memory_store_ring():
    from repro.runtime.checkpoint import Snapshot

    store = MemoryCheckpointStore(keep=1)
    store.save(Snapshot(step=1, fields={}, receivers=[]))
    store.save(Snapshot(step=3, fields={}, receivers=[]))
    assert len(store) == 1 and store.latest().step == 3


def test_resume_outside_range_restarts_clean(grid2d):
    """A stale snapshot beyond time_M must be ignored, not restored."""
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    store = MemoryCheckpointStore()
    op.apply(time_M=NT, dt=DT, checkpoint=CheckpointConfig(every=2, store=store))
    assert store.latest().step > 4
    ref_u, ref_rec = run_and_capture(op, u, rec, 4, DT, NaiveSchedule())
    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    op.apply(
        time_M=4, dt=DT,
        checkpoint=CheckpointConfig(every=2, store=MemoryCheckpointStore(), resume=True),
    )
    np.testing.assert_array_equal(u.interior(4), ref_u)


@pytest.mark.faults
def test_propagator_restart_bit_identical():
    """End-to-end: acoustic propagator crash/resume through forward()."""
    def build():
        model = SeismicModel((20, 20, 20), (10.0,) * 3, 2.0, nbl=4, space_order=4)
        dt = model.critical_dt("acoustic")
        nt = 12
        src = point_source("src", model.grid, nt + 2, [model.domain_center],
                           f0=0.03, dt=dt)
        recv = receiver_line("rec", model.grid, nt + 2, npoint=4, depth=60.0)
        return AcousticPropagator(model, space_order=4, source=src, receivers=recv), dt, nt

    schedule = WavefrontSchedule(tile=(8, 8), height=2)
    prop, dt, nt = build()
    ref_rec, _ = prop.forward(nt=nt, dt=dt, schedule=schedule)
    ref_u = prop.u.interior(nt).copy()

    prop2, dt2, _ = build()
    store = MemoryCheckpointStore()
    faults = FaultInjector([Fault(t=7, kind="raise")])
    with pytest.raises(InjectedFault):
        prop2.forward(
            nt=nt, dt=dt2, schedule=schedule,
            checkpoint=CheckpointConfig(every=2, store=store), faults=faults,
        )
    # resume: forward() skips the zero-field reset when a snapshot is present
    rec2, _ = prop2.forward(
        nt=nt, dt=dt2, schedule=schedule,
        checkpoint=CheckpointConfig(every=2, store=store, resume=True),
    )
    np.testing.assert_array_equal(prop2.u.interior(nt), ref_u)
    np.testing.assert_array_equal(rec2, ref_rec)
