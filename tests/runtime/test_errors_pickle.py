"""Every structured error must survive a pickle round-trip with its full
context intact — the batch-execution workers report failures to the parent
process as pickles, and an error that loses its ``(t, tile, field, ...)``
context on the way defeats the whole taxonomy."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import (
    CheckpointCorruptError,
    CoordinateOutOfDomain,
    EngineCompilationError,
    InjectedFault,
    InvalidTimeRange,
    JobError,
    JobTimeoutError,
    JournalCorruptError,
    KernelLintError,
    NumericalBlowup,
    PlanValidationError,
    PoisonJobError,
    QueueSaturatedError,
    ReproError,
    RetryExhaustedError,
    ScheduleLegalityError,
    StabilityViolation,
    StreamAdmissionError,
    WorkerCrashError,
)

CASES = [
    (ReproError, dict(t=3, tile=((0, 4), (2, 8)), field="u", extra="x")),
    (NumericalBlowup, dict(t=12, tile=((0, 4), (0, 4)), field="u", point=(1, 2), count=9)),
    (CoordinateOutOfDomain, dict(indices=[0, 3], coordinates=[(1.0, 2.0), (3.0, 4.0)])),
    (StabilityViolation, dict(dt=0.9, critical=0.5, kind="acoustic")),
    (EngineCompilationError, dict(engine="fused")),
    (KernelLintError, dict(engine="fused", diagnostics=[])),
    (ScheduleLegalityError, dict(counterexample=None, schedule="wavefront")),
    (InvalidTimeRange, dict(t=None)),
    (PlanValidationError, dict(field="src")),
    (InjectedFault, dict(t=7, tile=((0, 8),))),
    (CheckpointCorruptError, dict(path="/tmp/ckpt_0000000008.npz", reason="BadZipFile")),
    (JobError, dict(job_id="j1")),
    (QueueSaturatedError, dict(capacity=8, pending=8)),
    (QueueSaturatedError, dict(capacity=4, pending=4, tenant="team-a")),
    (JobTimeoutError, dict(job_id="j2", deadline=1.5, elapsed=3.2)),
    (WorkerCrashError, dict(job_id="j3", exitcode=-9, attempt=1)),
    (RetryExhaustedError, dict(job_id="j4", attempts=[{"attempt": 0, "outcome": "fault"}])),
    (JournalCorruptError,
     dict(path="/tmp/journal.jsonl", line=7, reason="SHA-256 trailer mismatch")),
    (PoisonJobError,
     dict(job_id="j5", crashes=3, attempts=[{"attempt": 0, "outcome": "crash"}],
          job_dir="/tmp/b/j5")),
    (StreamAdmissionError, dict(admitted=4, reason="ValueError: bad spec")),
]


@pytest.mark.parametrize("cls,context", CASES, ids=[c[0].__name__ for c in CASES])
def test_pickle_roundtrip_preserves_context(cls, context):
    err = cls("something broke", **context)
    clone = pickle.loads(pickle.dumps(err))
    assert type(clone) is cls
    assert str(clone) == str(err)
    assert clone.t == err.t
    assert clone.tile == err.tile
    assert clone.field == err.field
    assert clone.context == err.context
    for key, value in context.items():
        if key in ("t", "tile", "field"):
            continue
        assert getattr(clone, key) == value


def test_builtin_compat_survives_pickle():
    # the ValueError/RuntimeError multiple inheritance must survive too
    err = pickle.loads(pickle.dumps(StabilityViolation("dt too big", dt=1.0, critical=0.5)))
    assert isinstance(err, ValueError)
    err = pickle.loads(pickle.dumps(EngineCompilationError("no compile", engine="fused")))
    assert isinstance(err, RuntimeError)


def test_nested_cause_not_required_for_roundtrip():
    inner = InjectedFault("bang", t=3)
    outer = RetryExhaustedError("spent", job_id="j", attempts=[{"err": str(inner)}])
    clone = pickle.loads(pickle.dumps(outer))
    assert clone.attempts[0]["err"] == str(inner)
