"""ENOSPC hardening: storage exhaustion degrades a run, it does not kill it.

``FileCheckpointStore.save`` and ``BatchJournal.append`` translate a raw
``OSError(ENOSPC)`` into a structured
:class:`~repro.errors.StorageExhaustedError`; the runtime monitor reacts by
suspending the checkpoint cadence and letting the run finish.
"""

from __future__ import annotations

import errno
import pickle

import numpy as np
import pytest

from repro.core import NaiveSchedule
from repro.errors import StorageExhaustedError
from repro.jobs import BatchJournal
from repro.runtime import CheckpointConfig
from repro.runtime.checkpoint import FileCheckpointStore, Snapshot

from ..conftest import make_acoustic_operator

NT = 8
DT = 0.5


def _enospc(*args, **kwargs):
    raise OSError(errno.ENOSPC, "No space left on device")


def test_checkpoint_store_wraps_enospc(tmp_path, monkeypatch):
    store = FileCheckpointStore(tmp_path, keep=2)
    snap = Snapshot(step=4, fields={"u": np.ones((3, 3))}, receivers=[])
    monkeypatch.setattr(np, "savez", _enospc)
    with pytest.raises(StorageExhaustedError) as excinfo:
        store.save(snap)
    err = excinfo.value
    assert err.context["op"] == "checkpoint_save"
    assert "ckpt_0000000004" in err.context["path"]
    # the half-written temp file must not survive to shadow a good snapshot
    assert not list(tmp_path.glob("*.tmp"))
    assert store.latest() is None


def test_storage_exhausted_error_survives_the_worker_pipe():
    err = StorageExhaustedError("disk full", path="/x/journal.jsonl",
                                op="journal_append")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, StorageExhaustedError)
    assert clone.context["op"] == "journal_append"


def test_journal_append_wraps_enospc(tmp_path):
    journal = BatchJournal(tmp_path / "journal.jsonl", fsync=False)

    class FullDisk:
        def write(self, data):
            raise OSError(errno.ENOSPC, "No space left on device")

        def flush(self):
            pass

        def close(self):
            pass

    journal.append("drain", signal=None)  # healthy append first
    real = journal._fh
    journal._fh = FullDisk()
    try:
        with pytest.raises(StorageExhaustedError) as excinfo:
            journal.append("drain", signal=None)
        assert excinfo.value.context["op"] == "journal_append"
    finally:
        journal._fh = real
        journal.close()


def test_enospc_mid_run_suspends_checkpointing_not_the_run(
    grid2d, tmp_path, monkeypatch
):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    store = FileCheckpointStore(tmp_path)
    calls = []

    def full_save(snapshot):
        calls.append(snapshot.step)
        raise StorageExhaustedError("disk full", path="x", op="checkpoint_save")

    monkeypatch.setattr(store, "save", full_save)
    cfg = CheckpointConfig(every=2, store=store)
    # the run must complete despite every save failing with ENOSPC: the
    # monitor drops the cadence after the first failure
    op.apply(time_M=NT, dt=DT, schedule=NaiveSchedule(), checkpoint=cfg)
    assert len(calls) == 1
