"""Structured error taxonomy and pre-flight validation."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.dsl import Grid, SparseTimeFunction
from repro.errors import (
    CoordinateOutOfDomain,
    InvalidTimeRange,
    NumericalBlowup,
    PlanValidationError,
    ReproError,
    StabilityViolation,
    StabilityWarning,
)
from repro.propagators import AcousticPropagator, SeismicModel, point_source
from repro.runtime.preflight import check_cfl, check_masks

from ..conftest import make_acoustic_operator


# -- taxonomy --------------------------------------------------------------------------


def test_error_context_renders_and_is_attributed():
    err = NumericalBlowup(
        "boom", t=17, tile=((0, 8), (8, 16)), field="u", point=(3, 9), count=4
    )
    assert err.t == 17
    assert err.tile == ((0, 8), (8, 16))
    assert err.field == "u"
    assert err.point == (3, 9)
    assert err.count == 4
    msg = str(err)
    assert "t=17" in msg and "field='u'" in msg and "tile=" in msg
    assert err.context == {"point": (3, 9), "count": 4}


def test_error_without_context_renders_bare():
    assert str(ReproError("plain failure")) == "plain failure"


def test_taxonomy_is_backwards_compatible():
    # pre-resilience call sites catch the builtin types; the structured
    # subclasses must keep satisfying them
    assert issubclass(CoordinateOutOfDomain, ValueError)
    assert issubclass(StabilityViolation, ValueError)
    assert issubclass(InvalidTimeRange, ValueError)
    assert issubclass(PlanValidationError, ValueError)


# -- coordinate validation -------------------------------------------------------------


def test_sparse_construction_names_offending_points(grid2d):
    lo = np.asarray(grid2d.origin)
    hi = lo + np.asarray(grid2d.extent)
    coords = np.stack([lo + 5.0, hi + 50.0, lo - 3.0])
    with pytest.raises(CoordinateOutOfDomain) as excinfo:
        SparseTimeFunction("src", grid2d, npoint=3, nt=4, coordinates=coords)
    err = excinfo.value
    # indices and physical coordinates of *each* bad point are reported
    assert list(err.indices) == [1, 2]
    np.testing.assert_allclose(err.coordinates, coords[[1, 2]])
    assert "point 1" in str(err) and "point 2" in str(err)
    assert "outside the domain" in str(err)
    assert err.field == "src"


def test_boundary_points_are_valid(grid2d):
    lo = np.asarray(grid2d.origin)
    hi = lo + np.asarray(grid2d.extent)
    SparseTimeFunction("src", grid2d, npoint=2, nt=4, coordinates=np.stack([lo, hi]))


# -- CFL -------------------------------------------------------------------------------


@pytest.fixture
def model():
    return SeismicModel((18, 18, 18), (10.0,) * 3, 2.0, nbl=4, space_order=4)


def test_validate_dt_accepts_critical_and_rejects_beyond(model):
    crit = model.critical_dt("acoustic")
    assert model.validate_dt(crit, kind="acoustic") == pytest.approx(crit)
    with pytest.raises(StabilityViolation) as excinfo:
        model.validate_dt(2.0 * crit, kind="acoustic")
    err = excinfo.value
    assert err.dt == pytest.approx(2.0 * crit)
    assert err.critical == pytest.approx(crit)
    assert err.kind == "acoustic"


def test_validate_dt_rejects_nonpositive(model):
    with pytest.raises(StabilityViolation):
        model.validate_dt(0.0)


def test_check_cfl_policies(model):
    crit = model.critical_dt("acoustic")
    with pytest.raises(StabilityViolation):
        check_cfl(2.0 * crit, model, policy="raise")
    with pytest.warns(StabilityWarning):
        assert check_cfl(2.0 * crit, model, policy="warn") == pytest.approx(crit)
    with pytest.raises(ValueError, match="policy"):
        check_cfl(crit, model, policy="maybe")


def test_forward_cfl_policy(model):
    dt = 3.0 * model.critical_dt("acoustic")
    nt = 3
    src = point_source("src", model.grid, nt + 2, [model.domain_center], f0=0.03, dt=dt)
    prop = AcousticPropagator(model, space_order=4, source=src)
    with pytest.raises(StabilityViolation):
        prop.forward(nt=nt, dt=dt, cfl="raise")
    # the default is warn-only: deliberately unstable runs stay legal
    with pytest.warns(StabilityWarning):
        prop.forward(nt=nt, dt=dt)


# -- time-range / shape validation at the executors ------------------------------------


def test_apply_rejects_reversed_time_range(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=6)
    with pytest.raises(InvalidTimeRange, match="exceed"):
        op.apply(time_M=2, time_m=5, dt=0.5)


def test_executor_rejects_reversed_range(grid2d):
    from repro.execution.executors import run_naive

    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=6)
    plan = op._bind(0.5, NaiveSchedule(), "offgrid")
    with pytest.raises(InvalidTimeRange, match="reversed"):
        run_naive(plan, 5, 2)
    run_naive(plan, 3, 3)  # empty range is a legal no-op at this level


def test_block_rank_exceeding_grid_rank(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=6)
    with pytest.raises(PlanValidationError, match="rank"):
        op.apply(time_M=3, dt=0.5, schedule=SpatialBlockSchedule(block=(4, 4, 4)))
    with pytest.raises(PlanValidationError, match="rank"):
        op.apply(
            time_M=4,
            dt=0.5,
            schedule=WavefrontSchedule(tile=(4, 4, 4), block=(4, 4, 4), height=2),
            sparse_mode="precomputed",
        )


def test_empty_grid_extent_rejected():
    grid = Grid(shape=(8, 4), extent=(70.0, 30.0))
    op, u, m, src, rec = make_acoustic_operator(
        grid, nt=4, src_coords=False, rec_coords=False
    )
    from repro.execution.executors import run_naive

    plan = op._bind(0.5, NaiveSchedule(), "offgrid")
    grid.shape = (8, 0)  # simulate a degenerate extent slipping through
    try:
        with pytest.raises(PlanValidationError, match="empty extent"):
            run_naive(plan, 0, 2)
    finally:
        grid.shape = (8, 4)


# -- structural pre-flight of precomputed sparse structures ----------------------------


def test_preflight_accepts_consistent_masks(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=8)
    plan = op.apply(
        time_M=4, dt=0.5, schedule=WavefrontSchedule(tile=(6, 6), height=2)
    )
    plan.validate()  # memoised second pass


def _aligned_plan(grid, nt=8):
    op, u, m, src, rec = make_acoustic_operator(grid, nt=nt)
    plan = op._bind(0.5, WavefrontSchedule(tile=(6, 6), height=2), "precomputed")
    return op, plan


def test_preflight_detects_corrupt_sm(grid2d):
    op, plan = _aligned_plan(grid2d)
    inj = plan.injections[0][0]
    masks = inj.dsrc.masks
    masks._preflight_ok = False
    flat = masks.sm.reshape(-1)
    on = np.flatnonzero(flat)
    flat[on[0]] = 0  # drop one affected point from the binary mask
    with pytest.raises(PlanValidationError, match="mask"):
        plan.validate()
    flat[on[0]] = 1
    masks._preflight_ok = False
    plan.validate()


def test_preflight_detects_wavelet_shape_mismatch(grid2d):
    op, plan = _aligned_plan(grid2d)
    dsrc = plan.injections[0][0].dsrc
    dsrc.masks._preflight_ok = False
    good = dsrc.data
    dsrc.data = good[:, :-1]  # drop one decomposed wavelet column
    try:
        with pytest.raises(PlanValidationError, match="decomposed source"):
            plan.validate()
    finally:
        dsrc.data = good


def test_preflight_detects_receiver_weight_mismatch(grid2d):
    op, plan = _aligned_plan(grid2d)
    drec = plan.receivers[0][0].drec
    drec.masks._preflight_ok = False
    good = drec.weights
    drec.weights = good[:, :-1]
    try:
        with pytest.raises(PlanValidationError, match="weight matrix"):
            plan.validate()
    finally:
        drec.weights = good


def test_check_masks_is_memoised(grid2d):
    op, plan = _aligned_plan(grid2d)
    masks = plan.injections[0][0].dsrc.masks
    plan.validate()
    assert masks._preflight_ok
    # memoisation means a later (undetected) mutation is deliberately not
    # rescanned -- corruption *between* applies needs an explicit reset
    masks.sm.reshape(-1)[0] = 1 - masks.sm.reshape(-1)[0]
    plan.validate()
    masks._preflight_ok = False
    with pytest.raises(PlanValidationError):
        check_masks(masks)
    masks.sm.reshape(-1)[0] = 1 - masks.sm.reshape(-1)[0]


# -- pipeline preflight ----------------------------------------------------------------


def test_pipeline_preflight_checks_cfl_and_geometry(grid2d):
    from repro.core.pipeline import TemporalBlockingPipeline

    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=8)
    model = SeismicModel((10, 8), (10.0, 10.0), 2.0, nbl=2, space_order=4)
    crit = model.critical_dt("acoustic")
    pipe = TemporalBlockingPipeline(op, dt=2.0 * crit, model=model)
    with pytest.raises(StabilityViolation):
        pipe.preflight()
    ok = TemporalBlockingPipeline(op, dt=0.5 * crit, model=model)
    ok.precompute()
    ok.preflight()  # post-precompute pass re-checks the built masks
