"""FileCheckpointStore crash-safety: atomic writes, structured corruption
errors, pruning.  The batch-execution supervisor polls this directory for
the first checkpoint before SIGKILLing a worker, so "a visible file is a
complete file" is a load-bearing invariant, not a nicety."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import CheckpointCorruptError
from repro.runtime.checkpoint import FileCheckpointStore, Snapshot


def make_snapshot(step: int) -> Snapshot:
    rng = np.random.default_rng(step)
    return Snapshot(
        step=step,
        fields={"u": rng.normal(size=(3, 6, 6)), "v": rng.normal(size=(2, 6, 6))},
        receivers=[
            {
                "output": rng.normal(size=(8, 4)),
                "staging": {2: rng.normal(size=4), 5: rng.normal(size=4)},
            }
        ],
    )


def assert_snapshots_equal(a: Snapshot, b: Snapshot) -> None:
    assert a.step == b.step
    assert set(a.fields) == set(b.fields)
    for name in a.fields:
        np.testing.assert_array_equal(a.fields[name], b.fields[name])
    assert len(a.receivers) == len(b.receivers)
    for ra, rb in zip(a.receivers, b.receivers):
        np.testing.assert_array_equal(ra["output"], rb["output"])
        assert set(ra["staging"]) == set(rb["staging"])
        for row in ra["staging"]:
            np.testing.assert_array_equal(ra["staging"][row], rb["staging"][row])


def test_round_trip_preserves_everything(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    snap = make_snapshot(8)
    store.save(snap)
    assert_snapshots_equal(store.latest(), snap)


def test_empty_store_returns_none(tmp_path):
    assert FileCheckpointStore(tmp_path).latest() is None


def test_save_leaves_no_tmp_files(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    for step in (4, 8, 12):
        store.save(make_snapshot(step))
    assert list(tmp_path.glob("*.tmp")) == []


def test_prunes_to_keep_newest(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    for step in (4, 8, 12, 16):
        store.save(make_snapshot(step))
    names = sorted(p.name for p in tmp_path.glob("ckpt_*.npz"))
    assert names == ["ckpt_0000000012.npz", "ckpt_0000000016.npz"]
    assert store.latest().step == 16


def test_stale_tmp_from_a_killed_writer_is_invisible_and_cleaned(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    store.save(make_snapshot(4))
    # simulate a writer SIGKILLed mid-save: a half-written temp sibling
    (tmp_path / "ckpt_0000000008.npz.tmp").write_bytes(b"\x00" * 37)
    assert store.latest().step == 4  # tmp never shadows a real snapshot
    store.save(make_snapshot(8))
    assert list(tmp_path.glob("*.tmp")) == []  # and the next save sweeps it


def test_truncated_snapshot_raises_structured_error(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    store.save(make_snapshot(8))
    path = tmp_path / "ckpt_0000000008.npz"
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(CheckpointCorruptError) as excinfo:
        store.latest()
    err = excinfo.value
    assert err.path == str(path)
    assert err.reason  # carries the underlying decode failure
    # errors cross process boundaries in the job service
    clone = pickle.loads(pickle.dumps(err))
    assert clone.path == err.path and clone.reason == err.reason


def test_garbage_snapshot_raises_structured_error(tmp_path):
    store = FileCheckpointStore(tmp_path)
    (tmp_path / "ckpt_0000000004.npz").write_bytes(b"not a zip archive")
    with pytest.raises(CheckpointCorruptError, match="corrupt or truncated"):
        store.latest()


def test_snapshot_missing_step_key_is_corrupt(tmp_path):
    store = FileCheckpointStore(tmp_path)
    with open(tmp_path / "ckpt_0000000004.npz", "wb") as fh:
        np.savez(fh, **{"field.u": np.zeros(3)})
    with pytest.raises(CheckpointCorruptError) as excinfo:
        store.latest()
    assert "step" in excinfo.value.reason


def test_snapshot_missing_receiver_output_is_corrupt(tmp_path):
    store = FileCheckpointStore(tmp_path)
    with open(tmp_path / "ckpt_0000000004.npz", "wb") as fh:
        np.savez(
            fh,
            step=np.int64(4),
            **{"field.u": np.zeros(3), "rec0.staging.2": np.zeros(4)},
        )
    with pytest.raises(CheckpointCorruptError) as excinfo:
        store.latest()
    assert "receiver 0" in excinfo.value.reason


def test_clear_removes_snapshots_and_stale_tmps(tmp_path):
    store = FileCheckpointStore(tmp_path)
    store.save(make_snapshot(4))
    (tmp_path / "ckpt_0000000008.npz.tmp").write_bytes(b"junk")
    store.clear()
    assert list(tmp_path.iterdir()) == []
    assert store.latest() is None


def test_every_snapshot_gets_a_digest_sidecar(tmp_path):
    from repro.runtime.integrity import file_digest, read_digest

    store = FileCheckpointStore(tmp_path, keep=2)
    store.save(make_snapshot(8))
    path = tmp_path / "ckpt_0000000008.npz"
    assert read_digest(path) == file_digest(path)
    # pruning removes the sidecar along with its snapshot
    for step in (12, 16):
        store.save(make_snapshot(step))
    assert sorted(p.name for p in tmp_path.glob("*.sha256")) == [
        "ckpt_0000000012.npz.sha256",
        "ckpt_0000000016.npz.sha256",
    ]


def test_digest_mismatch_falls_back_to_the_previous_good_snapshot(tmp_path):
    """Bit rot atomic rename cannot prevent: the newest snapshot's bytes
    no longer match its sidecar.  ``latest`` must refuse it and fall back
    one checkpoint interval rather than restore damage into a live
    wavefield — or lose the whole run."""
    store = FileCheckpointStore(tmp_path, keep=2)
    store.save(make_snapshot(8))
    store.save(make_snapshot(12))
    newest = tmp_path / "ckpt_0000000012.npz"
    damaged = bytearray(newest.read_bytes())
    damaged[len(damaged) // 2] ^= 0xFF  # same length, one flipped bit
    newest.write_bytes(bytes(damaged))
    snap = store.latest()
    assert snap.step == 8
    assert_snapshots_equal(snap, make_snapshot(8))


def test_all_snapshots_damaged_raises_the_newest_failure(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    for step in (8, 12):
        store.save(make_snapshot(step))
        path = tmp_path / f"ckpt_{step:010d}.npz"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointCorruptError) as excinfo:
        store.latest()
    assert "ckpt_0000000012" in str(excinfo.value)
    assert "digest mismatch" in excinfo.value.reason


def test_legacy_snapshot_without_sidecar_still_loads(tmp_path):
    from repro.runtime.integrity import digest_path

    store = FileCheckpointStore(tmp_path)
    store.save(make_snapshot(8))
    digest_path(tmp_path / "ckpt_0000000008.npz").unlink()
    assert store.latest().step == 8
