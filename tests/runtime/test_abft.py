"""ABFT silent-corruption detection and tile-granular recovery.

A finite exponent-rewrite bit flip is invisible to the NaN/Inf health scan;
the ABFT amplitude invariant catches it at the next containment-unit
boundary, the monitor restores the entry micro-snapshot, and re-executing
just that unit yields a run bit-identical to a fault-free one — under every
schedule, since the containment unit is the schedule's own tile.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.dsl import Grid
from repro.errors import NumericalBlowup, SilentCorruptionError
from repro.runtime import (
    ABFTGuard,
    Fault,
    FaultInjector,
    HealthGuard,
    amplitude_ceiling,
    array_checksum,
    flip_finite,
)
from repro.runtime.checkpoint import (
    capture_micro_snapshot,
    restore_micro_snapshot,
)

from ..conftest import make_acoustic_operator

pytestmark = pytest.mark.faults

NT = 8
DT = 0.5

SCHEDULES = {
    "naive": NaiveSchedule(),
    "spatial": SpatialBlockSchedule(block=(5, 4)),
    "wavefront": WavefrontSchedule(tile=(6, 6), height=2),
}


def _schedule_param():
    return pytest.mark.parametrize(
        "schedule", list(SCHEDULES.values()), ids=list(SCHEDULES)
    )


def _run(op, u, rec, schedule, **kw):
    """Zero state, run with resilience kwargs, return (wavefield, receivers)."""
    u.data_with_halo[...] = 0.0
    if rec is not None:
        rec.data[...] = 0.0
    _apply(op, schedule, **kw)
    return u.interior(NT).copy(), (rec.data.copy() if rec is not None else None)


def _apply(op, schedule, **kw):
    mode = "precomputed" if isinstance(schedule, WavefrontSchedule) else "auto"
    return op.apply(time_M=NT, dt=DT, schedule=schedule, sparse_mode=mode, **kw)


# -- the block-checksum primitive ----------------------------------------------------


def test_array_checksum_is_content_addressed_and_flip_sensitive():
    rng = np.random.default_rng(0)
    a = rng.random((7, 9)).astype(np.float64)
    assert array_checksum(a) == array_checksum(a.copy())
    assert array_checksum(a) == array_checksum(np.asfortranarray(a))
    flipped = a.copy()
    flipped.view(np.uint8).reshape(-1)[13] ^= 0x10  # one-bit upset in the bytes
    assert array_checksum(flipped) != array_checksum(a)


# -- flip_finite: the injected corruption model --------------------------------------


@given(
    value=st.floats(allow_nan=False, allow_infinity=False, width=64),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_flip_finite_float64_stays_finite_and_huge(value, seed):
    corrupted, mask = flip_finite(value, np.float64, np.random.default_rng(seed))
    again, mask2 = flip_finite(value, np.float64, np.random.default_rng(seed))
    assert (corrupted, mask) == (again, mask2)  # seeded: fully deterministic
    assert math.isfinite(corrupted)  # invisible to the NaN/Inf scan
    # exponent is drawn from the top octaves: many orders of magnitude
    # above any certified amplitude bound, so ABFT is guaranteed to see it
    assert abs(corrupted) >= 1e250
    assert math.copysign(1.0, corrupted) == math.copysign(1.0, value)


@given(
    value=st.floats(allow_nan=False, allow_infinity=False, width=32),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_flip_finite_float32_stays_finite_and_huge(value, seed):
    corrupted, _ = flip_finite(value, np.float32, np.random.default_rng(seed))
    assert math.isfinite(float(corrupted))
    assert abs(float(corrupted)) >= 1e19
    assert corrupted.dtype == np.float32


def test_flip_finite_rejects_non_float_dtypes():
    with pytest.raises(ValueError, match="float32/float64"):
        flip_finite(1.0, np.int32, np.random.default_rng(0))


# -- detection + tile-granular recovery ----------------------------------------------


@_schedule_param()
def test_bitflip_is_detected_and_recovered_bit_identically(grid2d, schedule):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    clean_u, clean_rec = _run(op, u, rec, schedule)

    guard = ABFTGuard()
    faults = FaultInjector([Fault(t=4, kind="bitflip")], seed=11)
    dirty_u, dirty_rec = _run(op, u, rec, schedule, abft=guard, faults=faults)

    assert len(faults.flips) == 1  # the flip fired and was logged
    assert math.isfinite(faults.flips[0]["after"])
    assert guard.stats["detections"] >= 1
    assert guard.stats["tiles_reexecuted"] >= 1
    kinds = [e["kind"] for e in guard.events]
    assert "detection" in kinds and "reexecute" in kinds
    det = next(e for e in guard.events if e["kind"] == "detection")
    assert det["detector"] == "growth"
    assert det["observed"] is None or det["observed"] > det["bound"]
    # re-execution from the entry micro-snapshot: bit-identical recovery
    np.testing.assert_array_equal(dirty_u, clean_u)
    np.testing.assert_array_equal(dirty_rec, clean_rec)


@given(fault_t=st.integers(1, NT - 1), seed=st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_recovery_is_bit_identical_for_any_fault_site(fault_t, seed):
    # property form of the gate, over the wavefront (time-tiled) schedule:
    # wherever the flip lands and whatever value it rewrites, the recovered
    # run equals the clean run bit for bit
    grid = Grid(shape=(14, 12), extent=(130.0, 110.0))
    schedule = WavefrontSchedule(tile=(6, 6), height=2)
    op, u, m, src, rec = make_acoustic_operator(grid, nt=NT)
    clean_u, clean_rec = _run(op, u, rec, schedule)
    guard = ABFTGuard()
    faults = FaultInjector([Fault(t=fault_t, kind="bitflip")], seed=seed)
    dirty_u, dirty_rec = _run(op, u, rec, schedule, abft=guard, faults=faults)
    assert guard.stats["detections"] >= 1
    np.testing.assert_array_equal(dirty_u, clean_u)
    np.testing.assert_array_equal(dirty_rec, clean_rec)


def test_without_abft_the_flip_corrupts_the_run_silently(grid2d):
    # the motivating failure mode: a guard that only scans for NaN/Inf
    # (explicit max_abs disables the derived ceiling) completes "green"
    # with wrong receivers
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    clean_u, clean_rec = _run(op, u, rec, NaiveSchedule())
    guard = HealthGuard(check_every=1, max_abs=math.inf)
    faults = FaultInjector([Fault(t=4, kind="bitflip")], seed=11)
    dirty_u, dirty_rec = _run(op, u, rec, NaiveSchedule(), health=guard,
                              faults=faults)
    assert len(faults.flips) == 1
    assert np.isfinite(dirty_u).all()  # nothing for the NaN/Inf scan to see
    assert not np.array_equal(dirty_rec, clean_rec)


def test_exhausted_reexecution_budget_escalates(grid2d):
    # max_reexecutions=0: detection still fires but containment refuses,
    # so the error escalates to the checkpoint-restart / job-retry layer
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = ABFTGuard(max_reexecutions=0)
    faults = FaultInjector([Fault(t=4, kind="bitflip")], seed=11)
    with pytest.raises(SilentCorruptionError) as excinfo:
        _run(op, u, rec, NaiveSchedule(), abft=guard, faults=faults)
    assert excinfo.value.context["detector"] == "growth"
    assert guard.stats["detections"] == 1
    assert guard.stats["tiles_reexecuted"] == 0


def test_restore_without_ring_entry_reports_fallback():
    guard = ABFTGuard()
    assert guard.restore(None, 3) is False
    assert guard.events == [{"kind": "fallback", "t0": 3}]
    assert guard.stats["tiles_reexecuted"] == 0


def test_guard_validates_slack_and_reports_flat_describe(grid2d):
    with pytest.raises(ValueError, match="slack"):
        ABFTGuard(slack=0.5)
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = ABFTGuard()
    _run(op, u, rec, NaiveSchedule(), abft=guard)
    assert guard.amplitude_active
    meta = guard.describe()
    # the pool harvests these keys at the top level — keep them flat
    for key in ("checks", "detections", "tiles_reexecuted", "micro_snapshots",
                "micro_snapshot_bytes", "seconds", "events",
                "amplitude_active", "step_gain"):
        assert key in meta
    assert meta["detections"] == 0
    assert meta["checks"] >= NT  # one check per field per unit boundary
    assert meta["step_gain"] is not None and meta["step_gain"] >= 1.0


def test_amplitude_propagates_nan_instead_of_dropping_it():
    # Python's max() silently drops NaN; _amplitude must not, or a NaN that
    # appears inside a tile would pass the boundary check unnoticed
    class Stub:
        time_order = 2
        buffers = 3

        def __init__(self, slots):
            self._data = slots

    clean = Stub([np.ones((4, 4)), 2 * np.ones((4, 4)), -3 * np.ones((4, 4))])
    assert ABFTGuard._amplitude(clean, 2) == 3.0
    poisoned = [np.ones((4, 4)), np.ones((4, 4)), np.ones((4, 4))]
    poisoned[1][2, 2] = np.nan
    assert math.isnan(ABFTGuard._amplitude(Stub(poisoned), 2))


# -- micro-snapshots -----------------------------------------------------------------


def test_micro_snapshot_roundtrip_and_recycled_capture(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    plan = _apply(op, NaiveSchedule())
    snap = capture_micro_snapshot(plan, NT)
    assert snap.step == NT
    assert snap.nbytes() > 0
    saved = {n: {i: a.copy() for i, a in keep.items()}
             for n, keep in snap.slots.items()}

    u.data_with_halo[...] = -1.0
    rec.data[...] = -1.0
    assert restore_micro_snapshot(plan, snap) == NT
    for idx, arr in saved["u"].items():
        np.testing.assert_array_equal(u._data[idx], arr)

    # a retired snapshot donates its buffers: the recycled capture reuses
    # the same arrays (pure memcpy, no fresh allocation) yet equals a
    # fresh capture value-for-value
    recycled = capture_micro_snapshot(plan, NT, recycle=snap)
    donated = {id(a) for keep in snap.slots.values() for a in keep.values()}
    reused = {id(a) for keep in recycled.slots.values() for a in keep.values()}
    assert reused == donated
    for name, keep in recycled.slots.items():
        for idx, arr in keep.items():
            np.testing.assert_array_equal(arr, plan_slot(plan, name, idx))


def plan_slot(plan, name, idx):
    from repro.runtime.checkpoint import _plan_time_functions

    return _plan_time_functions(plan)[name]._data[idx]


def test_ring_is_bounded_by_micro_keep(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = ABFTGuard(micro_keep=2)
    _run(op, u, rec, NaiveSchedule(), abft=guard)
    assert guard.stats["micro_snapshots"] == NT  # one per containment unit
    assert len(guard._ring) <= 2


# -- the derived HealthGuard ceiling (CFL amplification bound) -----------------------


def test_health_guard_ceiling_is_derived_from_growth_certificate(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = HealthGuard(check_every=1)
    assert guard.max_abs_derived
    clean_u, _ = _run(op, u, rec, NaiveSchedule(), health=guard)
    assert guard.max_abs is not None and math.isfinite(guard.max_abs)
    # sound (the clean run stays under it) but not vacuous
    assert float(np.abs(clean_u).max()) < guard.max_abs


def test_derived_ceiling_turns_runaway_finite_values_into_blowups(grid2d):
    # satellite check: with the derived ceiling, even a *finite* runaway
    # value (here: an injected exponent rewrite) is caught by the plain
    # health guard as an amplitude blowup
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = HealthGuard(check_every=1)
    faults = FaultInjector([Fault(t=4, kind="bitflip")], seed=11)
    with pytest.raises(NumericalBlowup):
        _run(op, u, rec, NaiveSchedule(), health=guard, faults=faults)


def test_amplitude_ceiling_scales_with_sources(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    plan = _apply(op, NaiveSchedule())
    ceiling = amplitude_ceiling(plan, NT, step_gain=1.5)
    assert ceiling is not None and ceiling > 0
    # no sources, zero state: nothing to scale a bound against
    op0, u0, m0, src0, rec0 = make_acoustic_operator(
        grid2d, nt=NT, src_coords=False, rec_coords=False
    )
    u0.data_with_halo[...] = 0.0
    plan0 = _apply(op0, NaiveSchedule())
    assert amplitude_ceiling(plan0, NT) is None
