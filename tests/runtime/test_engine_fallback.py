"""Graceful degradation down the engine ladder: fused -> kernel -> interp.

A codegen failure must never abort a run that a lower rung can execute
bit-identically; strict mode turns the same failure into a structured error.
"""

import warnings

import numpy as np
import pytest

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.errors import EngineCompilationError, EngineFallbackWarning
from repro.runtime import break_engine

from ..conftest import make_acoustic_operator, run_and_capture

NT = 8
DT = 0.5


def test_broken_fused_degrades_to_kernel_with_identical_numerics(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), engine="kernel")

    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"):
        with pytest.warns(EngineFallbackWarning, match="'fused'.*degrading to 'kernel'"):
            deg_u, deg_rec = run_and_capture(
                op2, u2, rec2, NT, DT, NaiveSchedule(), engine="fused"
            )
    np.testing.assert_array_equal(deg_u, ref_u)
    np.testing.assert_array_equal(deg_rec, ref_rec)


def test_broken_fused_and_kernel_fall_to_interp(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), engine="interp")

    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"), break_engine("kernel"):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            deg_u, deg_rec = run_and_capture(
                op2, u2, rec2, NT, DT, NaiveSchedule(), engine="fused"
            )
    fallbacks = [w for w in caught if issubclass(w.category, EngineFallbackWarning)]
    assert len(fallbacks) == 2  # fused -> kernel, kernel -> interp
    np.testing.assert_array_equal(deg_u, ref_u)
    np.testing.assert_array_equal(deg_rec, ref_rec)


def test_strict_engine_raises_structured_error(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"):
        with pytest.raises(EngineCompilationError) as excinfo:
            op.apply(time_M=NT, dt=DT, strict_engine=True)
    assert excinfo.value.engine == "fused"


def test_interp_has_no_fallback(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"), break_engine("kernel"):
        # the interpreter compiles nothing: unaffected by broken codegen
        run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), engine="interp")


def test_degraded_bind_is_not_cached(grid2d):
    """After the codegen recovers, the next apply must get fused back."""
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"):
        with pytest.warns(EngineFallbackWarning):
            plan = op.apply(time_M=NT, dt=DT, engine="fused")
    assert plan.sweeps[0].engine == "kernel"
    assert not op._sweep_cache
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineFallbackWarning)
        plan = op.apply(time_M=NT, dt=DT, engine="fused")
    assert plan.sweeps[0].engine == "fused"
    assert op._sweep_cache


def test_fallback_works_under_wavefront(grid2d):
    schedule = WavefrontSchedule(tile=(6, 6), height=2)
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(
        op, u, rec, NT, DT, schedule, sparse_mode="precomputed", engine="kernel"
    )
    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"):
        with pytest.warns(EngineFallbackWarning):
            deg_u, deg_rec = run_and_capture(
                op2, u2, rec2, NT, DT, schedule, sparse_mode="precomputed",
                engine="fused",
            )
    np.testing.assert_array_equal(deg_u, ref_u)
    np.testing.assert_array_equal(deg_rec, ref_rec)


def test_break_engine_rejects_unknown_rung():
    with pytest.raises(ValueError, match="fused"):
        with break_engine("jit"):
            pass


def test_unbound_symbol_error_is_not_swallowed(grid2d):
    """Equation validation failures are not engine failures: the ladder must
    let them propagate instead of retrying lower rungs."""
    from repro.dsl import Eq, Grid, Symbol, TimeFunction
    from repro.ir import Operator

    grid = Grid(shape=(8, 8), extent=(70.0, 70.0))
    v = TimeFunction("v", grid, time_order=1, space_order=2)
    op = Operator([Eq(v.forward, v + Symbol("mystery"))])
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineFallbackWarning)
        with pytest.raises(ValueError, match="mystery"):
            op.apply(time_M=2, dt=0.5)
