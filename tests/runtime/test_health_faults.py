"""Fault injection and health-guard attribution.

Every schedule runs with a programmed corruption; a cadence-1 guard must
attribute the blowup to the exact ``(t, tile)`` the fault landed in.
"""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.errors import InjectedFault, NumericalBlowup
from repro.runtime import Fault, FaultInjector, HealthGuard

from ..conftest import make_acoustic_operator

NT = 8
DT = 0.5

SCHEDULES = {
    "naive": NaiveSchedule(),
    "spatial": SpatialBlockSchedule(block=(5, 4)),
    "wavefront": WavefrontSchedule(tile=(6, 6), height=2),
}


def _schedule_param():
    return pytest.mark.parametrize(
        "schedule", list(SCHEDULES.values()), ids=list(SCHEDULES)
    )


def _run(op, schedule, **kw):
    mode = "precomputed" if isinstance(schedule, WavefrontSchedule) else "auto"
    return op.apply(time_M=NT, dt=DT, schedule=schedule, sparse_mode=mode, **kw)


@pytest.mark.faults
@_schedule_param()
def test_nan_fault_is_caught_and_attributed(grid2d, schedule):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    point = (7, 6)
    fault_t = 4
    faults = FaultInjector([Fault(t=fault_t, kind="nan", point=point)])
    guard = HealthGuard(check_every=1)
    with pytest.raises(NumericalBlowup) as excinfo:
        _run(op, schedule, health=guard, faults=faults)
    err = excinfo.value
    # cadence-1 scan runs right after the fault fires: exact attribution
    assert err.t == fault_t
    assert err.field == "u"
    assert err.point == point
    assert all(lo <= p < hi for p, (lo, hi) in zip(point, err.tile))
    assert err.count == 1
    assert len(faults.log) == 1
    assert faults.log[0][0] == fault_t


@pytest.mark.faults
@_schedule_param()
def test_raise_fault_aborts_at_programmed_instance(grid2d, schedule):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    faults = FaultInjector([Fault(t=5, kind="raise", message="pulled the plug")])
    with pytest.raises(InjectedFault, match="pulled the plug") as excinfo:
        _run(op, schedule, faults=faults)
    assert excinfo.value.t == 5


@pytest.mark.faults
def test_inf_fault_without_point_is_seed_deterministic(grid2d):
    results = []
    for _ in range(2):
        op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
        faults = FaultInjector([Fault(t=3, kind="inf")], seed=42)
        guard = HealthGuard(check_every=1)
        with pytest.raises(NumericalBlowup) as excinfo:
            _run(op, NaiveSchedule(), health=guard, faults=faults)
        results.append((excinfo.value.t, excinfo.value.point))
    assert results[0] == results[1]


@pytest.mark.faults
def test_injector_reset_replays_exactly(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    faults = FaultInjector([Fault(t=3, kind="nan")], seed=9)
    guard = HealthGuard(check_every=1)
    with pytest.raises(NumericalBlowup) as first:
        _run(op, NaiveSchedule(), health=guard, faults=faults)
    assert not faults.faults[0].armed
    faults.reset()
    assert faults.faults[0].armed and not faults.log
    u.data_with_halo[...] = 0.0
    with pytest.raises(NumericalBlowup) as second:
        _run(op, NaiveSchedule(), health=HealthGuard(check_every=1), faults=faults)
    assert first.value.point == second.value.point


def test_guard_cadence_counts_checks(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = HealthGuard(check_every=4)
    _run(op, NaiveSchedule(), health=guard)
    assert guard.stats["ticks"] == NT  # one sweep instance per step (naive)
    assert guard.stats["checks"] == NT // 4


def test_guard_max_abs_catches_finite_divergence(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    guard = HealthGuard(check_every=1, max_abs=1e-12)
    with pytest.raises(NumericalBlowup):
        _run(op, NaiveSchedule(), health=guard)


def test_guard_rejects_bad_cadence():
    with pytest.raises(ValueError, match="check_every"):
        HealthGuard(check_every=0)


@pytest.mark.faults
def test_unarmed_and_mismatched_faults_never_fire(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    faults = FaultInjector(
        [
            Fault(t=3, kind="nan", armed=False),
            Fault(t=NT + 5, kind="raise"),  # beyond the run
            Fault(t=2, kind="raise", sweep=7),  # no such sweep
        ]
    )
    _run(op, NaiveSchedule(), health=HealthGuard(check_every=1), faults=faults)
    assert not faults.log
    assert np.isfinite(u.interior(NT)).all()


def test_fault_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        Fault(t=0, kind="gamma-ray")
