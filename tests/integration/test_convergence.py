"""Numerical convergence of the generated solvers against exact solutions.

Validates the whole DSL -> lowering -> executor chain *quantitatively*: the
acoustic update integrated under wave-front temporal blocking must track the
analytic standing-wave solution, improve with resolution and space order
(down to the single-precision floor), and accumulate exactly the same error
as the naive schedule — temporal blocking reorders execution, never the
numerics.
"""

import numpy as np
import pytest

from repro.core import NaiveSchedule, Schedule, WavefrontSchedule
from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.ir import Operator


def standing_wave_error(n: int, so: int, schedule: Schedule, steps: int) -> float:
    """Max error vs ``u = cos(w t) sin(k x)`` on a 1-D grid.

    Initial conditions (two slices) come from the exact solution; the
    comparison window is the central 20% so zero-halo boundary effects cannot
    reach it within ``steps`` (information travels <= radius cells/step).
    """
    c = 1.5
    length = 1000.0
    grid = Grid(shape=(n,), extent=(length,))
    h = grid.spacing[0]
    k = 2 * np.pi * 3 / length
    omega = c * k
    dt = 0.2 * h / c
    assert steps * (so // 2) < 0.35 * n, "boundary contamination would reach the window"

    u = TimeFunction("u", grid, time_order=2, space_order=so)
    m = Function("m", grid, space_order=so)
    m.data = 1.0 / c**2
    op = Operator([Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))])

    xs = np.arange(-u.halo, n + u.halo) * h
    for tstep, t_phys in ((0, 0.0), (1, dt)):
        u.buffer(tstep)[...] = np.cos(omega * t_phys) * np.sin(k * xs)

    op.apply(time_M=steps, time_m=1, dt=dt, schedule=schedule)
    got = u.interior(steps).astype(np.float64)
    x = np.arange(n) * h
    ref = np.cos(omega * steps * dt) * np.sin(k * x)
    lo, hi = int(0.4 * n), int(0.6 * n)
    return float(np.abs(got[lo:hi] - ref[lo:hi]).max())


@pytest.mark.parametrize("schedule", [
    NaiveSchedule(),
    WavefrontSchedule(tile=(16,), block=(8,), height=4),
], ids=["naive", "wavefront"])
def test_second_order_convergence_rate(schedule):
    """so=2: halving h (and dt) shrinks the error ~4x (O(h^2) + O(dt^2))."""
    e_coarse = standing_wave_error(100, 2, schedule, steps=8)
    e_fine = standing_wave_error(200, 2, schedule, steps=16)
    assert e_fine < e_coarse / 2.5, (e_coarse, e_fine)


def test_higher_order_is_more_accurate():
    e2 = standing_wave_error(100, 2, NaiveSchedule(), steps=8)
    e4 = standing_wave_error(100, 4, NaiveSchedule(), steps=8)
    assert e4 < e2 / 5.0, (e2, e4)


def test_error_hits_single_precision_floor():
    """At so=8 the discretisation error sits below the float32 round-off
    floor; the computed error must be tiny in absolute terms."""
    e8 = standing_wave_error(100, 8, NaiveSchedule(), steps=8)
    assert e8 < 5e-5


def test_wavefront_error_equals_naive_error():
    """Temporal blocking changes the execution order, not the numerics."""
    e_naive = standing_wave_error(120, 4, NaiveSchedule(), steps=10)
    e_wf = standing_wave_error(
        120, 4, WavefrontSchedule(tile=(13,), block=(13,), height=5), steps=10
    )
    assert e_wf == e_naive
