"""End-to-end integration: all three physics under every schedule, and the
negative demonstration that motivates the whole paper."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.propagators import (
    AcousticPropagator,
    ElasticPropagator,
    SeismicModel,
    TTIPropagator,
    layered_velocity,
    point_source,
    receiver_line,
)

SHAPE = (20, 18, 16)


def build(kind, so=4, nt=14, src_offset=(3.3, -2.1, 1.7)):
    vp = layered_velocity(SHAPE, 1.5, 3.0, 3)
    kwargs = {}
    if kind == "tti":
        kwargs = dict(epsilon=0.12, delta=0.05, theta=0.35, phi=0.4)
    if kind == "elastic":
        kwargs = dict(rho=1.8, vs=vp / 1.8)
    model = SeismicModel(SHAPE, (10.0,) * 3, vp, nbl=4, space_order=so, **kwargs)
    dt = model.critical_dt(kind)
    centre = model.domain_center
    coords = [tuple(c + o for c, o in zip(centre, src_offset))]
    src = point_source("src", model.grid, nt + 2, coords, f0=0.02, dt=dt)
    rec = receiver_line("rec", model.grid, nt + 2, npoint=6, depth=25.0)
    cls = {"acoustic": AcousticPropagator, "tti": TTIPropagator, "elastic": ElasticPropagator}[kind]
    return cls(model, space_order=so, source=src, receivers=rec), dt, nt


def state_of(prop, nt):
    return np.concatenate([f.interior(nt).ravel() for f in prop.fields])


@pytest.mark.parametrize("kind", ["acoustic", "tti", "elastic"])
@pytest.mark.parametrize("so", [4, 8])
def test_all_physics_all_schedules(kind, so):
    prop, dt, nt = build(kind, so=so)
    rec_ref, _ = prop.forward(nt=nt, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid")
    ref = state_of(prop, nt)
    assert np.abs(ref).max() > 0, "simulation must produce a wavefield"

    for sched in (
        SpatialBlockSchedule(block=(6, 5)),
        WavefrontSchedule(tile=(7, 8), block=(7, 4), height=3),
        WavefrontSchedule(tile=(10, 10), block=(5, 5), height=nt),
    ):
        rec_got, _ = prop.forward(nt=nt, dt=dt, schedule=sched)
        got = state_of(prop, nt)
        np.testing.assert_array_equal(got, ref, err_msg=f"{kind}/so{so}/{sched}")
        np.testing.assert_array_equal(rec_got, rec_ref)


@pytest.mark.parametrize("kind", ["tti", "elastic"])
def test_space_order_12_multiphysics(kind):
    """The paper's hardest order: angle 9 (TTI) / 12 (elastic) per step."""
    prop, dt, nt = build(kind, so=12, nt=8)
    prop.forward(nt=nt, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid")
    ref = state_of(prop, nt)
    prop.forward(nt=nt, dt=dt, schedule=WavefrontSchedule(tile=(8, 8), block=(4, 4), height=4))
    np.testing.assert_array_equal(state_of(prop, nt), ref)


def test_unsafe_offgrid_injection_is_wrong():
    """The negative result motivating the scheme (Fig. 4b): raw off-the-grid
    injection inside space-time tiles violates flow dependencies and corrupts
    the wavefield."""
    from repro.core.scheduler import WavefrontSchedule
    from repro.execution.executors import run_wavefront
    from repro.execution.sparse import UnsafeOffGridInjection

    prop, dt, nt = build("acoustic", so=4)
    # reference
    prop.forward(nt=nt, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid")
    ref = prop.u.interior(nt).copy()

    # rebuild a plan but swap the aligned injection for the unsafe one
    op = prop.op
    sched = WavefrontSchedule(tile=(6, 6), block=(3, 3), height=4)
    plan = op._bind(dt, sched, "precomputed")
    inj = op.injections()[0]
    unsafe = UnsafeOffGridInjection(inj, dt)
    for j in plan.injections:
        plan.injections[j] = [unsafe]
    prop.zero_fields()
    run_wavefront(plan, 0, nt, sched)
    got = prop.u.interior(nt).copy()

    scale = np.abs(ref).max()
    assert np.abs(got - ref).max() > 1e-3 * scale, (
        "expected a dependence violation: the source support straddles tile "
        "boundaries, so un-decomposed injection must corrupt the result"
    )


def test_wavefront_faster_tile_counts():
    """Plan introspection: the wavefront executor really tiles time."""
    prop, dt, nt = build("acoustic")
    plan = prop.forward(nt=nt, dt=dt,
                        schedule=WavefrontSchedule(tile=(6, 6), block=(3, 3), height=5))[1]
    assert plan.angle == 2


def test_two_shots_reuse_operator():
    """Running twice (new wavelet) reuses the cached precomputation."""
    prop, dt, nt = build("acoustic")
    sched = WavefrontSchedule(tile=(6, 6), block=(3, 3), height=3)
    rec1, _ = prop.forward(nt=nt, dt=dt, schedule=sched)
    prop.source.data[:] *= 2.0
    # decomposition is cached per (injection, dt): rescale requires rebuild,
    # which the operator exposes by clearing the cache
    prop.op._decomp_cache.clear()
    rec2, _ = prop.forward(nt=nt, dt=dt, schedule=sched)
    np.testing.assert_allclose(rec2, 2.0 * rec1, rtol=1e-4, atol=1e-6)
