"""Static journal-schema self-check: emitted kinds vs declared vs replayed."""

import pytest

from repro.errors import JournalSchemaError
from repro.jobs import journal as journal_mod
from repro.jobs.journal import JOURNAL_KINDS, verify_journal_schema


def test_schema_is_consistent():
    result = verify_journal_schema()
    assert set(result["emitted"]) == set(JOURNAL_KINDS)
    replayed = {k for k, role in JOURNAL_KINDS.items() if role == "replayed"}
    assert set(result["consumed"]) == replayed
    # the batch header is consumed via replay.header, not for_kind()
    assert "batch" in result["consumed"]


def test_declared_roles_are_valid():
    assert set(JOURNAL_KINDS.values()) <= {"replayed", "audit"}
    # every kind is documented in the module docstring's record-kind list
    for kind in JOURNAL_KINDS:
        assert f"``{kind}``" in journal_mod.__doc__


def test_undeclared_emitted_kind_raises(monkeypatch):
    monkeypatch.delitem(JOURNAL_KINDS, "drain")
    with pytest.raises(JournalSchemaError) as err:
        verify_journal_schema()
    assert "drain" in err.value.missing
    assert err.value.unused == []


def test_declared_but_never_emitted_kind_raises(monkeypatch):
    monkeypatch.setitem(JOURNAL_KINDS, "phantom", "audit")
    with pytest.raises(JournalSchemaError) as err:
        verify_journal_schema()
    assert "phantom" in err.value.unused


def test_misdeclared_replay_role_raises(monkeypatch):
    # claiming an audit-only kind is replayed must fail the reverse check
    monkeypatch.setitem(JOURNAL_KINDS, "drain", "replayed")
    with pytest.raises(JournalSchemaError) as err:
        verify_journal_schema()
    assert "drain" in err.value.unused


def test_pool_construction_runs_cached_check(monkeypatch, tmp_path):
    from repro.jobs.pool import JobPool

    monkeypatch.setattr(journal_mod, "_schema_checked", False)
    JobPool(workers=0, workdir=tmp_path, journal=False)
    assert journal_mod._schema_checked
