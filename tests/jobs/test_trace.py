"""The observability acceptance gate: a chaos batch (fault injection plus a
SIGKILLed daemon) produces a merged Chrome trace with per-worker tracks and
a metrics snapshot whose totals assert against the BatchReport's ground
truth — and serial batches reconcile ≥95% of their wall clock into phases."""

from __future__ import annotations

import pytest

from repro.jobs import ChaosConfig, CircuitBreaker, JobPool, JobSpec, LANES
from repro.telemetry.merge import merge_batch_trace, validate_chrome_trace


def _series(snapshot, name):
    family = (snapshot.get("metrics") or {}).get(name)
    return list(family.get("series", [])) if family else []


def _value(snapshot, name, **labels):
    for entry in _series(snapshot, name):
        if all(entry["labels"].get(k) == str(v) for k, v in labels.items()):
            return entry.get("value")
    return 0.0


def _chaos_pool(tmp_path, workers=2):
    pool = JobPool(
        workers=workers,
        workdir=tmp_path,
        chaos=ChaosConfig(fault_rate=0.3, kill_workers=1),
        batch_seed=77,
        breaker=CircuitBreaker(threshold=3, cooldown=3600.0),
        trace=True,
    )
    for i in range(6):
        pool.submit(JobSpec(f"t{i}", nt=48, seed=200 + i, checkpoint_every=8,
                            max_attempts=4))
    return pool


@pytest.mark.faults
def test_chaos_batch_metrics_assert_against_report(tmp_path):
    pool = _chaos_pool(tmp_path)
    report = pool.run()
    assert report.ok
    assert report.kills == 1
    snap = report.metrics
    assert snap is not None and snap["version"] >= 1

    completed = sum(1 for r in report.results if r.status == "completed")
    assert _value(snap, "repro_jobs_completed_total") == completed
    terminal = sum(
        e.get("value", 0.0) for e in _series(snap, "repro_jobs_terminal_total")
    )
    assert terminal == len(report.results)
    admitted = sum(
        e.get("value", 0.0) for e in _series(snap, "repro_jobs_admitted_total")
    )
    assert admitted == len(report.results)

    # all queues drained: every per-lane depth gauge reads 0 at the end
    depth = {
        e["labels"]["lane"]: e["value"]
        for e in _series(snap, "repro_queue_depth")
    }
    assert set(depth) == set(LANES)
    assert all(v == 0.0 for v in depth.values())
    assert _value(snap, "repro_workers_busy") == 0.0

    # retry counter mirrors the 'retried' lifecycle events exactly
    retried_events = sum(1 for e in report.events if e["kind"] == "retried")
    assert _value(snap, "repro_jobs_retried_total") == retried_events

    # worker-churn accounting: initial prefork + the post-SIGKILL replacement
    assert _value(snap, "repro_workers_spawned_total") == report.workers_spawned
    assert report.workers_spawned >= pool.workers + report.kills

    # attempt-latency histogram saw every attempt of every job
    attempts = sum(len(r.attempts) for r in report.results)
    observed = sum(e.get("count", 0) for e in _series(snap, "repro_attempt_seconds"))
    assert observed == attempts

    # breaker series is consistent with the breaker's own transition log
    state = _series(snap, "repro_breaker_state")
    assert state and state[0]["labels"]["engine"] == "fused"
    assert state[0]["value"] in (0.0, 1.0, 2.0)
    transitions = sum(
        e.get("value", 0.0)
        for e in _series(snap, "repro_breaker_transitions_total")
    )
    assert transitions == len(pool.breaker.transitions)

    # supervisor accounting made it into the gauge vector
    buckets = {
        e["labels"]["bucket"] for e in _series(snap, "repro_supervisor_seconds")
    }
    assert "supervise" in buckets and "journal" in buckets
    assert report.supervisor_seconds


@pytest.mark.faults
def test_chaos_batch_merges_into_valid_trace_with_worker_tracks(tmp_path):
    pool = _chaos_pool(tmp_path)
    report = pool.run()
    assert report.ok
    trace = merge_batch_trace(report, pool.telemetry)
    assert validate_chrome_trace(trace) == []
    # the SIGKILLed attempt's torn payload must not poison the merge:
    # every surviving payload lands on a real worker track under pid 2
    worker_tids = {
        e["tid"]
        for e in trace["traceEvents"]
        if e.get("pid") == 2 and e.get("ph") != "M"
    }
    assert worker_tids and all(tid >= 1 for tid in worker_tids)
    # supervisor track carries one async lifetime bar pair per job
    opens = [e for e in trace["traceEvents"] if e.get("ph") == "b"]
    closes = [e for e in trace["traceEvents"] if e.get("ph") == "e"]
    assert {e["id"] for e in opens} == {f"t{i}" for i in range(6)}
    assert {e["id"] for e in closes} == {f"t{i}" for i in range(6)}
    # every completed attempt shipped a clock-corrected span tree home
    for result in report.results:
        final = result.attempts[-1]
        assert final.outcome == "completed"
        assert final.trace is not None
        assert "clock_offset_s" in final.trace["context"]


def test_serial_batch_wall_clock_reconciles(tmp_path):
    """Satellite (b): supervisor-side admission/journal/drain accounting
    closes the books — ≥95% of batch wall time lands in phase_totals."""
    pool = JobPool(workers=0, workdir=tmp_path, trace=True, batch_seed=5)
    for i in range(4):
        pool.submit(JobSpec(f"s{i}", nt=32, seed=i))
    report = pool.run()
    assert report.ok
    totals = pool.telemetry.phase_totals()
    coverage = sum(totals.values()) / report.wall_seconds
    assert coverage >= 0.95
    assert totals["jobs"] > 0.0  # supervisor overhead charged to the jobs phase
    # serial trace still validates, with attempts on the tid-0 track
    trace = merge_batch_trace(report, pool.telemetry)
    assert validate_chrome_trace(trace) == []
    assert any(
        e.get("pid") == 2 and e.get("tid") == 0
        for e in trace["traceEvents"]
        if e.get("ph") != "M"
    )


def test_metrics_false_disables_the_layer(tmp_path):
    pool = JobPool(workers=0, workdir=tmp_path, metrics=False)
    pool.submit(JobSpec("off0", nt=8, seed=1))
    report = pool.run()
    assert report.ok
    assert report.metrics is None
    assert report.supervisor_seconds == {}
    assert report.result_for("off0").attempts[-1].trace is None
