"""The chaos gate: under injected faults AND a SIGKILLed worker, every job
of a batch completes with receivers bit-identical to a fault-free serial
run.  Plus determinism of the chaos plan itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jobs import ChaosConfig, ChaosPlan, JobSpec, run_batch, run_job_inline

pytestmark = pytest.mark.faults


def test_chaos_plan_is_order_and_cache_independent():
    config = ChaosConfig(fault_rate=0.5, break_rate=0.3, kill_workers=1)
    forward = ChaosPlan(config, batch_seed=11)
    backward = ChaosPlan(config, batch_seed=11)
    a = [forward.entry(i, 64) for i in range(10)]
    b = [backward.entry(i, 64) for i in reversed(range(10))][::-1]
    assert a == b


def test_chaos_plan_rates_are_respected_at_the_extremes():
    none = ChaosPlan(ChaosConfig(fault_rate=0.0, break_rate=0.0, kill_workers=1), 3)
    assert all(none.entry(i, 32).fault is None for i in range(8))
    assert not any(none.entry(i, 32).break_fused for i in range(8))
    every = ChaosPlan(ChaosConfig(fault_rate=1.0, break_rate=1.0), 3)
    for i in range(8):
        entry = every.entry(i, 32)
        assert entry.fault is not None
        assert 1 <= entry.fault["t"] < 32
        assert entry.break_fused


def test_corruption_faults_request_a_health_guard():
    plan = ChaosPlan(ChaosConfig(fault_rate=1.0, kinds=("nan",)), 5)
    entry = plan.entry(0, 32)
    assert entry.fault["kind"] == "nan"
    assert entry.needs_guard  # guard catches corruption before any snapshot


def test_config_validates_rates_and_kinds():
    with pytest.raises(ValueError, match="fault_rate"):
        ChaosConfig(fault_rate=1.5)
    with pytest.raises(ValueError, match="break_rate"):
        ChaosConfig(break_rate=-0.1)
    with pytest.raises(ValueError, match="kill_workers"):
        ChaosConfig(kill_workers=-1)
    with pytest.raises(ValueError, match="kind"):
        ChaosConfig(kinds=("raise", "segfault"))
    assert not ChaosConfig().active
    assert ChaosConfig(kill_workers=1).active


def test_sigkilled_worker_resumes_from_checkpoint_bit_identical(tmp_path):
    # the supervisor SIGKILLs the worker right after its first checkpoint
    # lands; the retry must resume mid-run and still match the oracle exactly
    spec = JobSpec("victim", nt=96, seed=13, checkpoint_every=4, max_attempts=3)
    report = run_batch(
        [spec],
        workers=1,
        workdir=tmp_path,
        chaos=ChaosConfig(kill_workers=1),
        batch_seed=21,
    )
    assert report.ok
    assert report.kills == 1
    result = report.result_for("victim")
    assert len(result.attempts) == 2
    assert result.attempts[0].outcome == "crash"
    assert "WorkerCrashError" in result.attempts[0].error
    assert result.attempts[1].resumed_from is not None
    assert result.attempts[1].resumed_from > 0  # a genuine mid-run resume
    kinds = [e["kind"] for e in report.events if e["job"] == "victim"]
    assert kinds == ["queued", "started", "killed", "retried", "resumed",
                     "started", "completed"]
    np.testing.assert_array_equal(result.receivers, run_job_inline(spec))


def test_chaos_gate_no_job_lost_all_bit_identical(tmp_path):
    # the issue's acceptance gate: 16 jobs, ~20% fault injection, one
    # SIGKILLed worker — zero lost jobs, every receiver block bit-identical
    # to a fault-free serial run of the same spec
    specs = [
        JobSpec(f"shot-{i:02d}", nt=96, seed=100 + i, checkpoint_every=4,
                max_attempts=4)
        for i in range(16)
    ]
    report = run_batch(
        specs,
        workers=4,
        workdir=tmp_path,
        chaos=ChaosConfig(fault_rate=0.2, kill_workers=1),
        batch_seed=123,
    )
    assert report.ok, [r.to_dict() for r in report.results if not r.ok]
    assert report.kills == 1
    assert any(e["kind"] == "resumed" for e in report.events)
    for spec in specs:
        np.testing.assert_array_equal(
            report.result_for(spec.job_id).receivers, run_job_inline(spec)
        )
