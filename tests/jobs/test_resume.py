"""Crash-safe resume: a supervisor SIGKILLed mid-batch (or drained by a
signal) leaves a journal from which ``JobPool.resume`` reconstructs the
batch and finishes it bit-identically to an uninterrupted run — durable
results preloaded, not recomputed; leaked shared memory reclaimed; torn
artifacts refused and redone."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.jobs import JOURNAL_NAME, JobPool, JobSpec, load_journal, run_job_inline
from repro.jobs.shm import segment_exists

pytestmark = pytest.mark.faults

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spec(i, nt=32, **kwargs):
    kwargs.setdefault("checkpoint_every", 8)
    return JobSpec(f"shot-{i:02d}", nt=nt, seed=i, **kwargs)


def _assert_oracle(report, specs):
    for spec in specs:
        np.testing.assert_array_equal(
            report.result_for(spec.job_id).receivers, run_job_inline(spec)
        )


def test_every_transition_is_journaled(tmp_path):
    pool = JobPool(workers=0, workdir=tmp_path, batch_seed=3)
    specs = [_spec(i) for i in range(3)]
    for spec in specs:
        pool.submit(spec)
    report = pool.run()
    assert report.ok and not report.resumed
    replay = load_journal(tmp_path / JOURNAL_NAME)
    assert replay.corruption is None
    assert replay.header["batch_seed"] == 3
    assert len(replay.for_kind("admit")) == 3
    assert len(replay.for_kind("attempt")) == 3
    assert len(replay.for_kind("outcome")) == 3
    assert len(replay.for_kind("terminal")) == 3
    assert len(replay.for_kind("batch_end")) == 1
    # outcomes carry the durable-result digest resume will verify against
    for out in replay.for_kind("outcome"):
        assert out["outcome"] == "completed" and len(out["digest"]) == 64


def test_journal_stays_open_across_run_cycles(tmp_path):
    # finished jobs free admission capacity, so submitting into the same
    # pool after run() is supported — the journal must keep recording
    pool = JobPool(workers=0, capacity=2, workdir=tmp_path, batch_seed=3)
    pool.submit(_spec(0))
    pool.submit(_spec(1))
    assert pool.run().ok
    pool.submit(_spec(2))
    report = pool.run()
    assert report.ok and len(report.results) == 3
    replay = load_journal(tmp_path / JOURNAL_NAME)
    assert replay.corruption is None
    assert len(replay.for_kind("admit")) == 3
    assert len(replay.for_kind("batch_end")) == 2


def test_resume_of_a_finished_batch_preloads_everything(tmp_path):
    specs = [_spec(i) for i in range(3)]
    pool = JobPool(workers=0, workdir=tmp_path, batch_seed=3)
    for spec in specs:
        pool.submit(spec)
    first = pool.run()
    assert first.ok
    resumed = JobPool.resume(tmp_path, workers=0)
    report = resumed.run()
    assert report.ok and report.resumed
    # nothing re-ran: every job was preloaded from its verified result.npz
    kinds = [e["kind"] for e in report.events]
    assert kinds.count("preloaded") == 3
    assert "started" not in kinds
    _assert_oracle(report, specs)


def test_resume_redoes_a_job_whose_result_was_torn(tmp_path):
    specs = [_spec(i) for i in range(2)]
    pool = JobPool(workers=0, workdir=tmp_path, batch_seed=3)
    for spec in specs:
        pool.submit(spec)
    assert pool.run().ok
    # tear the durable artifact of job 0 the way a dying disk would
    result = tmp_path / specs[0].job_id / "result.npz"
    result.write_bytes(result.read_bytes()[:-16])
    resumed = JobPool.resume(tmp_path, workers=0)
    report = resumed.run()
    assert report.ok and report.resumed
    kinds = [e["kind"] for e in report.events]
    assert kinds.count("preloaded") == 1  # the intact job
    assert kinds.count("readmitted") == 1  # the torn one, recomputed
    _assert_oracle(report, specs)


def test_supervisor_sigkill_then_resume_is_bit_identical(tmp_path):
    """The tentpole invariant: SIGKILL the supervisor process mid-batch
    (chaos pulls the trigger after 2 terminal jobs), then resume from the
    journal — the batch completes with receivers bit-identical to the
    fault-free oracle, durable results are preloaded, and the /dev/shm
    segments the dead supervisor leaked are reclaimed."""
    specs = [_spec(i, nt=48, max_attempts=3) for i in range(4)]
    child = (
        "import sys\n"
        "from repro.jobs import ChaosConfig, JobPool, JobSpec\n"
        "pool = JobPool(workers=2, workdir=sys.argv[1], batch_seed=11,\n"
        "               chaos=ChaosConfig(kill_supervisor_after=2))\n"
        "for i in range(4):\n"
        "    pool.submit(JobSpec(f'shot-{i:02d}', nt=48, seed=i,\n"
        "                        checkpoint_every=8, max_attempts=3))\n"
        "pool.run()\n"
        "sys.exit(3)  # unreachable: chaos SIGKILLs the supervisor first\n"
    )
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.run(
        [sys.executable, "-c", child, str(tmp_path)],
        env=env, capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    # the journal survived the kill with at worst a torn tail
    replay = load_journal(tmp_path / JOURNAL_NAME)
    assert len(replay.for_kind("terminal")) >= 2
    shm_names = [n for r in replay.for_kind("shm") for n in r["names"]]
    assert shm_names
    report = JobPool.resume(tmp_path, workers=2).run()
    assert report.ok and report.resumed
    kinds = [e["kind"] for e in report.events]
    assert kinds.count("preloaded") >= 2  # the pre-kill completions
    assert kinds.count("preloaded") + kinds.count("readmitted") == 4
    _assert_oracle(report, specs)
    # nothing the dead supervisor published is still in /dev/shm
    assert not any(segment_exists(n) for n in shm_names)


def test_sigterm_drains_gracefully_and_resume_completes(tmp_path):
    """SIGTERM mid-batch: dispatch stops, un-run jobs become resumable
    ``interrupted`` terminals, and the drained report says so — then a
    resume finishes exactly the jobs the drain left behind."""
    specs = [_spec(i) for i in range(3)]

    def stream():
        yield specs[0]
        yield specs[1]
        # delivered in the main thread, so the drain handler runs before
        # the pool pulls again — deterministic, no timers
        os.kill(os.getpid(), signal.SIGTERM)
        yield specs[2]

    pool = JobPool(workers=0, capacity=1, workdir=tmp_path, batch_seed=5)
    pool.submit(stream())
    report = pool.run()
    assert report.drained and not report.ok
    assert report.completed == 2 and report.interrupted == 1
    assert any(e["kind"] == "drain" for e in report.events)
    # the handler was restored once run() returned
    assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL
    resumed = JobPool.resume(tmp_path, workers=0).run()
    assert resumed.ok and resumed.resumed
    assert resumed.completed == 3 and not resumed.drained
    _assert_oracle(resumed, specs)


def test_resume_survives_a_torn_journal_tail(tmp_path):
    specs = [_spec(i) for i in range(2)]
    pool = JobPool(workers=0, workdir=tmp_path, batch_seed=3)
    for spec in specs:
        pool.submit(spec)
    assert pool.run().ok
    journal = tmp_path / JOURNAL_NAME
    journal.write_bytes(journal.read_bytes()[:-9])  # writer died mid-append
    report = JobPool.resume(tmp_path, workers=0).run()
    assert report.ok and report.resumed
    _assert_oracle(report, specs)
    # the resumed supervisor truncated the tear and appended cleanly
    assert load_journal(journal).corruption is None


def test_resume_without_a_journal_is_a_structured_error(tmp_path):
    from repro.errors import JournalCorruptError

    with pytest.raises(JournalCorruptError, match="unreadable"):
        JobPool.resume(tmp_path)
