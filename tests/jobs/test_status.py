"""`python -m repro.jobs.status`: rendering from the metrics.json snapshot,
journal-replay fallback, and the machine-readable --json dump."""

from __future__ import annotations

import json

import pytest

from repro.jobs import METRICS_NAME, JobSpec, run_batch
from repro.jobs.status import (
    _quantile,
    journal_stats,
    load_status,
    main,
    render_status,
)


@pytest.fixture(scope="module")
def batch_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("batch")
    specs = [
        JobSpec("q0", nt=8, seed=1, tenant="acme", lane="interactive"),
        JobSpec("q1", nt=8, seed=2, tenant="acme"),
        JobSpec("q2", nt=8, seed=3, tenant="zeta", lane="bulk"),
    ]
    report = run_batch(specs, workers=0, workdir=path)
    assert report.ok
    return path


def test_load_status_reads_final_snapshot(batch_dir):
    snap = load_status(batch_dir)
    assert snap is not None
    assert snap["final"] is True
    assert snap["batch_id"] == batch_dir.name
    assert snap["status"]["completed"] == 3


def test_journal_stats_reconstructs_tenants_and_lanes(batch_dir):
    stats = journal_stats(batch_dir)
    assert stats is not None
    assert stats["ended"] is True
    assert stats["corrupt_tail"] is None
    assert stats["statuses"] == {"completed": 3}
    assert stats["lanes_admitted"] == {"interactive": 1, "batch": 1, "bulk": 1}
    assert stats["tenants"]["acme"]["admitted"] == 2
    assert stats["tenants"]["acme"]["completed"] == 2
    assert stats["tenants"]["zeta"]["completed"] == 1


def test_render_mentions_every_section(batch_dir):
    text = render_status(load_status(batch_dir), journal_stats(batch_dir))
    for fragment in (
        "[final]", "3/3 completed", "queue depth:", "tenants:",
        "attempt latency [completed]:", "supervisor seconds:",
        "journal:", "batch ended", "tenant acme: 2/2 completed",
    ):
        assert fragment in text, f"missing {fragment!r} in:\n{text}"


def test_cli_renders_and_exits_zero(batch_dir, capsys):
    assert main([str(batch_dir)]) == 0
    out = capsys.readouterr().out
    assert f"batch {batch_dir.name} [final]" in out


def test_cli_json_dump_parses(batch_dir, capsys):
    assert main([str(batch_dir), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["snapshot"]["final"] is True
    assert payload["journal"]["statuses"] == {"completed": 3}


def test_cli_journal_fallback_ignores_snapshot(batch_dir, capsys):
    assert main([str(batch_dir), "--journal"]) == 0
    capsys.readouterr()
    assert main([str(batch_dir), "--journal", "--json"]) == 0
    dump = json.loads(capsys.readouterr().out)
    assert dump["snapshot"] is None  # --journal forces replay-only
    assert dump["journal"]["statuses"] == {"completed": 3}


def test_cli_journal_only_batch(tmp_path, capsys):
    # a snapshotless dir (metrics.json deleted — e.g. a batch run with
    # metrics off, or a pre-observability batch) still renders via replay
    report = run_batch([JobSpec("j0", nt=8, seed=9)], workers=0,
                       workdir=tmp_path)
    assert report.ok
    (tmp_path / METRICS_NAME).unlink()
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "journal:" in out and "terminal statuses: completed=1" in out


def test_cli_errors_on_empty_and_missing_dirs(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 1
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 1
    assert "neither" in capsys.readouterr().err


def test_quantile_interpolates_snapshot_histograms():
    entry = {"count": 4, "buckets": {"0.1": 1, "1.0": 3, "+Inf": 4}}
    assert 0.1 <= _quantile(entry, 0.5) <= 1.0
    assert _quantile(entry, 0.99) == 1.0  # overflow saturates to last edge
    assert _quantile({"count": 0, "buckets": {}}, 0.5) is None
