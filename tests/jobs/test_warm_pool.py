"""Warm-daemon pool: cache warmth across jobs, crash replacement, shared
memory reclaimed — the fault domains of the process-per-attempt design must
survive the move to long-lived workers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jobs import ChaosConfig, JobPool, JobSpec, run_batch, run_job_inline
from repro.jobs.spec import PHASE_KEYS
from repro.jobs.shm import segment_exists

pytestmark = pytest.mark.faults


def _specs(n, nt=48, **kwargs):
    return [
        JobSpec(f"shot-{i:02d}", nt=nt, seed=i, checkpoint_every=8, **kwargs)
        for i in range(n)
    ]


def test_one_daemon_serves_many_jobs_and_warms_up(tmp_path):
    report = run_batch(_specs(3), workers=1, workdir=tmp_path)
    assert report.ok
    # one daemon, preforked once, served the whole batch
    assert report.workers_spawned == 1
    attempts = [r.attempts[-1] for r in report.results]
    assert len({a.worker for a in attempts}) == 1
    assert attempts[0].worker is not None
    # the daemon's first job is cold, every later one warm
    assert [a.warm for a in attempts] == [False, True, True]
    assert report.warm_attempts == 2 and report.cold_attempts == 1
    # warm jobs replay the family step plans instead of recomputing them
    assert all(a.caches.get("step_hits", 0) > 0 for a in attempts[1:])
    # the per-attempt phase breakdown is attributed to the known phases
    for a in attempts:
        assert set(a.phases) <= set(PHASE_KEYS)
        assert a.phases.get("compute", 0.0) > 0.0


def test_warm_results_match_the_serial_oracle(tmp_path):
    specs = _specs(4, example="acoustic")
    report = run_batch(specs, workers=2, workdir=tmp_path)
    assert report.ok
    for spec in specs:
        np.testing.assert_array_equal(
            report.result_for(spec.job_id).receivers, run_job_inline(spec)
        )


def test_sigkilled_daemon_is_replaced_and_batch_is_bit_identical(tmp_path):
    """The satellite invariant: SIGKILL a warm daemon mid-batch — the batch
    still completes with receivers bit-identical to the fault-free oracle,
    a replacement daemon is preforked, and no shared-memory segment leaks."""
    specs = _specs(4, nt=96, max_attempts=3)
    pool = JobPool(
        workers=2, workdir=tmp_path, chaos=ChaosConfig(kill_workers=1), batch_seed=21
    )
    for spec in specs:
        pool.submit(spec)
    pool._publish_shared()  # early, so the segment names can be observed
    names = pool._registry.segment_names()
    assert names and all(segment_exists(n) for n in names)
    report = pool.run()
    assert report.ok
    assert report.kills == 1
    # the dead daemon was retired and a fresh one preforked in its place
    assert report.workers_spawned > 2
    kinds = [e["kind"] for e in report.events]
    assert "worker_crashed" in kinds
    # the killed job resumed from its checkpoint...
    killed = [r for r in report.results if any(a.outcome == "crash" for a in r.attempts)]
    assert len(killed) == 1
    assert killed[0].attempts[-1].resumed_from is not None
    # ...and every job (killed one included) matches the oracle bit-for-bit
    for spec in specs:
        np.testing.assert_array_equal(
            report.result_for(spec.job_id).receivers, run_job_inline(spec)
        )
    # no leaked /dev/shm entries after run()
    assert not any(segment_exists(n) for n in names)


def test_shared_segments_reclaimed_on_clean_runs(tmp_path):
    pool = JobPool(workers=1, workdir=tmp_path)
    pool.submit(_specs(1)[0])
    pool._publish_shared()
    names = pool._registry.segment_names()
    report = pool.run()
    assert report.ok
    assert not any(segment_exists(n) for n in names)


def test_daemon_faults_cross_the_pipe_and_retry(tmp_path):
    # an injected fault inside a warm daemon must surface as a typed error
    # and retry on the same warm pool, not wedge the dispatch loop
    report = run_batch(
        _specs(2, nt=64, max_attempts=4),
        workers=1,
        workdir=tmp_path,
        chaos=ChaosConfig(fault_rate=1.0, kinds=("raise",)),
        batch_seed=5,
    )
    assert report.ok
    assert report.retries >= 1
    for result in report.results:
        assert result.attempts[0].outcome == "fault"
        assert "InjectedFault" in result.attempts[0].error


def test_serial_executor_also_warms_across_jobs(tmp_path):
    report = run_batch(_specs(3), workers=0, workdir=tmp_path)
    assert report.ok
    attempts = [r.attempts[-1] for r in report.results]
    # same in-process warm state: first job cold, later jobs warm, no daemon
    assert [a.warm for a in attempts] == [False, True, True]
    assert all(a.worker is None for a in attempts)
    assert report.workers_spawned == 0
