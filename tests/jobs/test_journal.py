"""Write-ahead journal: append/replay round-trips, SHA-256 trailer and
sequence verification, torn-tail recovery — the durable spine that resume
trusts must reject every flavour of partial or tampered write."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalCorruptError
from repro.jobs import BatchJournal, load_journal
from repro.jobs.journal import record_digest


def write_sample(path, n=3, fsync=False):
    with BatchJournal(path, fsync=fsync) as journal:
        journal.append("batch", version=1, batch_seed=7)
        for i in range(n):
            journal.append("admit", job=f"j{i}", index=i)
    return path


def test_append_load_round_trip(tmp_path):
    path = write_sample(tmp_path / "journal.jsonl")
    replay = load_journal(path)
    assert replay.corruption is None
    assert [r["kind"] for r in replay.records] == ["batch", "admit", "admit", "admit"]
    assert [r["seq"] for r in replay.records] == [0, 1, 2, 3]
    assert replay.header["batch_seed"] == 7
    assert replay.good_bytes == path.stat().st_size
    # trailers are stripped from the replay but present on disk
    assert all("sha256" not in r for r in replay.records)
    for line in path.read_bytes().splitlines():
        record = json.loads(line)
        assert record["sha256"] == record_digest(record)


def test_by_job_and_for_kind_views(tmp_path):
    path = tmp_path / "journal.jsonl"
    with BatchJournal(path, fsync=False) as journal:
        journal.append("batch", version=1)
        journal.append("attempt", job="a", attempt=0)
        journal.append("attempt", job="b", attempt=0)
        journal.append("attempt", job="a", attempt=1)
    replay = load_journal(path)
    assert len(replay.for_kind("attempt")) == 3
    by_job = replay.by_job("attempt")
    assert [r["attempt"] for r in by_job["a"]] == [0, 1]
    assert [r["attempt"] for r in by_job["b"]] == [0]


def test_tampered_record_stops_the_replay_at_the_good_prefix(tmp_path):
    path = write_sample(tmp_path / "journal.jsonl")
    lines = path.read_bytes().splitlines(keepends=True)
    # flip a payload byte in record 2 without touching its trailer
    lines[2] = lines[2].replace(b'"job":"j1"', b'"job":"jX"')
    path.write_bytes(b"".join(lines))
    replay = load_journal(path)
    assert [r["seq"] for r in replay.records] == [0, 1]
    assert replay.corruption is not None
    assert replay.corruption.line == 3
    assert "SHA-256" in replay.corruption.reason
    assert replay.good_bytes == len(lines[0]) + len(lines[1])


def test_torn_tail_is_dropped_and_truncation_point_reported(tmp_path):
    path = write_sample(tmp_path / "journal.jsonl")
    whole = path.read_bytes()
    good = whole[: whole.rindex(b"\n", 0, len(whole) - 1) + 1]
    path.write_bytes(whole[:-7])  # SIGKILL mid-append: no trailing newline
    replay = load_journal(path)
    assert len(replay.records) == 3
    assert replay.corruption.reason == "truncated append"
    assert replay.good_bytes == len(good)
    # resume reopens at the truncation point and appends cleanly
    with BatchJournal(
        path, fsync=False, seq_start=len(replay.records), truncate_to=replay.good_bytes
    ) as journal:
        journal.append("resume", jobs=3)
    healed = load_journal(path)
    assert healed.corruption is None
    assert [r["kind"] for r in healed.records] == ["batch", "admit", "admit", "resume"]
    assert [r["seq"] for r in healed.records] == [0, 1, 2, 3]


def test_sequence_break_is_corruption(tmp_path):
    path = tmp_path / "journal.jsonl"
    with BatchJournal(path, fsync=False) as journal:
        journal.append("batch", version=1)
    # a record with a valid trailer but the wrong seq (spliced journal)
    record = {"kind": "admit", "seq": 5, "job": "j0"}
    record["sha256"] = record_digest(record)
    with open(path, "ab") as fh:
        fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")).encode() + b"\n")
    replay = load_journal(path)
    assert len(replay.records) == 1
    assert "sequence break" in replay.corruption.reason
    with pytest.raises(JournalCorruptError) as excinfo:
        load_journal(path, strict=True)
    assert "sequence break" in excinfo.value.reason


def test_missing_file_and_missing_header_raise(tmp_path):
    with pytest.raises(JournalCorruptError, match="unreadable"):
        load_journal(tmp_path / "nope.jsonl")
    path = tmp_path / "journal.jsonl"
    with BatchJournal(path, fsync=False) as journal:
        journal.append("admit", job="j0")  # no batch header first
    with pytest.raises(JournalCorruptError, match="batch header"):
        load_journal(path).header


def test_closed_journal_refuses_appends(tmp_path):
    journal = BatchJournal(tmp_path / "journal.jsonl", fsync=False)
    journal.append("batch", version=1)
    journal.close()
    journal.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        journal.append("admit", job="j0")
