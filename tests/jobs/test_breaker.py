"""Circuit-breaker state machine (injectable clock) and its in-process
attachment to the engine degradation ladder."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import NaiveSchedule
from repro.errors import EngineFallbackWarning
from repro.jobs import CircuitBreaker
from repro.runtime import break_engine
from repro.telemetry import Telemetry

from ..conftest import make_acoustic_operator, run_and_capture


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_breaker(threshold=3, cooldown=30.0):
    clock = FakeClock()
    return CircuitBreaker(threshold=threshold, cooldown=cooldown, clock=clock), clock


def test_trips_open_after_threshold_consecutive_failures():
    br, _ = make_breaker(threshold=3)
    for _ in range(2):
        br.record_failure("fused")
        assert br.state == "closed" and br.allow("fused")
    br.record_failure("fused")
    assert br.state == "open"
    assert not br.allow("fused")


def test_success_resets_the_consecutive_count():
    br, _ = make_breaker(threshold=2)
    br.record_failure("fused")
    br.record_success("fused")
    br.record_failure("fused")
    assert br.state == "closed"  # never two in a row


def test_cooldown_half_opens_with_a_single_probe_slot():
    br, clock = make_breaker(threshold=1, cooldown=10.0)
    br.record_failure("fused")
    assert not br.allow("fused")
    clock.advance(9.9)
    assert not br.allow("fused")  # still cooling
    clock.advance(0.2)
    assert br.state == "half_open"
    assert br.allow("fused")      # the probe
    assert not br.allow("fused")  # nobody else while it is in flight


def test_probe_success_closes_probe_failure_reopens():
    br, clock = make_breaker(threshold=1, cooldown=10.0)
    br.record_failure("fused")
    clock.advance(10.0)
    assert br.allow("fused")
    br.record_failure("fused")  # probe came back bad
    assert br.state == "open"
    clock.advance(10.0)
    assert br.allow("fused")
    br.record_success("fused")  # probe came back good
    assert br.state == "closed"
    assert br.allow("fused")


def test_inconclusive_releases_the_probe_without_judging():
    br, clock = make_breaker(threshold=1, cooldown=10.0)
    br.record_failure("fused")
    clock.advance(10.0)
    assert br.allow("fused")
    br.record_inconclusive("fused")  # worker crashed before the engine ran
    assert br.state == "half_open"
    assert br.allow("fused")  # slot is free again


def test_untracked_engines_are_always_allowed():
    br, _ = make_breaker(threshold=1)
    br.record_failure("fused")
    assert not br.allow("fused")
    assert br.allow("kernel") and br.allow("interp")  # terminal rung unblockable
    br.record_failure("kernel")  # ignored
    br.record_success("kernel")  # ignored
    assert br.state == "open"


def test_transitions_are_logged_with_timestamps():
    br, clock = make_breaker(threshold=1, cooldown=5.0)
    br.record_failure("fused")
    clock.advance(5.0)
    br.allow("fused")
    br.record_success("fused")
    assert [s for _, s in br.transitions] == ["open", "half_open", "closed"]


def test_breaker_rejects_bad_parameters():
    with pytest.raises(ValueError, match="threshold"):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError, match="cooldown"):
        CircuitBreaker(cooldown=-1.0)


# -- attachment to the engine ladder --------------------------------------------------

NT = 8
DT = 0.5


def test_ladder_feeds_breaker_and_open_breaker_skips_fused(grid2d):
    br, _ = make_breaker(threshold=1, cooldown=1e9)
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with break_engine("fused"):
        with pytest.warns(EngineFallbackWarning):
            plan = op.apply(time_M=NT, dt=DT, engine="fused", breaker=br)
    assert plan.sweeps[0].engine == "kernel"
    assert br.state == "open"  # the ladder reported the compile failure

    # fused codegen is healthy again, but the open breaker skips the rung
    # outright: no compile attempt, no fallback warning, straight to kernel
    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid2d, nt=NT)
    tel = Telemetry()
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineFallbackWarning)
        plan2 = op2.apply(time_M=NT, dt=DT, engine="fused", breaker=br, telemetry=tel)
    assert plan2.sweeps[0].engine == "kernel"
    assert tel.counters["engine_breaker_skips"] == 1
    br.record_success("kernel")  # untracked: state unchanged
    assert br.state == "open"


def test_ladder_under_breaker_is_bit_identical(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), engine="kernel")

    br, _ = make_breaker(threshold=1, cooldown=1e9)
    br.record_failure("fused")  # pre-tripped
    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid2d, nt=NT)
    u2.data_with_halo[...] = 0.0
    rec2.data[...] = 0.0
    op2.apply(time_M=NT, dt=DT, schedule=NaiveSchedule(), engine="fused", breaker=br)
    np.testing.assert_array_equal(u2.interior(NT), ref_u)
    np.testing.assert_array_equal(rec2.data, ref_rec)


def test_closed_breaker_records_fused_success(grid2d):
    br, _ = make_breaker(threshold=1)
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    op.apply(time_M=NT, dt=DT, engine="fused", breaker=br)
    assert br.state == "closed"
    assert br._failures == 0
