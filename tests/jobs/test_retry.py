"""Deterministic exponential backoff with seeded jitter — replayable from
``(batch_seed, job_index)`` alone, independent of worker scheduling order."""

from __future__ import annotations

import pytest

from repro.jobs import RetryPolicy
from repro.runtime import split_seed


def test_schedule_is_deterministic_per_job():
    policy = RetryPolicy()
    a = policy.schedule(batch_seed=42, job_index=3, retries=5)
    b = policy.schedule(batch_seed=42, job_index=3, retries=5)
    assert a == b


def test_schedule_differs_across_jobs_and_batches():
    policy = RetryPolicy()
    base = policy.schedule(42, 3, 5)
    assert policy.schedule(42, 4, 5) != base  # different job, same batch
    assert policy.schedule(43, 3, 5) != base  # same job, different batch


def test_delays_grow_exponentially_within_jitter_bounds():
    policy = RetryPolicy(base=0.05, factor=2.0, max_delay=10.0, jitter=0.5)
    delays = policy.schedule(0, 0, 6)
    for n, delay in enumerate(delays, start=1):
        raw = 0.05 * 2.0 ** (n - 1)
        assert raw <= delay <= raw * 1.5  # jitter only ever adds, bounded


def test_max_delay_caps_the_raw_backoff():
    policy = RetryPolicy(base=1.0, factor=10.0, max_delay=2.0, jitter=0.0)
    rng = policy.rng_for(0, 0)
    assert policy.delay(1, rng) == 1.0
    assert policy.delay(2, rng) == 2.0  # would be 10.0 uncapped
    assert policy.delay(5, rng) == 2.0


def test_zero_jitter_is_exactly_exponential():
    policy = RetryPolicy(base=0.5, factor=3.0, max_delay=100.0, jitter=0.0)
    assert policy.schedule(1, 1, 3) == [0.5, 1.5, 4.5]


def test_budget_caps_the_delay_at_the_remaining_deadline():
    # a job 0.3s from its deadline must not sleep 2s of backoff first
    policy = RetryPolicy(base=1.0, factor=2.0, max_delay=8.0, jitter=0.0)
    rng = policy.rng_for(0, 0)
    assert policy.delay(2, rng, budget=0.3) == 0.3
    assert policy.delay(2, rng, budget=10.0) == 2.0  # ample budget: uncapped
    assert policy.delay(2, rng, budget=-1.0) == 0.0  # already over: no sleep


def test_budget_capping_does_not_desync_the_jitter_stream():
    # the draw is consumed before capping, so a deadline intervening at
    # retry n leaves retries n+1... identical to the uncapped schedule
    policy = RetryPolicy(base=0.05, factor=2.0, max_delay=2.0, jitter=0.5)
    plain = policy.rng_for(7, 3)
    capped = policy.rng_for(7, 3)
    reference = [policy.delay(n, plain) for n in (1, 2, 3)]
    assert policy.delay(1, capped, budget=0.0) == 0.0
    assert [policy.delay(n, capped) for n in (2, 3)] == reference[1:]


def test_first_retry_is_attempt_one():
    policy = RetryPolicy()
    with pytest.raises(ValueError, match="attempt"):
        policy.delay(0, policy.rng_for(0, 0))


@pytest.mark.parametrize(
    "kwargs",
    [dict(base=-0.1), dict(max_delay=-1.0), dict(factor=0.5), dict(jitter=-0.2)],
)
def test_policy_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_split_seed_substreams_are_order_independent():
    # the foundation of every per-job stream: pure function of the key
    seeds = [split_seed(7, i) for i in range(8)]
    assert seeds == [split_seed(7, i) for i in range(8)]
    assert len(set(seeds)) == len(seeds)
    # salted streams never collide with unsalted ones for the same job
    assert split_seed(7, 3) != split_seed(7, 3, 0x5E77)
