"""JobSpec validation/picklability and the pool's bounded admission queue."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import QueueSaturatedError
from repro.jobs import JobPool, JobSpec


def test_spec_defaults_are_valid():
    spec = JobSpec("j0")
    assert spec.example == "acoustic"
    assert spec.schedule == "wavefront"
    assert spec.engine == "fused"
    assert spec.max_attempts == 3


@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(example="viscoacoustic"), "example"),
        (dict(schedule="diamond"), "schedule"),
        (dict(engine="jit"), "engine"),
        (dict(nt=0), "nt"),
        (dict(max_attempts=0), "max_attempts"),
        (dict(checkpoint_every=0), "checkpoint_every"),
        (dict(deadline=0.0), "deadline"),
        (dict(deadline=-1.0), "deadline"),
    ],
)
def test_spec_rejects_invalid_fields(kwargs, match):
    with pytest.raises(ValueError, match=match):
        JobSpec("bad", **kwargs)


def test_spec_pickles_unchanged():
    # a spec must cross into worker processes losslessly
    spec = JobSpec(
        "j1", example="tti", nt=32, schedule="spatial", engine="kernel",
        seed=7, deadline=1.5, max_attempts=4, checkpoint_every=8,
    )
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_submit_rejects_duplicate_job_id(tmp_path):
    pool = JobPool(workers=0, workdir=tmp_path)
    pool.submit(JobSpec("twin"))
    with pytest.raises(ValueError, match="duplicate"):
        pool.submit(JobSpec("twin"))


def test_admission_queue_saturates_with_backpressure(tmp_path):
    pool = JobPool(workers=0, capacity=2, workdir=tmp_path)
    pool.submit(JobSpec("j0", nt=2))
    pool.submit(JobSpec("j1", nt=2))
    with pytest.raises(QueueSaturatedError) as excinfo:
        pool.submit(JobSpec("j2", nt=2))
    err = excinfo.value
    assert err.capacity == 2
    assert err.pending == 2
    clone = pickle.loads(pickle.dumps(err))  # backpressure errors travel too
    assert (clone.capacity, clone.pending) == (2, 2)


def test_finished_jobs_free_admission_capacity(tmp_path):
    pool = JobPool(workers=0, capacity=2, workdir=tmp_path)
    pool.submit(JobSpec("j0", nt=2, schedule="naive", engine="interp"))
    pool.submit(JobSpec("j1", nt=2, schedule="naive", engine="interp"))
    report = pool.run()
    assert report.ok
    pool.submit(JobSpec("j2", nt=2, schedule="naive", engine="interp"))  # no raise


def test_pool_rejects_bad_configuration(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        JobPool(workers=-1, workdir=tmp_path)
    with pytest.raises(ValueError, match="capacity"):
        JobPool(capacity=0, workdir=tmp_path)


def test_queued_event_emitted_on_submit(tmp_path):
    pool = JobPool(workers=0, workdir=tmp_path)
    pool.submit(JobSpec("j0", nt=2))
    assert [e["kind"] for e in pool.events] == ["queued"]
    assert pool.events[0]["job"] == "j0"
