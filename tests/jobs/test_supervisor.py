"""Supervisor robustness under daemon pathology: heartbeat liveness kills
livelocked daemons in one timeout, poison jobs are quarantined with
forensics instead of burning the replacement budget forever."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PoisonJobError
from repro.jobs import ChaosConfig, JobPool, JobSpec, run_job_inline

pytestmark = pytest.mark.faults


def _specs(n, nt=48, **kwargs):
    kwargs.setdefault("checkpoint_every", 8)
    return [JobSpec(f"shot-{i:02d}", nt=nt, seed=i, **kwargs) for i in range(n)]


def test_hung_daemon_is_detected_by_heartbeat_silence_and_replaced(tmp_path):
    """Chaos wedges job 0's daemon (heartbeats stop, 30s sleep — well below
    any job deadline, so only liveness can catch it).  The supervisor must
    SIGKILL it after one heartbeat timeout, prefork a replacement and retry
    the job to a bit-identical completion — a hang costs ~a second, never a
    stalled lane."""
    specs = _specs(2, max_attempts=3)
    pool = JobPool(
        workers=1,
        workdir=tmp_path,
        batch_seed=9,
        chaos=ChaosConfig(hang_workers=1, hang_seconds=30.0),
        heartbeat_interval=0.1,
        heartbeat_timeout=0.6,
    )
    for spec in specs:
        pool.submit(spec)
    report = pool.run()
    assert report.ok
    assert report.hung_workers == 1
    assert report.wall_seconds < 25.0  # detected by liveness, not the sleep
    kinds = [e["kind"] for e in report.events]
    assert "worker_hung" in kinds
    hung = report.result_for(specs[0].job_id)
    assert [a.outcome for a in hung.attempts] == ["hang", "completed"]
    # a hang is a liveness failure, not a crash: it must never count
    # toward poison quarantine
    assert report.quarantined == 0
    for spec in specs:
        np.testing.assert_array_equal(
            report.result_for(spec.job_id).receivers, run_job_inline(spec)
        )


def test_poison_job_is_quarantined_with_forensics(tmp_path):
    """Chaos makes job 0 hard-exit every daemon it touches, on every
    attempt.  The supervisor must stop after ``poison_threshold``
    consecutive crashes — well inside the job's own attempt budget — and
    quarantine with a PoisonJobError carrying the attempt history, while
    the sibling job completes untouched."""
    specs = _specs(2, max_attempts=6)
    pool = JobPool(
        workers=1,
        workdir=tmp_path,
        batch_seed=9,
        chaos=ChaosConfig(poison_jobs=1),
        poison_threshold=3,
    )
    for spec in specs:
        pool.submit(spec)
    report = pool.run()
    assert not report.ok
    assert report.quarantined == 1
    poisoned = report.result_for(specs[0].job_id)
    assert poisoned.status == "quarantined"
    assert len(poisoned.attempts) == 3  # threshold, not max_attempts
    assert all(a.outcome == "crash" for a in poisoned.attempts)
    err = poisoned.error
    assert isinstance(err, PoisonJobError)
    assert err.job_id == specs[0].job_id and err.crashes == 3
    assert len(err.attempts) == 3
    sibling = report.result_for(specs[1].job_id)
    assert sibling.status == "completed"
    np.testing.assert_array_equal(sibling.receivers, run_job_inline(specs[1]))


def test_pool_validates_liveness_and_quarantine_knobs(tmp_path):
    with pytest.raises(ValueError, match="heartbeat_timeout"):
        JobPool(workers=1, workdir=tmp_path, heartbeat_timeout=0.0)
    with pytest.raises(ValueError, match="poison_threshold"):
        JobPool(workers=1, workdir=tmp_path, poison_threshold=0)
