"""Silent-data-corruption handling across the job service: the chaos
``sdc_rate`` knob, ``sdc`` attempt classification, flat retry backoff,
shared-memory checksum verification, graceful ENOSPC degradation, and the
end-to-end gate — a batch under injected finite bit-flips completes 100%
bit-identical with journaled tile-granular recovery."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from multiprocessing import shared_memory

from repro.errors import SilentCorruptionError, StorageExhaustedError
from repro.jobs import (
    METRICS_NAME,
    ChaosConfig,
    ChaosPlan,
    JobPool,
    JobSpec,
    RetryPolicy,
    load_journal,
    run_batch,
    run_job_inline,
)
from repro.jobs.pool import _classify_failure
from repro.jobs.shm import AttachedArrays, SharedArrayRegistry, verify_handles
from repro.jobs.status import journal_stats

pytestmark = pytest.mark.faults


# -- chaos: the sdc_rate knob --------------------------------------------------------


@given(batch_seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_sdc_draw_is_deterministic_and_order_independent(batch_seed):
    config = ChaosConfig(sdc_rate=0.5)
    forward = ChaosPlan(config, batch_seed=batch_seed)
    backward = ChaosPlan(config, batch_seed=batch_seed)
    a = [forward.entry(i, 64) for i in range(10)]
    b = [backward.entry(i, 64) for i in reversed(range(10))][::-1]
    assert a == b


@given(batch_seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_sdc_draw_does_not_reshuffle_legacy_fault_decisions(batch_seed):
    # the sdc draw is appended *after* the legacy draws: adding sdc_rate to
    # an existing chaos config must not change which jobs get which faults
    legacy = ChaosPlan(ChaosConfig(fault_rate=0.4, break_rate=0.3), batch_seed)
    mixed = ChaosPlan(
        ChaosConfig(fault_rate=0.4, break_rate=0.3, sdc_rate=0.5), batch_seed
    )
    for i in range(10):
        old, new = legacy.entry(i, 32), mixed.entry(i, 32)
        assert old.break_fused == new.break_fused
        if old.fault is not None:  # legacy fault fired: sdc never overrides
            assert new.fault == old.fault


def test_sdc_entries_arm_the_abft_guard_not_the_health_guard():
    plan = ChaosPlan(ChaosConfig(sdc_rate=1.0), batch_seed=7)
    for i in range(8):
        entry = plan.entry(i, 32)
        assert entry.fault is not None
        assert entry.fault["kind"] == "bitflip"
        assert 1 <= entry.fault["t"] < 32
        assert entry.needs_abft
        assert not entry.needs_guard  # the derived ceiling would misclassify
    assert ChaosConfig(sdc_rate=0.5).active
    with pytest.raises(ValueError, match="sdc_rate"):
        ChaosConfig(sdc_rate=1.5)


# -- classification and retry discipline ---------------------------------------------


def test_silent_corruption_classifies_as_sdc_even_after_the_pipe():
    err = SilentCorruptionError(
        "checksum mismatch", field="model/vp", detector="checksum"
    )
    assert _classify_failure(err) == "sdc"
    clone = pickle.loads(pickle.dumps(err))
    assert _classify_failure(clone) == "sdc"
    assert clone.context["detector"] == "checksum"
    assert _classify_failure(ValueError("boom")) == "fault"


def test_sdc_retries_at_flat_base_delay_with_aligned_jitter_stream():
    policy = RetryPolicy(base=0.1, factor=4.0, max_delay=10.0, jitter=0.5)
    sdc_rng = np.random.default_rng(3)
    fault_rng = np.random.default_rng(3)
    sdc = [policy.delay(a, sdc_rng, outcome="sdc") for a in (1, 2, 3)]
    faults = [policy.delay(a, fault_rng) for a in (1, 2, 3)]
    # sdc: flat base (plus jitter), never escalating
    assert all(0.1 <= d <= 0.1 * 1.5 for d in sdc)
    # faults: exponential escalation
    assert faults[2] > faults[1] > faults[0]
    # the jitter draw is consumed either way: streams stay aligned
    assert policy.delay(4, sdc_rng) == policy.delay(4, fault_rng)


# -- shared-memory checksums ---------------------------------------------------------


def test_shm_checksum_catches_a_corrupted_segment():
    rng = np.random.default_rng(5)
    vp = rng.random((6, 5, 4)).astype(np.float64)
    registry = SharedArrayRegistry()
    try:
        handle = registry.publish("model/vp", vp)
        assert handle.checksum == handle.checksum  # published and stable
        with AttachedArrays({"model/vp": handle}) as attached:
            assert verify_handles({"model/vp": handle}, attached) == ()
            # corrupt one byte through a raw mapping, exactly as a stray
            # writer (or a genuine bit flip) would
            seg = shared_memory.SharedMemory(name=handle.name)
            try:
                seg.buf[17] ^= 0x40
                assert verify_handles({"model/vp": handle}, attached) == (
                    "model/vp",
                )
                assert not handle.verify(attached.arrays["model/vp"])
            finally:
                seg.buf[17] ^= 0x40  # restore before closing
                seg.close()
            assert verify_handles({"model/vp": handle}, attached) == ()
    finally:
        registry.close()


# -- pool-level ENOSPC degradation ---------------------------------------------------


def test_pool_degrades_and_drains_on_journal_enospc(tmp_path):
    pool = JobPool(workers=0, workdir=tmp_path)
    exc = StorageExhaustedError("disk full", path=str(tmp_path), op="journal_append")

    class FullJournal:
        def append(self, kind, **payload):
            raise StorageExhaustedError(
                "disk full", path=str(tmp_path), op="journal_append"
            )

        def close(self):
            pass

    pool._journal.close()
    pool._journal = FullJournal()
    pool._journal_append("drain", signal=None)
    assert pool.storage_degraded is not None
    assert pool._journal is None  # journaling off: no append loops
    assert pool._draining  # batch winds down cleanly
    assert pool._status_summary()["storage_degraded"] is True
    # further appends are silent no-ops, not crashes
    pool._journal_append("drain", signal=None)
    assert isinstance(pool.storage_degraded, type(exc))


# -- the end-to-end gate -------------------------------------------------------------


def _assert_sdc_batch_recovers(workdir, specs, report):
    assert report.ok, [r.to_dict() for r in report.results if not r.ok]
    for spec in specs:
        result = report.result_for(spec.job_id)
        assert result.status == "completed"
        np.testing.assert_array_equal(result.receivers, run_job_inline(spec))
    replay = load_journal(workdir / "journal.jsonl")
    sdc = replay.for_kind("sdc")
    assert len(sdc) >= 1  # detection + recovery is journaled, not silent
    for rec in sdc:
        assert rec["recovered"] is True
        assert rec["detector"] == "growth"
        assert rec["detections"] >= 1
        assert rec["tiles_reexecuted"] >= 1
        assert rec["micro_snapshot_bytes"] > 0
    stats = journal_stats(workdir)
    assert stats["sdc"]["records"] == len(sdc)
    assert stats["sdc"]["recovered"] == len(sdc)
    assert stats["sdc"]["tiles_reexecuted"] >= len(sdc)


def test_serial_sdc_batch_completes_bit_identical_with_journaled_recovery(
    tmp_path,
):
    specs = [
        JobSpec(f"sdc-{i}", nt=16, seed=40 + i, checkpoint_every=4,
                max_attempts=3)
        for i in range(3)
    ]
    report = run_batch(
        specs,
        workers=0,
        workdir=tmp_path,
        chaos=ChaosConfig(sdc_rate=1.0),
        batch_seed=9,
    )
    _assert_sdc_batch_recovers(tmp_path, specs, report)
    # recovery happened *in-run* (tile re-execution), not via job retries
    for spec in specs:
        assert len(report.result_for(spec.job_id).attempts) == 1
    snap = json.loads((tmp_path / METRICS_NAME).read_text())
    series = snap["metrics"]["repro_sdc_detections_total"]["series"]
    assert sum(s["value"] for s in series) >= 3
    assert any(s["labels"].get("detector") == "growth" for s in series)
    recovered = snap["metrics"]["repro_sdc_recoveries_total"]["series"]
    assert sum(s["value"] for s in recovered) >= 3


def test_warm_pool_sdc_batch_completes_bit_identical(tmp_path):
    specs = [
        JobSpec(f"warm-sdc-{i}", nt=16, seed=60 + i, checkpoint_every=4,
                max_attempts=3)
        for i in range(2)
    ]
    report = run_batch(
        specs,
        workers=1,
        workdir=tmp_path,
        chaos=ChaosConfig(sdc_rate=1.0),
        batch_seed=11,
    )
    _assert_sdc_batch_recovers(tmp_path, specs, report)
