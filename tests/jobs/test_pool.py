"""JobPool supervision: completion bit-identity, serial retry state machine,
retry exhaustion with full history, deadlines, and breaker rerouting."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import InjectedFault, JobTimeoutError, RetryExhaustedError
from repro.jobs import (
    ChaosConfig,
    CircuitBreaker,
    JobSpec,
    run_batch,
    run_job_inline,
)
from repro.telemetry import Telemetry


def kinds_of(report, job_id):
    return [e["kind"] for e in report.events if e["job"] == job_id]


def test_pool_results_are_bit_identical_to_inline_runs(tmp_path):
    specs = [
        JobSpec("a0", example="acoustic", nt=8, seed=1),
        JobSpec("a1", example="acoustic", nt=8, schedule="naive", seed=2),
    ]
    report = run_batch(specs, workers=2, workdir=tmp_path)
    assert report.ok
    assert report.workers == 2
    for spec in specs:
        result = report.result_for(spec.job_id)
        assert result.status == "completed"
        assert result.engine == "fused"
        np.testing.assert_array_equal(result.receivers, run_job_inline(spec))
        assert kinds_of(report, spec.job_id) == ["queued", "started", "completed"]


def test_serial_pool_matches_worker_pool(tmp_path):
    spec = JobSpec("s0", nt=8, seed=3)
    serial = run_batch([spec], workers=0, workdir=tmp_path / "serial")
    pooled = run_batch([spec], workers=1, workdir=tmp_path / "pooled")
    assert serial.ok and pooled.ok
    np.testing.assert_array_equal(
        serial.result_for("s0").receivers, pooled.result_for("s0").receivers
    )


@pytest.mark.faults
def test_serial_injected_fault_retries_to_bit_identical_completion(tmp_path):
    # every job faults on attempt 0 (raise kind: a clean structured abort),
    # retries resume from checkpoints and must still match the oracle
    specs = [JobSpec(f"f{i}", nt=16, seed=i, checkpoint_every=4) for i in range(3)]
    report = run_batch(
        specs,
        workers=0,
        workdir=tmp_path,
        chaos=ChaosConfig(fault_rate=1.0, kinds=("raise",)),
        batch_seed=5,
    )
    assert report.ok
    assert report.retries >= len(specs)  # each job failed at least once
    for spec in specs:
        result = report.result_for(spec.job_id)
        assert result.attempts[0].outcome == "fault"
        assert "InjectedFault" in result.attempts[0].error
        np.testing.assert_array_equal(result.receivers, run_job_inline(spec))


@pytest.mark.faults
def test_retry_exhaustion_carries_full_attempt_history(tmp_path):
    spec = JobSpec("doomed", nt=16, max_attempts=1, checkpoint_every=4)
    report = run_batch(
        [spec],
        workers=0,
        workdir=tmp_path,
        chaos=ChaosConfig(fault_rate=1.0, kinds=("raise",)),
        batch_seed=5,
    )
    result = report.result_for("doomed")
    assert result.status == "exhausted"
    assert isinstance(result.error, RetryExhaustedError)
    assert isinstance(result.error.__cause__, InjectedFault)
    assert len(result.error.attempts) == 1
    assert result.error.attempts[0]["outcome"] == "fault"
    # the terminal error crosses process/report boundaries with history intact
    clone = pickle.loads(pickle.dumps(result.error))
    assert clone.attempts == result.error.attempts


def test_deadline_kills_job_without_wedging_the_pool(tmp_path):
    deadline = 0.3
    specs = [
        # far more work than the deadline allows
        JobSpec("slow", nt=20000, schedule="naive", engine="interp",
                deadline=deadline, max_attempts=2),
        JobSpec("quick", nt=8, seed=4),
    ]
    report = run_batch(specs, workers=2, workdir=tmp_path)
    slow = report.result_for("slow")
    assert slow.status == "timeout"
    assert isinstance(slow.error, JobTimeoutError)
    assert slow.error.job_id == "slow"
    # the gate: reported within 2x the deadline, not after a full run
    assert slow.elapsed < 2 * deadline
    quick = report.result_for("quick")
    assert quick.status == "completed"
    np.testing.assert_array_equal(quick.receivers, run_job_inline(specs[1]))


def test_serial_deadline_is_enforced_post_hoc(tmp_path):
    spec = JobSpec("slow", nt=256, schedule="naive", deadline=1e-3, max_attempts=3)
    report = run_batch([spec], workers=0, workdir=tmp_path)
    result = report.result_for("slow")
    assert result.status == "timeout"
    assert isinstance(result.error, JobTimeoutError)
    assert len(result.attempts) <= 2  # no retry marathon past the deadline


@pytest.mark.faults
def test_open_breaker_reroutes_dispatch_across_the_batch(tmp_path):
    # every job's attempt 0 runs with a broken fused compiler; after
    # `threshold` worker-reported failures the parent's breaker opens and the
    # remaining jobs are dispatched straight at the kernel rung
    breaker = CircuitBreaker(threshold=2, cooldown=3600.0)
    specs = [JobSpec(f"b{i}", nt=8, seed=i) for i in range(6)]
    report = run_batch(
        specs,
        workers=1,  # serialize dispatch order so the trip point is exact
        workdir=tmp_path,
        breaker=breaker,
        chaos=ChaosConfig(break_rate=1.0),
        batch_seed=9,
    )
    assert report.ok
    assert breaker.state == "open"
    fallback_counts = [len(report.result_for(f"b{i}").fallbacks) for i in range(6)]
    assert fallback_counts == [1, 1, 0, 0, 0, 0]
    engines = [report.result_for(f"b{i}").engine for i in range(6)]
    assert engines == ["kernel"] * 6
    rerouted = [e["job"] for e in report.events if e["kind"] == "rerouted"]
    assert rerouted == [f"b{i}" for i in range(2, 6)]
    for spec in specs:  # engine reroute never changes numerics
        np.testing.assert_array_equal(
            report.result_for(spec.job_id).receivers, run_job_inline(spec)
        )


def test_run_batch_passes_breaker_through(tmp_path):
    breaker = CircuitBreaker(threshold=1, cooldown=3600.0)
    report = run_batch(
        [JobSpec("b0", nt=8)],
        workers=1,
        workdir=tmp_path,
        breaker=breaker,
        chaos=ChaosConfig(break_rate=1.0),
    )
    assert report.ok
    assert breaker.state == "open"


def test_lifecycle_events_land_in_telemetry(tmp_path):
    tel = Telemetry()
    report = run_batch(
        [JobSpec("t0", nt=8)], workers=0, workdir=tmp_path, telemetry=tel
    )
    assert report.ok
    assert tel.counters["jobs_queued"] == 1
    assert tel.counters["jobs_started"] == 1
    assert tel.counters["jobs_completed"] == 1
    names = [e.name for e in tel.events]
    assert "job.queued" in names and "job.completed" in names
