"""Streaming admission: lazy iterator pull under the capacity bound,
priority lanes, per-tenant quotas and the backpressure contract."""

from __future__ import annotations

import pytest

from repro.errors import QueueSaturatedError
from repro.jobs import JobPool, JobSpec, LANES


def _spec(i, **kwargs):
    return JobSpec(f"s-{i:02d}", nt=8, seed=i, checkpoint_every=4, **kwargs)


def test_lane_and_tenant_are_validated():
    with pytest.raises(ValueError, match="lane"):
        JobSpec("bad", lane="express")
    with pytest.raises(ValueError, match="tenant"):
        JobSpec("bad", tenant="")
    spec = _spec(0)
    assert spec.lane == "batch" and spec.tenant == "default"
    assert [JobSpec(f"l{i}", lane=lane).lane_priority for i, lane in enumerate(LANES)] \
        == [0, 1, 2]


def test_stream_is_pulled_lazily_within_capacity(tmp_path):
    pulled = []

    def generate():
        for i in range(7):
            pulled.append(i)
            yield _spec(i)

    pool = JobPool(workers=0, capacity=2, workdir=tmp_path)
    pool.submit(generate())
    assert pulled == []  # registration alone draws nothing
    report = pool.run()
    assert report.ok and len(report.results) == 7
    # the generator was never run ahead of admission capacity: at any point
    # at most `capacity` of its specs were admitted-but-unfinished, so the
    # pull count can never exceed completions + capacity
    assert max(pulled) == 6  # ...but the whole stream did eventually run


def test_streamed_jobs_run_in_lane_priority_order(tmp_path):
    lanes = ["bulk", "batch", "interactive", "bulk", "interactive"]
    pool = JobPool(workers=0, capacity=16, workdir=tmp_path)
    for i, lane in enumerate(lanes):
        pool.submit(_spec(i, lane=lane))
    report = pool.run()
    assert report.ok
    started = [e for e in report.events if e["kind"] == "started"]
    started_lanes = [
        pool._by_id[e["job"]].spec.lane for e in started
    ]
    assert started_lanes == ["interactive", "interactive", "batch", "bulk", "bulk"]


def test_direct_submit_over_capacity_raises(tmp_path):
    pool = JobPool(workers=0, capacity=2, workdir=tmp_path)
    pool.submit(_spec(0))
    pool.submit(_spec(1))
    with pytest.raises(QueueSaturatedError) as err:
        pool.submit(_spec(2))
    assert err.value.capacity == 2 and err.value.pending == 2


def test_broken_stream_is_isolated_to_unadmitted_jobs(tmp_path):
    """A spec stream that raises mid-pull must not take the batch down:
    every already-admitted job still completes, and the failure surfaces as
    a structured stream error on the report (ok=False — jobs were lost)."""

    def generate():
        yield _spec(0)
        yield _spec(1)
        raise ValueError("upstream survey database went away")

    pool = JobPool(workers=0, capacity=16, workdir=tmp_path)
    pool.submit(generate())
    report = pool.run()
    assert not report.ok  # un-admitted work was lost — never report clean
    assert len(report.results) == 2
    assert all(r.status == "completed" for r in report.results)
    assert len(report.stream_errors) == 1
    assert "upstream survey database" in report.stream_errors[0]
    assert "2" in report.stream_errors[0]  # admitted count in the forensics
    failed = [e for e in report.events if e["kind"] == "stream_failed"]
    assert len(failed) == 1


def test_broken_stream_does_not_poison_healthy_streams(tmp_path):
    def broken():
        raise ValueError("bad iterator")
        yield  # pragma: no cover

    pool = JobPool(workers=0, capacity=16, workdir=tmp_path)
    pool.submit(broken())
    pool.submit(_spec(i) for i in range(3))
    report = pool.run()
    assert len(report.results) == 3 and all(r.ok for r in report.results)
    assert len(report.stream_errors) == 1 and not report.ok


def test_direct_submit_over_tenant_quota_raises(tmp_path):
    pool = JobPool(workers=0, capacity=16, tenant_quota=1, workdir=tmp_path)
    pool.submit(_spec(0, tenant="alice"))
    with pytest.raises(QueueSaturatedError, match="alice"):
        pool.submit(_spec(1, tenant="alice"))
    pool.submit(_spec(2, tenant="bob"))  # another tenant still has room


def test_stream_stalls_at_tenant_quota_but_completes(tmp_path):
    # the stream holds the over-quota spec (bounded memory) and resumes
    # pulling once the tenant drains — nothing is dropped
    specs = [
        _spec(0, tenant="alice"),
        _spec(1, tenant="alice"),
        _spec(2, tenant="bob"),
    ]
    pool = JobPool(workers=0, capacity=16, tenant_quota=1, workdir=tmp_path)
    pool.submit(iter(specs))
    report = pool.run()
    assert report.ok and len(report.results) == 3
    assert {r.spec.job_id for r in report.results} == {"s-00", "s-01", "s-02"}


def test_mixed_direct_and_streamed_submission(tmp_path):
    pool = JobPool(workers=0, capacity=16, workdir=tmp_path)
    pool.submit(_spec(0, lane="bulk"))
    pool.submit(iter([_spec(1, lane="interactive"), _spec(2)]))
    report = pool.run()
    assert report.ok and len(report.results) == 3
    queued = [e for e in report.events if e["kind"] == "queued"]
    assert [e["streamed"] for e in queued] == [False, True, True]


def test_report_carries_lane_and_tenant(tmp_path):
    pool = JobPool(workers=0, workdir=tmp_path)
    pool.submit(_spec(0, lane="interactive", tenant="alice"))
    report = pool.run()
    payload = report.to_dict()
    assert payload["jobs"][0]["lane"] == "interactive"
    assert payload["jobs"][0]["tenant"] == "alice"
