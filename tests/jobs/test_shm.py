"""Shared-memory registry: zero-copy publish/attach, strict parent-side
ownership of unlinking, and the no-leaked-``/dev/shm``-entries invariant."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.jobs.shm import (
    AttachedArrays,
    SharedArrayHandle,
    SharedArrayRegistry,
    attach_array,
    segment_exists,
)


def test_publish_attach_roundtrip_is_bit_identical():
    rng = np.random.default_rng(7)
    original = rng.standard_normal((6, 5, 4)).astype(np.float32)
    registry = SharedArrayRegistry()
    try:
        handle = registry.publish("model/vp", original)
        assert handle.key == "model/vp"
        assert handle.shape == (6, 5, 4)
        assert handle.nbytes == original.nbytes
        view = attach_array(handle)
        np.testing.assert_array_equal(view, original)
    finally:
        registry.close()


def test_attached_views_are_read_only():
    registry = SharedArrayRegistry()
    try:
        handle = registry.publish("grid", np.arange(12.0).reshape(3, 4))
        view = attach_array(handle)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 99.0
    finally:
        registry.close()


def test_handles_are_picklable_job_payloads():
    # handles cross the dispatch pipe inside job payloads; the arrays must not
    handle = SharedArrayHandle(key="k", name="psm_test", shape=(2, 3), dtype="<f4")
    clone = pickle.loads(pickle.dumps(handle))
    assert clone == handle
    assert clone.nbytes == 24


def test_close_unlinks_every_segment_and_is_idempotent():
    registry = SharedArrayRegistry()
    registry.publish("a", np.zeros(4))
    registry.publish("b", np.ones((2, 2)))
    names = registry.segment_names()
    assert len(names) == 2
    assert all(segment_exists(n) for n in names)
    registry.close()
    assert not any(segment_exists(n) for n in names)
    registry.close()  # second close is a no-op, not an error


def test_attached_arrays_close_releases_views():
    registry = SharedArrayRegistry()
    try:
        handles = {"x": registry.publish("x", np.arange(8))}
        attached = AttachedArrays(handles)
        assert set(attached.arrays) == {"x"}
        attached.close()
        assert attached.arrays == {}
    finally:
        registry.close()


def test_duplicate_key_is_rejected():
    registry = SharedArrayRegistry()
    try:
        registry.publish("vp", np.zeros(2))
        with pytest.raises(ValueError, match="duplicate"):
            registry.publish("vp", np.zeros(2))
    finally:
        registry.close()
