"""Schedule-legality prover: certificates, counterexamples, lag-table stress."""

import pytest

from repro.core.scheduler import (
    NaiveSchedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    instance_lags,
)
from repro.dsl import Eq, Grid, TimeFunction
from repro.errors import ScheduleLegalityError
from repro.ir import Operator
from repro.verify import (
    Counterexample,
    LegalityCertificate,
    offgrid_counterexample,
    prove_schedule,
    resolve_sparse_mode,
)
from ..conftest import make_acoustic_operator


def _forward_in_time(expr, grid):
    from repro.dsl.symbols import Indexed

    return expr.subs({ix: ix.shift(grid.stepping_dim, 1) for ix in expr.atoms(Indexed)})


WF = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)


# -- positive verdicts -----------------------------------------------------------


@pytest.mark.parametrize(
    "schedule",
    [NaiveSchedule(), SpatialBlockSchedule(block=(6, 5)), WF],
    ids=["naive", "spatial", "wavefront"],
)
def test_acoustic_certified(grid3d, schedule):
    op, *_ = make_acoustic_operator(grid3d)
    cert = prove_schedule(op, schedule)
    assert isinstance(cert, LegalityCertificate)
    assert cert.check() and not cert.violations()
    assert cert.dependences, "a real operator must have dependence edges"
    assert cert.max_distance["t"] >= 1


def test_wavefront_certificate_geometry(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    cert = prove_schedule(op, WF)
    radii = tuple(op.sweep_radii)
    assert cert.sweep_radii == radii
    assert cert.wavefront_angle == sum(radii)
    assert cert.lags == tuple(instance_lags(radii, WF.height))
    assert cert.tile_skew == cert.lags[-1]
    assert cert.skewed_dims == ("x", "y")
    # some edges are genuinely checked in-tile, some cross the tile barrier
    assert any(not d.cross_tile for d in cert.dependences)
    assert any(d.cross_tile for d in cert.dependences)


def test_certificate_roundtrip(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    cert = prove_schedule(op, WF)
    d = cert.to_dict()
    assert d["legal"] is True
    back = LegalityCertificate.from_dict(d)
    assert back.check()
    assert back.to_dict() == d
    assert back.summary() == cert.summary()


def test_tampered_certificate_fails_check(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    d = prove_schedule(op, WF).to_dict()
    checked = [e for e in d["dependences"] if not e["cross_tile"]]
    assert checked
    checked[0]["required"] = checked[0]["available"] + 1
    tampered = LegalityCertificate.from_dict(d)
    assert not tampered.check()
    assert tampered.violations()


def test_certificate_cached_on_operator(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    c1 = op.certificate_for(WF)
    c2 = op.certificate_for(WF)
    assert c1 is c2
    # a different schedule key proves afresh
    c3 = op.certificate_for(WavefrontSchedule(tile=(8, 8), block=(4, 4), height=3))
    assert c3 is not c1 and c3.check()


def test_resolve_sparse_mode():
    assert resolve_sparse_mode("auto", NaiveSchedule()) == "offgrid"
    assert resolve_sparse_mode("auto", WF) == "precomputed"
    assert resolve_sparse_mode("precomputed", NaiveSchedule()) == "precomputed"
    with pytest.raises(ValueError):
        resolve_sparse_mode("bogus", WF)


# -- negative verdicts -----------------------------------------------------------


def test_offgrid_wavefront_rejected(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    with pytest.raises(ScheduleLegalityError, match="precompute") as ei:
        prove_schedule(op, WF, sparse_mode="offgrid")
    exc = ei.value
    assert isinstance(exc, ValueError)  # legacy except ValueError still works
    ce = exc.counterexample
    assert isinstance(ce, Counterexample)
    assert ce.field == "u" and ce.kind in ("output", "flow")
    assert ce.first.t == exc.t and ce.first.tile == exc.tile
    # both instances name a concrete (t, tile, point)
    assert len(ce.first.point) == grid3d.ndim
    assert len(ce.first.tile) == grid3d.ndim
    d = ce.to_dict()
    assert Counterexample.from_dict(d) == ce


def test_offgrid_counterexample_manifest(grid3d):
    # the conftest source placement (2 random sources) straddles a tile window
    # on an 8x8 tiling of a 12x11 plane: the counterexample must be concrete
    op, *_ = make_acoustic_operator(grid3d)
    ce = offgrid_counterexample(op, WF, op.injections()[0])
    assert ce.manifest
    assert ce.first.role == "injection" and ce.second.role == "stencil"
    # the conflicting point lies outside the injecting instance's tile window
    # along at least one skewed dimension
    outside = [
        d
        for d in range(2)
        if not ce.first.tile[d][0] <= ce.first.point[d] < ce.first.tile[d][1]
    ]
    assert outside


def test_offgrid_counterexample_dodging_placement(grid3d):
    # a single source well inside one 8x8 window: no straddle with this exact
    # placement, but the schedule class is still rejected (manifest=False)
    coords = [[20.0, 20.0, 45.0]]  # grid spacing 10: support corners 2..3
    op, *_ = make_acoustic_operator(grid3d, src_coords=coords, rec_coords=False)
    ce = offgrid_counterexample(op, WF, op.injections()[0])
    assert not ce.manifest
    with pytest.raises(ScheduleLegalityError, match="precompute"):
        prove_schedule(op, WF, sparse_mode="offgrid")


def test_future_read_rejected_under_wavefront():
    grid = Grid(shape=(16, 16))
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    da2 = _forward_in_time(_forward_in_time(a.dx, grid), grid)
    op = Operator([Eq(a.forward, a.dx), Eq(b.forward, da2)], name="future-test")
    with pytest.raises(ScheduleLegalityError, match="future"):
        prove_schedule(op, WavefrontSchedule(tile=(8,), block=(4,), height=2))


def test_sequential_schedules_always_certify_future_free_systems():
    # the prover treats sequential execution as the reference order: naive and
    # spatially blocked schedules certify anything the executors accept
    grid = Grid(shape=(16, 16))
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    da = _forward_in_time(a.dx, grid)
    op = Operator([Eq(a.forward, a.dx), Eq(b.forward, da)], name="two-sweep")
    assert prove_schedule(op, NaiveSchedule()).check()
    assert prove_schedule(op, SpatialBlockSchedule(block=(8, 8))).check()


# -- lag-table stress (paper Figs. 7 & 8) ---------------------------------------


def _two_sweep_op(so_a=4, so_b=8):
    """Coupled two-sweep system with per-sweep radii (so_b//2, so_a//2)."""
    grid = Grid(shape=(24, 24))
    a = TimeFunction("a", grid, time_order=1, space_order=so_a)
    b = TimeFunction("b", grid, time_order=1, space_order=so_b)
    da = _forward_in_time(a.dx, grid)  # radius so_a//2 read of a[t+1]
    op = Operator([Eq(a.forward, b.dx2), Eq(b.forward, da)], name="coupled")
    return op, grid


@pytest.mark.parametrize("height", [1, 2, 3, 4])
def test_multi_sweep_lag_table(height):
    # Fig. 8: the per-instance cumulative lag table of a coupled system —
    # radii (4, 2) interleave as +2, +4, +2, +4, ... across the tile
    op, grid = _two_sweep_op()
    radii = tuple(op.sweep_radii)
    assert radii == (4, 2)
    sched = WavefrontSchedule(tile=(12, 12), block=(6, 6), height=height)
    cert = prove_schedule(op, sched)
    assert cert.check()
    lags = cert.lags
    assert len(lags) == 2 * height
    assert lags[0] == 0
    diffs = [lags[i + 1] - lags[i] for i in range(len(lags) - 1)]
    # every instance after the first adds its *own* sweep's read radius
    assert diffs == [radii[(i + 1) % 2] for i in range(len(diffs))]
    assert cert.tile_skew == height * sum(radii) - radii[0]


@pytest.mark.parametrize("so", [2, 4, 8, 16])
def test_single_sweep_skew_tracks_radius(grid3d, so):
    # Fig. 7: for single-sweep kernels the per-step skew is the stencil radius
    op, *_ = make_acoustic_operator(grid3d, so=so, src_coords=False, rec_coords=False)
    cert = prove_schedule(op, WavefrontSchedule(tile=(8, 8), block=(4, 4), height=3))
    assert cert.check()
    assert cert.wavefront_angle == so // 2
    assert cert.lags == (0, so // 2, so)
    # in-tile flow edges are covered with zero slack at the stencil radius
    tight = [
        d
        for d in cert.dependences
        if not d.cross_tile and d.kind == "flow" and d.required == so // 2
    ]
    assert tight and all(d.available >= d.required for d in tight)


def test_zero_radius_sweep_contributes_no_lag():
    grid = Grid(shape=(16, 16))
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    v = TimeFunction("v", grid, time_order=1, space_order=4)
    # sweep 0: real stencil on v; sweep 1: pointwise damping of u reading
    # v[t+1] at radius 0 (kept a separate sweep by the duplicate-write rule)
    eqs = [
        Eq(u.forward, v.dx2),
        Eq(u.forward, _forward_in_time(0.5 * u.indexify(), grid)),
    ]
    op = Operator(eqs, name="damped")
    assert tuple(op.sweep_radii) == (2, 0)
    cert = prove_schedule(op, WavefrontSchedule(tile=(8,), block=(4,), height=2))
    assert cert.check()
    # the zero-radius sweep adds no skew when its instance enters
    assert cert.lags == (0, 0, 2, 2)
    assert cert.wavefront_angle == 2


# -- all three paper propagators --------------------------------------------------


@pytest.mark.parametrize("kind", ["acoustic", "tti", "elastic"])
@pytest.mark.parametrize(
    "schedule",
    [NaiveSchedule(), SpatialBlockSchedule(block=(6, 6)), WF],
    ids=["naive", "spatial", "wavefront"],
)
def test_paper_propagators_certified(kind, schedule):
    # acceptance: the prover certifies every shipped schedule on the three
    # paper propagators (precomputed masks under wavefront), and the dynamic
    # oracle confirms each certificate race-free on a small grid
    from repro.lint import build_example
    from repro.verify import run_oracle

    prop, dt = build_example(kind)
    cert = prove_schedule(prop.op, schedule)
    assert cert.check(), cert.summary()
    report = run_oracle(prop.op, schedule, time_M=4)
    assert report.ok, report.describe()


@pytest.mark.parametrize("kind", ["tti", "elastic"])
def test_paper_propagators_reject_offgrid_wavefront(kind):
    from repro.lint import build_example

    prop, dt = build_example(kind)
    with pytest.raises(ScheduleLegalityError, match="precompute") as ei:
        prove_schedule(prop.op, WF, sparse_mode="offgrid")
    assert ei.value.counterexample is not None
