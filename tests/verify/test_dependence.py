"""Statement-level dependence analysis: access sets and distance vectors."""

import pytest

from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.ir.dependencies import build_sweeps
from repro.verify import (
    classify_indexed,
    compute_dependences,
    fused_statements,
    statements_for,
)
from ..conftest import make_acoustic_operator


@pytest.fixture
def grid():
    return Grid(shape=(12, 11, 10))


def acoustic_eq(grid, so=4):
    u = TimeFunction("u", grid, time_order=2, space_order=so)
    m = Function("m", grid, space_order=so)
    return Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward)), u, m


def _forward_in_time(expr, grid):
    from repro.dsl.symbols import Indexed

    return expr.subs({ix: ix.shift(grid.stepping_dim, 1) for ix in expr.atoms(Indexed)})


# -- access classification ------------------------------------------------------


def test_classify_write(grid):
    eq, u, m = acoustic_eq(grid)
    acc = classify_indexed(eq.lhs)
    assert acc.function == "u"
    assert acc.is_time and acc.time_offset == 1
    assert acc.radius == 0 and acc.affine


def test_classify_reads(grid):
    from repro.dsl.symbols import Indexed

    eq, u, m = acoustic_eq(grid, so=4)
    reads = [classify_indexed(ix) for ix in eq.rhs.atoms(Indexed)]
    u_reads = [a for a in reads if a.function == "u"]
    assert {a.time_offset for a in u_reads} <= {-1, 0, 1}
    assert max(a.radius for a in u_reads) == 2
    # per-dimension offsets are recoverable
    assert {a.offset_along("x") for a in u_reads} >= {-2, -1, 0, 1, 2}
    m_reads = [a for a in reads if a.function == "m"]
    assert m_reads and all(not a.is_time and a.radius == 0 for a in m_reads)


# -- statement lists -------------------------------------------------------------


def test_statements_for_operator(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d)
    stmts = statements_for(
        op.sweeps,
        injections=op.injections(),
        interpolations=op.interpolations(),
        aligned=True,
    )
    roles = [s.role for s in stmts]
    assert roles.count("stencil") == 1
    assert roles.count("injection") == 1
    assert roles.count("interpolation") == 1
    # sparse statements attach to the sweep writing/reading u's t+1 slot and
    # are affine in the precomputed (grid-aligned) form
    sp = [s for s in stmts if s.role != "stencil"]
    assert all(s.sweep == 0 for s in sp)
    assert all(a.affine for s in sp for a in s.writes + s.reads)
    # program order within the sweep is preserved
    assert [s.position for s in stmts] == sorted(s.position for s in stmts)


def test_statements_for_offgrid_nonaffine(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d)
    stmts = statements_for(
        op.sweeps, injections=op.injections(), aligned=False
    )
    inj = [s for s in stmts if s.role == "injection"]
    assert inj and all(not a.affine for s in inj for a in s.writes)


def test_fused_statements_scratch(grid):
    # a sweep with a repeated subexpression: CSE introduces scratch statements
    u = TimeFunction("u", grid, time_order=2, space_order=4)
    v = TimeFunction("v", grid, time_order=2, space_order=4)
    eqs = [Eq(u.forward, u.dx2 + u.dy2), Eq(v.forward, u.dx2 - u.dy2)]
    sweep = build_sweeps(eqs)[0]
    stmts = fused_statements(sweep)
    assert [s.role for s in stmts if s.role == "stencil"] == ["stencil"] * 2
    cse = [s for s in stmts if s.role == "cse"]
    assert cse, "shared u.dx2/u.dy2 must become scratch statements"
    assert all(w.kind == "scratch" for s in cse for w in s.writes)
    # grid accesses are preserved: the union of grid reads equals the plain view
    plain = statements_for([sweep])
    grid_reads = lambda ss: {  # noqa: E731
        (a.function, a.time_offset, a.offsets)
        for s in ss
        for a in s.reads
        if a.kind == "grid"
    }
    assert grid_reads(stmts) == grid_reads(plain)


# -- dependence enumeration ------------------------------------------------------


def _deps_for(eqs, buffers):
    stmts = statements_for(build_sweeps(eqs))
    return compute_dependences(stmts, buffers)


def test_flow_and_anti_acoustic(grid):
    eq, u, m = acoustic_eq(grid, so=4)
    deps = _deps_for([eq], {"u": 3})
    flows = [d for d in deps if d.kind == "flow" and d.time_distance >= 0]
    # write u[t+1], reads u[t] and u[t-1]: time distances 1 and 2
    assert {d.time_distance for d in flows} == {1, 2}
    d1 = [d for d in flows if d.time_distance == 1]
    assert max(d.max_abs_distance for d in d1) == 2
    assert max(abs(d.distance_along("x")) for d in d1) == 2
    # slot reuse with 3 buffers: anti distances tr - tw + b for tr in {0, -1}
    antis = [d for d in deps if d.kind == "anti"]
    assert {d.time_distance for d in antis} == {1, 2}
    # the radius-2 slot-reuse hazard (anti at distance 2) carries the stencil's
    # spatial reach
    assert max(d.max_abs_distance for d in antis) == 2


def test_output_dependence_duplicate_write(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=4)
    # two sweeps both writing u[t+1]: same-slot output dependence in program
    # order (build_sweeps splits the duplicate write into a second sweep)
    eqs = [Eq(u.forward, u.dx), Eq(u.forward, u.dy)]
    stmts = statements_for(build_sweeps(eqs))
    deps = compute_dependences(stmts, {"u": 2})
    outs = [d for d in deps if d.kind == "output" and d.time_distance == 0]
    assert outs and outs[0].source.sweep == 0 and outs[0].sink.sweep == 1


def test_zero_radius_pointwise(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    deps = _deps_for([Eq(u.forward, u * 0.5)], {"u": 2})
    flows = [d for d in deps if d.kind == "flow" and d.time_distance >= 0]
    assert flows and all(d.max_abs_distance == 0 for d in flows)


def test_future_read_negative_distance(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    da2 = _forward_in_time(_forward_in_time(a.dx, grid), grid)  # reads a[t+2]
    # a[t+2] is only produced one step in the future: a genuine future read,
    # recorded as a flow dependence with negative time distance
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, da2)]
    deps = _deps_for(eqs, {"a": 2, "b": 2})
    assert any(
        d.kind == "flow" and d.function == "a" and d.time_distance < 0
        for d in deps
    )


def test_cross_sweep_flow(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    da = _forward_in_time(a.dx, grid)
    eqs = [Eq(a.forward, a.dx), Eq(b.forward, da)]
    stmts = statements_for(build_sweeps(eqs))
    deps = compute_dependences(stmts, {"a": 2, "b": 2})
    same_t = [
        d
        for d in deps
        if d.kind == "flow"
        and d.function == "a"
        and d.time_distance == 0
        and d.source.sweep != d.sink.sweep
    ]
    # sweep 1 reads a[t+1] which sweep 0 wrote this very timestep; one edge
    # per read offset, the widest at the derivative's radius
    assert same_t and all(d.source.sweep == 0 and d.sink.sweep == 1 for d in same_t)
    assert max(abs(d.distance_along("x")) for d in same_t) == 2


def test_scratch_excluded_from_dependences(grid):
    u = TimeFunction("u", grid, time_order=2, space_order=4)
    v = TimeFunction("v", grid, time_order=2, space_order=4)
    eqs = [Eq(u.forward, u.dx2 + u.dy2), Eq(v.forward, u.dx2 - u.dy2)]
    sweep = build_sweeps(eqs)[0]
    deps = compute_dependences(fused_statements(sweep), {"u": 3, "v": 3})
    assert all(not d.function.startswith("cse") for d in deps)


def test_to_dict_shapes(grid):
    eq, u, m = acoustic_eq(grid)
    deps = _deps_for([eq], {"u": 3})
    d = deps[0].to_dict()
    assert set(d) >= {"kind", "source", "sink", "function", "time_distance", "distance"}
    assert isinstance(d["distance"], dict)
