"""Kernel-IR linter: equation checks, scratch-slot analysis, CLI front-end."""

import json

import numpy as np
import pytest

from repro.dsl import Eq, Grid, TimeFunction
from repro.verify import analyse_kernel_source, lint_equations, lint_operator
from ..conftest import make_acoustic_operator


@pytest.fixture
def grid():
    return Grid(shape=(12, 12))


def _codes(diags):
    return [d.code for d in diags]


def _forward_in_time(expr, grid):
    from repro.dsl.symbols import Indexed

    return expr.subs({ix: ix.shift(grid.stepping_dim, 1) for ix in expr.atoms(Indexed)})


# -- equation-level checks -------------------------------------------------------


def test_clean_operator_passes(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    report = lint_operator(op, dt=0.5)
    assert report.ok, report.render()
    assert not report.diagnostics


def test_e101_out_of_halo_read(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)  # halo 2
    far = u.indexify().shift(grid.dimensions[0], 3)  # reads u[t, x+3]
    diags = lint_equations([Eq(u.forward, far)])
    assert "E101" in _codes(diags)
    d = next(d for d in diags if d.code == "E101")
    assert d.severity == "error" and d.field == "u"
    assert "x+3" in d.message


def test_e102_non_pointwise_write(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    shifted_lhs = u.forward.shift(grid.dimensions[0], 1)
    diags = lint_equations([Eq(shifted_lhs, u.indexify())])
    assert "E102" in _codes(diags)


def test_e401_intra_sweep_aliasing(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    da = _forward_in_time(a.dx, grid)  # radius-2 read of a[t+1]
    diags = lint_equations([Eq(a.forward, a.dx), Eq(b.forward, da)])
    assert "E401" in _codes(diags)
    assert next(d for d in diags if d.code == "E401").field == "a"


def test_pointwise_intra_sweep_read_is_clean(grid):
    a = TimeFunction("a", grid, time_order=1, space_order=4)
    b = TimeFunction("b", grid, time_order=1, space_order=4)
    diags = lint_equations([Eq(a.forward, a.dx), Eq(b.forward, 2 * a.forward)])
    assert "E401" not in _codes(diags)


def test_e402_duplicate_write(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=4)
    diags = lint_equations([Eq(u.forward, u.dx), Eq(u.forward, u.dy)])
    assert "E402" in _codes(diags)


def test_w201_dtype_narrowing(grid):
    u64 = TimeFunction("u", grid, time_order=1, space_order=2, dtype=np.float64)
    v32 = TimeFunction("v", grid, time_order=1, space_order=2, dtype=np.float32)
    diags = lint_equations([Eq(v32.forward, u64.indexify())])
    assert "W201" in _codes(diags)
    d = next(d for d in diags if d.code == "W201")
    assert d.severity == "warning" and "float32" in d.message


def test_matching_dtypes_no_w201(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    diags = lint_equations([Eq(u.forward, 0.5 * u.indexify())])
    assert "W201" not in _codes(diags)


# -- fused-kernel scratch-slot analysis ------------------------------------------

HEADER = "def _kernel(slots, outs, views):\n    s0, s1, s2 = slots\n    o0, = outs\n    v0, v1 = views\n"


def test_e301_read_before_write():
    source = HEADER + "    np.add(v0, s1, s0)\n    o0[...] = s0\n"
    diags = analyse_kernel_source(source, sweep=0)
    assert _codes(diags) == ["E301"]
    d = diags[0]
    assert d.severity == "error" and "s1" in d.message and d.sweep == 0


def test_e301_reported_once_per_slot():
    source = HEADER + (
        "    np.add(v0, s1, s0)\n"
        "    np.multiply(s1, v1, s2)\n"
        "    np.add(s0, s2, s0)\n"
        "    o0[...] = s0\n"
    )
    diags = analyse_kernel_source(source)
    assert _codes(diags) == ["E301"]


def test_w302_overwritten_before_read():
    source = HEADER + (
        "    np.add(v0, v1, s0)\n"
        "    np.multiply(v0, v1, s0)\n"
        "    o0[...] = s0\n"
    )
    diags = analyse_kernel_source(source)
    assert _codes(diags) == ["W302"]
    assert "np.add" in diags[0].message


def test_w302_never_read():
    source = HEADER + (
        "    np.add(v0, v1, s0)\n"
        "    np.multiply(v0, v1, s1)\n"
        "    o0[...] = s0\n"
    )
    diags = analyse_kernel_source(source)
    assert _codes(diags) == ["W302"]
    assert "s1" in diags[0].message


def test_clean_kernel_source():
    source = HEADER + (
        "    np.add(v0, v1, s0)\n"
        "    np.multiply(s0, v0, s1)\n"
        "    o0[...] = s1\n"
    )
    assert analyse_kernel_source(source) == []


def test_real_fused_kernels_are_clean(grid3d):
    # the sources the fused engine actually generates must satisfy their own
    # linter: compiled via lint_operator, which binds dt like apply does
    op, *_ = make_acoustic_operator(grid3d, so=8)
    report = lint_operator(op, dt=0.25)
    assert report.ok
    assert not any(d.code in ("E301", "W302") for d in report.diagnostics)


# -- report & CLI ----------------------------------------------------------------


def test_report_render_and_dict(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    far = u.indexify().shift(grid.dimensions[0], 3)
    from repro.verify import LintReport

    report = LintReport(name="demo", diagnostics=lint_equations([Eq(u.forward, far)]))
    assert not report.ok
    assert "FAIL" in report.render() and "E101" in report.render()
    d = report.to_dict()
    assert d["ok"] is False and d["errors"] >= 1
    assert d["diagnostics"][0]["code"] == "E101"


def test_cli_single_example(capsys):
    from repro.lint import main

    assert main(["acoustic"]) == 0
    out = capsys.readouterr().out
    assert "acoustic" in out and "OK" in out
    # one certificate line per schedule of the shared CLI sweep
    from repro.lint import SCHEDULES

    for kind in SCHEDULES:
        assert f"certificate[{kind}]: legal" in out


def test_cli_json_output(capsys):
    from repro.lint import JSON_SCHEMA_VERSION, main

    assert main(["tti", "--json", "--no-prove"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["version"] == JSON_SCHEMA_VERSION
    assert data["tool"] == "repro.lint"
    assert data["results"]["tti"]["ok"] is True
    assert "certificate" not in data["results"]["tti"]


def test_cli_json_schedules_and_stability(capsys):
    """--json proves every schedule of the shared set and the envelope is
    byte-stable across runs (sorted keys, versioned)."""
    from repro.lint import SCHEDULES, main

    assert main(["acoustic", "--json"]) == 0
    first = capsys.readouterr().out
    data = json.loads(first)
    assert data["schedules"] == list(SCHEDULES)
    certs = data["results"]["acoustic"]["certificates"]
    assert set(certs) == set(SCHEDULES)
    for cert in certs.values():
        assert cert["legal"] is True
    # legacy key still points at the wavefront certificate
    assert data["results"]["acoustic"]["certificate"] == certs["wavefront"]
    assert main(["acoustic", "--json"]) == 0
    assert capsys.readouterr().out == first
