"""Abstract domains: interval lattice, affine forms, parameter spaces."""

import pytest

from repro.verify.absint import AffineForm, Interval, ParamSpace

# -- Interval --------------------------------------------------------------------


def test_interval_constructors():
    assert Interval.point(3) == Interval(3, 3)
    assert Interval.at_least(1) == Interval(1, None)
    assert Interval.top() == Interval(None, None)
    with pytest.raises(ValueError):
        Interval(2, 1)


def test_interval_arithmetic_exact():
    a, b = Interval(1, 2), Interval(3, 4)
    assert a + b == Interval(4, 6)
    assert -a == Interval(-2, -1)
    assert a - b == Interval(-3, -1)
    assert a.scale(3) == Interval(3, 6)
    assert a.scale(-1) == Interval(-2, -1)
    assert a.scale(0) == Interval.point(0)
    assert a.shift(10) == Interval(11, 12)


def test_interval_infinities_absorb():
    top = Interval.top()
    assert top + Interval(1, 2) == top
    assert Interval.at_least(0) + Interval.point(5) == Interval.at_least(5)
    assert -Interval.at_least(3) == Interval(None, -3)
    assert Interval.at_least(2).scale(-2) == Interval(None, -4)


def test_interval_join_is_convex_hull():
    assert Interval.point(3).join(Interval.point(5)) == Interval(3, 5)
    assert Interval(0, 1).join(Interval.at_least(4)) == Interval.at_least(0)
    assert Interval(0, 1).join(Interval.top()) == Interval.top()


def test_interval_widening_jumps_unstable_bounds_to_infinity():
    # a growing upper bound widens to +inf; the stable lower bound survives
    assert Interval(0, 3).widen(Interval(0, 5)) == Interval(0, None)
    # a shrinking lower bound widens to -inf
    assert Interval(0, 3).widen(Interval(-1, 3)) == Interval(None, 3)
    # a stable (contained) update widens to itself: chains terminate
    assert Interval(0, 3).widen(Interval(1, 2)) == Interval(0, 3)
    # widening is a one-step ascent to a fixpoint: widening again is stable
    w = Interval(0, 3).widen(Interval(0, 5))
    assert w.widen(Interval(0, 10**9)) == w


def test_interval_predicates():
    assert Interval(0, 5).contains(0) and Interval(0, 5).contains(5)
    assert not Interval(0, 5).contains(6)
    assert Interval.at_least(2).contains(10**12)
    assert Interval.at_least(0).nonnegative
    assert not Interval(-1, 5).nonnegative
    assert not Interval.top().nonnegative  # unbounded below is not provably >= 0
    assert Interval(1, None).describe() == "[1, +inf]"
    assert Interval.top().to_list() == [None, None]


# -- AffineForm ------------------------------------------------------------------


def test_affine_form_normalisation():
    # zero coefficients drop, names sort: structural equality is semantic
    assert AffineForm.of(2, x=1, y=0) == AffineForm.of(2, x=1)
    assert AffineForm.of(0, b=1, a=2).coeffs == (("a", 2), ("b", 1))
    assert AffineForm.param("h") == AffineForm.of(0, h=1)


def test_affine_form_arithmetic():
    f = AffineForm.param("x") + AffineForm.of(3, y=2)
    assert f == AffineForm.of(3, x=1, y=2)
    assert f - AffineForm.param("x") == AffineForm.of(3, y=2)
    # cancellation drops the coefficient entirely
    assert (AffineForm.param("x") - AffineForm.param("x")) == AffineForm.of(0)
    assert f.shift(-3) == AffineForm.of(0, x=1, y=2)
    assert (-f) == AffineForm.of(-3, x=-1, y=-2)


def test_affine_range_over_is_exact():
    space = ParamSpace().declare("x", 0, 3).declare("y", 1, 2)
    f = AffineForm.of(2, x=1, y=-1)  # 2 + x - y over [0,3] x [1,2]
    got = f.range_over(space)
    # brute-force image over the finite box
    values = [2 + x - y for x in range(4) for y in (1, 2)]
    assert got == Interval(min(values), max(values))


def test_affine_range_over_unbounded_family():
    space = ParamSpace().declare("N", 1, None).declare("h", 2, 2)
    # halo + (N-1): the highest interior index in the padded buffer
    f = AffineForm.of(-1, N=1, h=1)
    assert f.range_over(space) == Interval(2, None)
    assert f.range_over(space).nonnegative


def test_affine_describe():
    assert AffineForm.of(2, x=1, y=-1).describe() == "2 + x - y"
    assert AffineForm.param("h", 3).describe() == "3*h"
    assert AffineForm.of(0).describe() == "0"


# -- ParamSpace ------------------------------------------------------------------


def test_param_space_declare_and_lookup():
    space = ParamSpace().declare("N_x", 1, None, "grid extent")
    assert "N_x" in space and "N_y" not in space
    assert space.interval("N_x") == Interval.at_least(1)
    with pytest.raises(KeyError):
        space.interval("N_y")


def test_param_space_witness_is_minimal_member():
    space = (
        ParamSpace()
        .declare("N", 4, None)
        .declare("h", 2, 2)
        .declare("free", None, None)
        .declare("neg", None, -3)
    )
    w = space.witness()
    assert w == {"N": 4, "h": 2, "free": 0, "neg": -3}
    for name, v in w.items():
        assert space.interval(name).contains(v)


def test_param_space_dict_roundtrip():
    space = ParamSpace().declare("T_0", 1, None, "tile extent").declare("h", 2, 2)
    d = space.to_dict()
    assert d["T_0"] == {"range": [1, None], "description": "tile extent"}
    back = ParamSpace.from_dict(d)
    assert back.to_dict() == d
    assert list(back) == sorted(space)
