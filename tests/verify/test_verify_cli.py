"""``python -m repro.verify``: exit codes, JSON envelope, warning baseline."""

import json

import pytest

import repro.verify.__main__ as cli
from repro.lint import SCHEDULES


def test_single_example_human_output(capsys):
    assert cli.main(["acoustic"]) == 0
    out = capsys.readouterr().out
    assert "acoustic: OK" in out
    assert "bounds [acoustic, any]" in out
    assert "scratch: slab-safe=True" in out
    assert "analyzer" in out


def test_requires_example_or_all(capsys):
    with pytest.raises(SystemExit):
        cli.main([])


def test_json_envelope_schema(capsys):
    assert cli.main(["acoustic", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["version"] == cli.JSON_SCHEMA_VERSION
    assert data["tool"] == "repro.verify"
    entry = data["results"]["acoustic"]
    assert entry["ok"] is True
    assert entry["analyzer_seconds"] > 0
    assert set(entry["bounds"]) == {"any", *SCHEDULES}
    for cert in entry["bounds"].values():
        assert cert["safe"] is True
    assert entry["lint"]["errors"] == 0
    # scratch analysis travels with the lint report
    assert entry["lint"]["scratch"]["safe_for_slab"] is True


def test_json_output_is_sorted(capsys):
    assert cli.main(["acoustic", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert json.dumps(data, indent=2, sort_keys=True) == out.rstrip("\n")


# -- baseline regression logic ---------------------------------------------------


def _payload(*warnings):
    return {
        "version": 1,
        "tool": "repro.verify",
        "results": {
            "demo": {
                "lint": {
                    "diagnostics": [
                        {
                            "severity": "warning",
                            "code": code,
                            "sweep": sweep,
                            "statement": stmt,
                        }
                        for code, sweep, stmt in warnings
                    ]
                }
            }
        },
    }


def test_warning_keys_are_stable_identities():
    payload = _payload(("W201", 0, "eq"), ("W302", 1, "dead"))
    keys = cli._warning_keys(payload)
    assert keys == {
        ("demo", "W201", 0, "eq"),
        ("demo", "W302", 1, "dead"),
    }
    # errors are gated directly via "ok", never via the baseline
    payload["results"]["demo"]["lint"]["diagnostics"].append(
        {"severity": "error", "code": "E101", "sweep": 0, "statement": "x"}
    )
    assert cli._warning_keys(payload) == keys


def test_missing_baseline_warns_but_passes(capsys):
    assert cli.main(["acoustic", "--json", "--baseline", "/nonexistent.json"]) == 0
    err = capsys.readouterr().err
    assert "not found" in err


def test_new_warning_vs_baseline_fails(tmp_path, capsys, monkeypatch):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(_payload()))  # committed: zero warnings

    def fake_verify(kind):
        entry = _payload(("W201", 0, "eq"))["results"]["demo"]
        entry.update({"bounds": {}, "analyzer_seconds": 0.0, "ok": True})
        return entry

    monkeypatch.setattr(cli, "verify_example", fake_verify)
    monkeypatch.setattr("repro.lint.EXAMPLES", ("demo",))
    assert cli.main(["--all", "--json", "--baseline", str(baseline)]) == 1
    captured = capsys.readouterr()
    assert "new warning vs baseline" in captured.err


def test_known_warning_in_baseline_passes(tmp_path, capsys, monkeypatch):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(_payload(("W201", 0, "eq"))))

    def fake_verify(kind):
        entry = _payload(("W201", 0, "eq"))["results"]["demo"]
        entry.update({"bounds": {}, "analyzer_seconds": 0.0, "ok": True})
        return entry

    monkeypatch.setattr(cli, "verify_example", fake_verify)
    monkeypatch.setattr("repro.lint.EXAMPLES", ("demo",))
    assert cli.main(["--all", "--json", "--baseline", str(baseline)]) == 0
    # a *fixed* warning must not fail either: the baseline is an upper bound
    baseline.write_text(
        json.dumps(_payload(("W201", 0, "eq"), ("W302", 1, "dead")))
    )
    assert cli.main(["--all", "--json", "--baseline", str(baseline)]) == 0


def test_committed_baseline_matches_current_tree(capsys):
    """The repo's checked-in verify_baseline.json gates CI: the current tree
    must pass against it."""
    from pathlib import Path

    repo_baseline = Path(__file__).resolve().parents[2] / "verify_baseline.json"
    assert repo_baseline.exists()
    assert cli.main(["--all", "--json", "--baseline", str(repo_baseline)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert set(data["results"]) == {"acoustic", "tti", "elastic"}
    for entry in data["results"].values():
        assert entry["ok"] is True
