"""Parametric bounds analysis: certificates, counterexamples, runtime match."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.dsl import Eq, Grid, TimeFunction
from repro.errors import BoundsProofError, EngineCompilationError
from repro.ir import Operator
from repro.verify import BoundsCertificate, prove_bounds
from repro.verify.absint import build_param_space
from ..conftest import make_acoustic_operator


def _bad_operator(shape=(8, 8), so=2, reach=3, name="Bad"):
    """A kernel reading ``reach`` points along x with only ``so`` halo — the
    injected off-by-one(ish) halo violation."""
    grid = Grid(shape=shape, extent=tuple(10.0 * (n - 1) for n in shape))
    u = TimeFunction("u", grid, time_order=1, space_order=so)
    far = u.indexify().shift(grid.dimensions[0], reach)
    return Operator([Eq(u.forward, far)], name=name), u


# -- positive verdicts: certificates hold wherever execution succeeds ------------


@pytest.mark.parametrize("so", [2, 4, 8])
@pytest.mark.parametrize("tile", [(4, 4), (8, 8), (8, 4)])
def test_certificate_holds_wherever_execution_succeeds(so, tile):
    """Property sweep over space order x tile shape: the parametric proof
    covers every member of the family, so any concrete run that the
    executor accepts must also be a run the certificate admits."""
    grid = Grid(shape=(14, 12), extent=(130.0, 110.0))
    op, u, *_ = make_acoustic_operator(grid, so=so, src_coords=False, rec_coords=False)
    schedule = WavefrontSchedule(tile=tile, block=tile, height=2)
    cert = prove_bounds(op, schedule)
    assert cert.check(), cert.summary()
    assert cert.counterexample is None and not cert.violations()
    assert cert.min_margin is not None and cert.min_margin >= 0
    # the concrete run the certificate generalises: must execute cleanly
    u.data_with_halo[...] = 0.0
    u.interior(0)[...] = np.random.default_rng(so).normal(size=grid.shape)
    op.apply(time_M=3, dt=1.0, schedule=schedule)
    assert np.isfinite(u.interior(3)).all()


def test_space_margins_are_halo_vs_offset(grid2d):
    """Executors clip every window to the interior, so the margin along each
    dimension reduces to halo +/- offset — independent of tile parameters."""
    op, *_ = make_acoustic_operator(grid2d, so=4)
    cert = prove_bounds(op)
    space_checks = [c for c in cert.checks if c.kind == "space"]
    assert space_checks
    for c in space_checks:
        assert c.margin_lo == c.halo + c.offset
        assert c.margin_hi == c.halo - c.offset
        assert abs(c.offset) <= c.halo
    # the tightest margin comes from the widest stencil reach
    assert cert.min_margin == min(
        min(c.margin_lo, c.margin_hi) for c in space_checks
    )


def test_family_covers_all_schedules(grid2d):
    """The schedule-free proof quantifies over every schedule knob at once."""
    op, *_ = make_acoustic_operator(grid2d, so=4)
    space = build_param_space(op, halos={"u": 4})
    for d in op.grid.dimensions:
        assert f"N_{d.name}" in space
        assert space.interval(f"N_{d.name}").lo == 1
        assert space.interval(f"N_{d.name}").hi is None
    assert "H" in space and "lag" in space and "T_0" in space and "B_0" in space
    assert space.interval("halo_u").lo == space.interval("halo_u").hi == 4


def test_certificate_roundtrip_and_tamper(grid2d):
    op, *_ = make_acoustic_operator(grid2d)
    cert = prove_bounds(op, WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2))
    d = cert.to_dict()
    assert d["safe"] is True
    back = BoundsCertificate.from_dict(d)
    assert back.check() and back.to_dict() == d
    # a tampered margin must fail re-validation without re-running analysis
    rows = [r for r in d["checks"] if r["kind"] == "space"]
    rows[0]["margin_hi"] = -1
    assert not BoundsCertificate.from_dict(d).check()


def test_certificates_cached_per_schedule_family(grid2d):
    op, *_ = make_acoustic_operator(grid2d)
    any_cert = op.bounds_certificate_for(None)
    assert op.bounds_certificate_for(None) is any_cert
    wf = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)
    wf_cert = op.bounds_certificate_for(wf)
    assert op.bounds_certificate_for(wf) is wf_cert
    assert wf_cert is not any_cert
    assert op.analyzer_seconds > 0.0


# -- negative verdicts: counterexample matches the runtime error -----------------


def test_refuted_family_names_concrete_counterexample():
    op, _ = _bad_operator()
    cert = prove_bounds(op)
    assert not cert.check()
    ce = cert.counterexample
    assert ce is not None
    # the violated margin: margin_hi = halo - offset = 2 - 3 = -1
    violations = cert.violations()
    assert len(violations) == 1
    bad = violations[0]
    assert (bad.function, bad.dim, bad.offset) == ("u", "x", 3)
    assert bad.margin_lo == 5 and bad.margin_hi == -1
    # concrete minimal instance on the operator's own grid: the escaping
    # point is the last interior x, and the flattened padded index is just
    # past the padded extent — off by exactly the violated margin
    assert ce.function == "u" and ce.dim == "x" and ce.offset == 3
    assert ce.instance.t == 0
    assert ce.index[0] == ce.extent[0] + bad.margin_hi * -1 - 1
    assert ce.index[0] >= ce.extent[0]
    assert "margin_hi" in ce.reason


def test_counterexample_matches_runtime_failure():
    """The statically predicted out-of-bounds access is the real one: the
    interp engine (no bounds gate) fails on exactly that access."""
    op, _ = _bad_operator()
    cert = prove_bounds(op)
    assert not cert.check()
    with pytest.raises(ValueError, match="broadcast"):
        op.apply(time_M=1, dt=0.1, engine="interp")


def test_fused_bind_rejects_before_execution_and_degrades(monkeypatch):
    """The bounds gate is the fused bind's second line of defence: even with
    the equation-level linter blinded (its E101 covers the same halo
    condition and fires first), a refuted certificate raises
    BoundsProofError — which rides the ladder as a compilation failure."""
    import repro.verify.linter as linter_mod
    from repro.verify import LintReport

    monkeypatch.setattr(
        linter_mod,
        "lint_bound_sweeps",
        lambda bound, name="": LintReport(name=name, diagnostics=[]),
    )
    op, u = _bad_operator(so=4, reach=5, name="BadStrict")
    with pytest.raises(BoundsProofError) as err:
        op.apply(time_M=1, dt=0.1, strict_engine=True)
    assert err.value.counterexample is not None
    assert not err.value.certificate.check()
    assert isinstance(err.value, EngineCompilationError)
    assert not np.any(u.data)  # rejected before any timestep ran


def test_lint_gate_fires_first_on_halo_violation():
    """Unblinded, the same operator is rejected by E101 before the bounds
    gate even runs — the two gates agree on halo violations."""
    from repro.errors import KernelLintError

    op, _ = _bad_operator(so=4, reach=5, name="BadLintFirst")
    with pytest.raises(KernelLintError, match="E101"):
        op.apply(time_M=1, dt=0.1, strict_engine=True)


def test_wavefront_apply_rejects_hard_before_execution():
    """Under a wavefront schedule the preflight re-proves with the *actual*
    schedule and rejects hard — no sound rung to degrade to."""
    op, u = _bad_operator(shape=(16, 16))
    wf = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)
    with pytest.raises(BoundsProofError) as err:
        op.apply(time_M=2, dt=0.1, schedule=wf)
    ce = err.value.counterexample
    assert ce is not None and ce.schedule.get("kind") == "wavefront"
    assert not np.any(u.data)


def test_injected_off_by_one_margin_is_minus_one():
    """reach = halo + 1 is the tightest possible violation: exactly one
    point escapes, and the certificate says so."""
    for so in (2, 4):
        op, _ = _bad_operator(so=so, reach=so + 1, name=f"OffByOne{so}")
        cert = prove_bounds(op)
        assert not cert.check()
        assert min(c.margin_hi for c in cert.violations()) == -1
        with pytest.raises(ValueError):
            op.apply(time_M=1, dt=0.1, engine="interp")


# -- golden rendering ------------------------------------------------------------

GOLDEN_RENDER = """\
Parametric bounds certificate
quantity         value
---------------  ---------------------------------------------------------------------------------------------------
operator         Golden
schedule family  any
sparse mode      offgrid
safe             True
checks           5 (space=3, time=2)
min halo margin  1
halos            u=2
parameters       B_0 in [1, inf]; H in [1, inf]; N_x in [1, inf]; T_0 in [1, inf]; halo_u in [2, 2]; lag in [0, inf]"""


def test_golden_certificate_rendering():
    from repro.analysis.report import render_bounds_certificate

    grid = Grid(shape=(8,), extent=(70.0,))
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    op = Operator([Eq(u.forward, 0.5 * u.dx)], name="Golden")
    cert = op.bounds_certificate_for(None)
    got = [line.rstrip() for line in render_bounds_certificate(cert).splitlines()]
    assert got == GOLDEN_RENDER.splitlines()


def test_refuted_rendering_shows_counterexample_and_margins():
    from repro.analysis.report import render_bounds_certificate

    op, _ = _bad_operator()
    out = render_bounds_certificate(prove_bounds(op))
    assert "counterexample:" in out
    assert "violated margins:" in out
    assert "u[x+3]" in out and "margin_hi=-1" in out


def test_naive_schedule_family_proves_same_margins(grid2d):
    op, *_ = make_acoustic_operator(grid2d)
    any_cert = prove_bounds(op)
    naive_cert = prove_bounds(op, NaiveSchedule())
    assert naive_cert.check()
    assert naive_cert.min_margin == any_cert.min_margin
    assert naive_cert.schedule.get("kind") == "naive"
