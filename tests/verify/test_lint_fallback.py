"""The lint gate on the fused bind rides the engine-degradation ladder."""

import contextlib

import numpy as np
import pytest

import repro.verify.linter as linter_mod
from repro.core import NaiveSchedule
from repro.errors import EngineFallbackWarning, KernelLintError
from repro.verify import Diagnostic, LintReport

from ..conftest import make_acoustic_operator, run_and_capture

NT = 8
DT = 0.5


@contextlib.contextmanager
def reject_all_kernels(monkeypatch):
    """Make the linter flag every fused bind with a synthetic error finding."""

    def failing(bound_sweeps, name="Kernel"):
        return LintReport(
            name=name,
            diagnostics=[
                Diagnostic(
                    "E301",
                    "error",
                    "synthetic: scratch slot s0 read before write",
                    sweep=0,
                )
            ],
        )

    with monkeypatch.context() as m:
        m.setattr(linter_mod, "lint_bound_sweeps", failing)
        yield


def test_lint_rejected_bind_degrades_with_identical_numerics(grid2d, monkeypatch):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), engine="kernel")

    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid2d, nt=NT)
    with reject_all_kernels(monkeypatch):
        with pytest.warns(EngineFallbackWarning, match="'fused'.*degrading to 'kernel'"):
            deg_u, deg_rec = run_and_capture(
                op2, u2, rec2, NT, DT, NaiveSchedule(), engine="fused"
            )
    np.testing.assert_array_equal(deg_u, ref_u)
    np.testing.assert_array_equal(deg_rec, ref_rec)


def test_lint_rejected_bind_is_never_cached(grid2d, monkeypatch):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with reject_all_kernels(monkeypatch):
        with pytest.warns(EngineFallbackWarning):
            op.apply(time_M=NT, dt=DT)
        assert not op._sweep_cache  # a degraded bind must retry the ladder
        with pytest.warns(EngineFallbackWarning):
            op.apply(time_M=NT, dt=DT)
        assert not op._sweep_cache
    # the lint gate lifted: the next apply binds fused again and caches it
    op.apply(time_M=NT, dt=DT)
    assert float(DT) in op._sweep_cache


def test_strict_engine_surfaces_lint_diagnostics(grid2d, monkeypatch):
    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with reject_all_kernels(monkeypatch):
        with pytest.raises(KernelLintError) as excinfo:
            op.apply(time_M=NT, dt=DT, strict_engine=True)
    exc = excinfo.value
    assert exc.engine == "fused"
    assert exc.diagnostics and exc.diagnostics[0].code == "E301"
    assert "E301" in str(exc)


def test_clean_operator_passes_the_gate(grid2d):
    # the real linter runs on every fused bind: a clean operator binds fused,
    # caches, and emits no fallback warning
    import warnings

    op, u, m, src, rec = make_acoustic_operator(grid2d, nt=NT)
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineFallbackWarning)
        op.apply(time_M=NT, dt=DT)
    assert float(DT) in op._sweep_cache
