"""Dtype lattice: NEP 50 promotion vs NumPy ground truth, chains, DtypePass."""

import numpy as np
import pytest

from repro.dsl import Eq, Grid, TimeFunction
from repro.verify import lint_equations
from repro.verify.absint import DtypePass, expr_dtype, promote, run_pass, ufunc_result
from repro.verify.absint.dtypes import (
    WEAK_FLOAT,
    WEAK_INT,
    concretise,
    is_weak,
    weak_of,
)
from ..conftest import make_acoustic_operator

CONCRETE = ["int16", "int32", "int64", "float16", "float32", "float64", "complex64"]


# -- promote: the lattice must agree with NumPy exactly --------------------------


@pytest.mark.parametrize("a", CONCRETE)
@pytest.mark.parametrize("b", CONCRETE)
def test_promote_matches_numpy_for_concrete_pairs(a, b):
    assert promote(a, b) == np.promote_types(a, b).name


@pytest.mark.parametrize("dt", CONCRETE)
def test_weak_scalars_adapt_like_nep50(dt):
    """Ground truth is an actual NumPy op: a Python scalar must not promote
    an array operand (NEP 50), except float-scalar-forces-int-inexact."""
    arr = np.ones(1, dtype=dt)
    assert promote(dt, WEAK_INT) == (arr + 2).dtype.name
    assert promote(dt, WEAK_FLOAT) == (arr + 2.5).dtype.name


def test_weak_lattice_elements():
    assert weak_of(2) == WEAK_INT and weak_of(2.5) == WEAK_FLOAT
    assert is_weak(WEAK_INT) and is_weak(WEAK_FLOAT) and not is_weak("float32")
    assert promote(WEAK_INT, WEAK_INT) == WEAK_INT
    assert promote(WEAK_INT, WEAK_FLOAT) == WEAK_FLOAT
    assert concretise(WEAK_FLOAT) == "float64"
    assert concretise("float32") == "float32"


# -- ufunc result rules vs executed ground truth ---------------------------------


@pytest.mark.parametrize("dt", ["int16", "int32", "float16", "float32", "float64"])
@pytest.mark.parametrize("op", ["sin", "cos", "sqrt", "exp"])
def test_transcendentals_match_numpy(dt, op):
    got = ufunc_result(op, [dt])
    truth = getattr(np, op)(np.ones(1, dtype=dt)).dtype.name
    assert got == truth


@pytest.mark.parametrize("a", ["int32", "int64", "float32", "float64"])
@pytest.mark.parametrize("b", ["int32", "float32"])
def test_true_divide_always_inexact(a, b):
    got = ufunc_result("true_divide", [a, b])
    truth = (np.ones(1, dtype=a) / np.ones(1, dtype=b)).dtype.name
    assert got == truth


def test_weak_transcendental_resolves_to_default_float():
    assert ufunc_result("sin", [WEAK_INT]) == np.sin(2).dtype.name == "float64"


def test_chained_ops_match_numpy():
    # float32 * python-float + float64: the float64 leaf wins, nothing else
    x32 = np.ones(1, np.float32)
    x64 = np.ones(1, np.float64)
    acc = ufunc_result("add", [ufunc_result("multiply", ["float32", WEAK_FLOAT]), "float64"])
    assert acc == (x32 * 0.5 + x64).dtype.name == "float64"


# -- expr_dtype: symbolic propagation + promotion chain --------------------------


@pytest.fixture
def grid():
    return Grid(shape=(8, 8))


def test_expr_dtype_names_the_promoting_subexpression(grid):
    u64 = TimeFunction("u", grid, time_order=1, space_order=2, dtype=np.float64)
    v32 = TimeFunction("v", grid, time_order=1, space_order=2, dtype=np.float32)
    expr = 0.5 * v32.indexify() + u64.indexify()
    elem, chain = expr_dtype(expr, lambda a: a.function.dtype)
    assert elem == "float64"
    # the chain records the seed and the step where float64 entered
    assert chain and "float64" in " ".join(chain)
    assert any("u[" in step for step in chain)


def test_expr_dtype_homogeneous_has_no_promotions(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    x = grid.dimensions[0]
    expr = 0.5 * u.indexify() + u.indexify().shift(x, 1)
    elem, chain = expr_dtype(expr, lambda a: a.function.dtype)
    assert elem == "float32"
    # the weak 0.5 adapts to float32; nothing ever promotes past float32
    assert not any("float64" in step for step in chain)


def test_w201_message_names_statement_and_chain(grid):
    u64 = TimeFunction("u", grid, time_order=1, space_order=2, dtype=np.float64)
    v32 = TimeFunction("v", grid, time_order=1, space_order=2, dtype=np.float32)
    diags = lint_equations([Eq(v32.forward, 2.0 * u64.indexify())])
    d = next(d for d in diags if d.code == "W201")
    assert "evaluates to float64" in d.message
    assert "'v' holds float32" in d.message
    assert "promotion chain" in d.message


def test_w201_no_arrays_materialised(grid, monkeypatch):
    """The lattice decides W201 without executing anything: creating any
    ndarray during the check would reintroduce specimen evaluation."""
    u64 = TimeFunction("u", grid, time_order=1, space_order=2, dtype=np.float64)
    v32 = TimeFunction("v", grid, time_order=1, space_order=2, dtype=np.float32)
    eqs = [Eq(v32.forward, u64.indexify())]

    def banned(*a, **k):
        raise AssertionError("W201 must not materialise arrays")

    monkeypatch.setattr(np, "zeros", banned)
    monkeypatch.setattr(np, "empty", banned)
    diags = lint_equations(eqs)
    assert any(d.code == "W201" for d in diags)


# -- DtypePass: the lattice and the emitter must agree ---------------------------


def test_dtype_pass_consistent_on_real_kernel(grid2d):
    """E203 (lattice vs emitter slotspec disagreement) never fires on a real
    fused kernel, and every typed slot matches its declared dtype."""
    op, *_ = make_acoustic_operator(grid2d, src_coords=False, rec_coords=False)
    eng, bound = op._build_sweeps(1.0, "fused", True)
    assert eng == "fused"
    for j, sw in enumerate(bound):
        program = sw.kernel_program()
        assert program is not None
        pass_ = DtypePass(sweep=j)
        result = run_pass(pass_, program)
        assert not pass_.findings, [f.message for f in pass_.findings]
        # the final state types every slot with its emitter-declared dtype
        declared = dict(program.slots)
        assert declared, "a real fused kernel uses scratch slots"
        for name, elem in result.exit.items():
            assert elem == declared[name]
        # the structured slot table mirrors the kernel's slotspec
        assert [dt for _, dt in program.slots] == [
            np.dtype(dt).name for dt, _ in sw._kernel.__slotspec__
        ]
