"""Whole-program scratch liveness: findings, interference, slab coloring."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.dsl import Grid
from repro.ir.nodes import TAInstr, TAOperand, TAProgram
from repro.ir.passes import plan_scratch_slots
from repro.verify import analyse_programs
from repro.verify.absint import LivenessReport
from ..conftest import make_acoustic_operator, run_and_capture


def V(name):
    return TAOperand("view", name, "float32")


def S(name):
    return TAOperand("slot", name, "float32")


def O(name):
    return TAOperand("out", name, "float32")


def prog(instrs, slots, views=(("v0", "float32"),), outs=(("o0", "float32"),)):
    return TAProgram(
        instrs=tuple(instrs), slots=tuple(slots), views=tuple(views), outs=tuple(outs)
    )


# -- coloring: non-overlapping lifetimes share a slab ----------------------------


def test_sequential_slots_share_one_color():
    """s1's lifetime starts after s0's ends: the coloring folds two slots
    into one slab — the pool shrink the slab plan licenses."""
    p = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("add", (S("s0"), V("v0")), O("o0")),
            TAInstr("multiply", (V("v0"), V("v0")), S("s1")),
            TAInstr("add", (S("s1"), V("v0")), O("o0")),
        ],
        slots=[("s0", "float32"), ("s1", "float32")],
    )
    report = analyse_programs([p])
    assert not report.findings
    assert report.safe_for_slab
    assert report.ranges[0] == {"s0": (0, 1), "s1": (2, 3)}
    assert report.edges == []
    assert report.colors == [(0, 0)]
    assert report.total_slots == 2 and report.total_colors == 1
    live, plan = plan_scratch_slots([p])
    assert plan == [(0, 0)]


def test_overlapping_slots_interfere_and_get_distinct_colors():
    p = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("multiply", (V("v0"), V("v0")), S("s1")),
            TAInstr("add", (S("s0"), S("s1")), O("o0")),
        ],
        slots=[("s0", "float32"), ("s1", "float32")],
    )
    report = analyse_programs([p])
    assert report.safe_for_slab
    assert report.edges == [(0, "s0", "s1")]
    assert sorted(report.colors[0]) == [0, 1]
    assert report.colors_per_dtype == {"float32": 2}


def test_different_dtypes_never_interfere():
    p = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("multiply", (V("v0"), V("v0")), TAOperand("slot", "s1", "float64")),
            TAInstr("add", (S("s0"), TAOperand("slot", "s1", "float64")), O("o0")),
        ],
        slots=[("s0", "float32"), ("s1", "float64")],
    )
    report = analyse_programs([p])
    assert report.edges == []
    # one slab per dtype: slabs are keyed (dtype, color)
    assert report.colors_per_dtype == {"float32": 1, "float64": 1}


# -- findings: stale reads and dead stores ---------------------------------------


def test_e301_stale_read_names_producing_sweep():
    writer = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("add", (S("s0"), V("v0")), O("o0")),
        ],
        slots=[("s0", "float32")],
    )
    reader = prog(
        [TAInstr("add", (S("s0"), V("v0")), O("o0"))],
        slots=[("s0", "float32")],
    )
    report = analyse_programs([writer, reader])
    stale = [f for f in report.findings if f.code == "E301"]
    assert len(stale) == 1
    assert stale[0].sweep == 1
    assert "stale data" in stale[0].message
    assert "sweep 0" in stale[0].message  # producer attribution
    assert not report.safe_for_slab
    # the cross-sweep fixpoint sees the buffer live into the reader's kernel
    assert ("float32", 0) in report.live_in[1]
    # no slab plan is licensed for an unproven program
    _, plan = plan_scratch_slots([writer, reader])
    assert plan is None


def test_w302_overwrite_before_read():
    p = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("add", (V("v0"), V("v0")), S("s0")),
            TAInstr("add", (S("s0"), V("v0")), O("o0")),
        ],
        slots=[("s0", "float32")],
    )
    report = analyse_programs([p])
    dead = [f for f in report.findings if f.code == "W302"]
    assert len(dead) == 1
    assert "overwrites it before any read" in dead[0].message
    assert report.safe_for_slab  # warnings do not forfeit the slab proof


def test_w302_never_read():
    p = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("add", (V("v0"), V("v0")), O("o0")),
        ],
        slots=[("s0", "float32")],
    )
    report = analyse_programs([p])
    dead = [f for f in report.findings if f.code == "W302"]
    assert len(dead) == 1
    assert "never read" in dead[0].message


def test_report_serialises():
    p = prog(
        [
            TAInstr("multiply", (V("v0"), V("v0")), S("s0")),
            TAInstr("add", (S("s0"), V("v0")), O("o0")),
        ],
        slots=[("s0", "float32")],
    )
    d = analyse_programs([p]).to_dict()
    assert d["safe_for_slab"] is True
    assert d["total_slots"] == 1 and d["total_colors"] == 1
    assert d["ranges"] == [{"s0": [0, 1]}]
    assert d["findings"] == []


# -- the slab plan on a real operator: pool shrink, bit-identical ----------------


@pytest.fixture
def grid24():
    return Grid(shape=(24, 24), extent=(230.0, 230.0))


def test_slab_plan_shrinks_pool_bit_identically(grid24):
    """Acceptance: the liveness proof licenses slab sharing on the fused
    acoustic operator — one slab per (dtype, color) instead of one buffer
    per (tile shape, dtype, slot) — and results are bit-identical."""
    nt, dt = 6, 1.0
    wf = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)

    op, u, m, src, rec = make_acoustic_operator(grid24, nt=nt)
    ref_u, ref_rec = run_and_capture(
        op, u, rec, nt, dt, NaiveSchedule(), "precomputed", engine="interp"
    )
    got_u, got_rec = run_and_capture(op, u, rec, nt, dt, wf, "precomputed")
    np.testing.assert_array_equal(got_u, ref_u)
    np.testing.assert_array_equal(got_rec, ref_rec)

    # slab mode engaged: every checkout went through a slab, none through
    # the legacy per-(shape, dtype, slot) path
    assert op._pool.slab_count > 0
    assert op._pool.buffer_count == 0
    bound = next(iter(op._sweep_cache.values()))
    assert all(sw._slot_colors is not None for sw in bound)


def test_unproven_program_keeps_legacy_pool(grid24, monkeypatch):
    """With the proof withheld the executor falls back to the conservative
    per-shape pool — more buffers than slabs, same numbers."""
    nt, dt = 6, 1.0
    wf = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)

    monkeypatch.setattr(
        LivenessReport, "safe_for_slab", property(lambda self: False)
    )
    op, u, m, src, rec = make_acoustic_operator(grid24, nt=nt)
    legacy_u, legacy_rec = run_and_capture(op, u, rec, nt, dt, wf, "precomputed")
    assert op._pool.slab_count == 0
    assert op._pool.buffer_count > 0

    monkeypatch.undo()
    op2, u2, m2, src2, rec2 = make_acoustic_operator(grid24, nt=nt)
    slab_u, slab_rec = run_and_capture(op2, u2, rec2, nt, dt, wf, "precomputed")
    # the wavefront's many tile shapes each cost legacy buffers; slabs are
    # bounded by the number of colors — a strict shrink
    assert op2._pool.slab_count < op._pool.buffer_count
    np.testing.assert_array_equal(slab_u, legacy_u)
    np.testing.assert_array_equal(slab_rec, legacy_rec)
