"""Shadow-memory race oracle: certified schedules race-free, counterexamples real."""

import pytest

from repro.core.scheduler import (
    NaiveSchedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
)
from repro.errors import ScheduleLegalityError
from repro.verify import prove_schedule, run_oracle
from ..conftest import make_acoustic_operator

WF = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)


@pytest.mark.parametrize(
    "schedule",
    [NaiveSchedule(), SpatialBlockSchedule(block=(6, 5)), WF],
    ids=["naive", "spatial", "wavefront"],
)
def test_certified_schedules_are_race_free(grid3d, schedule):
    # every static "legal" verdict must be confirmed by the dynamic oracle
    op, *_ = make_acoustic_operator(grid3d)
    assert prove_schedule(op, schedule).check()
    report = run_oracle(op, schedule, time_M=6)
    assert report.ok, report.describe()
    assert report.reads_checked > 0 and report.writes_checked > 0
    assert report.races == [] and report.nraces == 0


def test_oracle_exercises_sparse_paths(grid3d):
    # under the naive schedule the raw off-grid operators run (and are legal):
    # the oracle must check their point accesses too
    op, *_ = make_acoustic_operator(grid3d)
    plain = run_oracle(
        make_acoustic_operator(
            grid3d, src_coords=False, rec_coords=False
        )[0],
        NaiveSchedule(),
        time_M=6,
    )
    full = run_oracle(op, NaiveSchedule(), time_M=6)
    assert full.ok and plain.ok
    assert full.writes_checked > plain.writes_checked  # injections counted
    assert full.reads_checked > plain.reads_checked  # gathers counted


def test_unsafe_offgrid_wavefront_manifests_race(grid3d):
    # the prover's counterexample must be demonstrable: re-enable the
    # deliberately wrong off-grid-injection-in-tiles path and watch it race
    op, *_ = make_acoustic_operator(grid3d)
    with pytest.raises(ScheduleLegalityError) as ei:
        prove_schedule(op, WF, sparse_mode="offgrid")
    ce = ei.value.counterexample
    assert ce.manifest

    report = run_oracle(op, WF, time_M=6, unsafe_offgrid=True)
    assert not report.ok and report.nraces > 0
    # the dynamic races land on the very field the static counterexample names
    assert report.races_on(ce.field)
    kinds = {r.kind for r in report.races}
    # an injection add destroyed by (or landing after) the tiled stencil
    # assignment is a lost update — the Fig. 4b failure mode
    assert kinds == {"lost-update"}
    assert all(r.field == "u" for r in report.races)


def test_unsafe_offgrid_sequential_is_still_race_free(grid3d):
    # the unsafe path is only unsafe *inside tiles*: sequential schedules run
    # the same scatter legally, so the oracle must stay quiet (no false alarms)
    op, *_ = make_acoustic_operator(grid3d)
    report = run_oracle(op, NaiveSchedule(), time_M=6, unsafe_offgrid=True)
    assert report.ok, report.describe()


def test_dodging_placement_unsafe_run_is_clean(grid3d):
    # a source whose support never straddles a tile window (the prover's
    # manifest=False case) produces no dynamic race either — the rejection of
    # the schedule *class* is static, not dynamic
    coords = [[20.0, 20.0, 45.0]]
    op, *_ = make_acoustic_operator(grid3d, src_coords=coords, rec_coords=False)
    from repro.verify import offgrid_counterexample

    ce = offgrid_counterexample(op, WF, op.injections()[0])
    assert not ce.manifest
    report = run_oracle(op, WF, time_M=6, unsafe_offgrid=True)
    assert report.ok, report.describe()


def test_max_records_caps_log_not_count(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    report = run_oracle(op, WF, time_M=6, unsafe_offgrid=True, max_records=1)
    assert len(report.races) == 1
    assert report.nraces > 1  # the total keeps counting past the cap


def test_report_to_dict(grid3d):
    op, *_ = make_acoustic_operator(grid3d)
    report = run_oracle(op, WF, time_M=6)
    d = report.to_dict()
    assert d["ok"] is True and d["races"] == 0
    assert d["schedule"]["kind"] == "wavefront"
    assert d["sparse_mode"] == "precomputed"

    bad = run_oracle(op, WF, time_M=6, unsafe_offgrid=True)
    db = bad.to_dict()
    assert db["ok"] is False and db["races"] == bad.nraces
    assert db["examples"][0]["kind"] == "lost-update"
    assert "lost-update" in bad.races[0].describe()
