"""Tests for raw off-the-grid executors and the negative (violation) cases."""

import numpy as np
import pytest

from repro.dsl import Function, Grid, SparseTimeFunction, TimeFunction
from repro.dsl.symbols import Symbol
from repro.execution.sparse import RawInjection, RawInterpolation, evaluate_point_scale


@pytest.fixture
def setup():
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    src = SparseTimeFunction("src", grid, npoint=1, nt=5,
                             coordinates=np.array([[35.5, 45.5, 55.5]]))
    src.data[:] = np.arange(5)[:, None]
    return grid, u, src


# -- scale evaluation ------------------------------------------------------------
def test_scale_constant(setup):
    grid, u, src = setup
    out = evaluate_point_scale(Symbol("dt") ** 2, np.array([[1, 2, 3]]), grid, dt=2.0)
    np.testing.assert_allclose(out, [4.0])


def test_scale_samples_model_field(setup):
    grid, u, src = setup
    m = Function("m", grid, space_order=2)
    m.data = np.arange(11**3, dtype=np.float32).reshape(11, 11, 11) + 1.0
    expr = Symbol("dt") / m.indexify()
    pts = np.array([[0, 0, 0], [0, 0, 1]])
    out = evaluate_point_scale(expr, pts, grid, dt=3.0)
    np.testing.assert_allclose(out, [3.0 / 1.0, 3.0 / 2.0], rtol=1e-6)


def test_scale_unbound_symbol_raises(setup):
    grid, u, src = setup
    with pytest.raises((ValueError, KeyError)):
        evaluate_point_scale(Symbol("weird"), np.array([[0, 0, 0]]), grid, dt=1.0)


# -- raw injection ------------------------------------------------------------------
def test_raw_injection_weighted_scatter(setup):
    grid, u, src = setup
    inj = RawInjection(src.inject(u, expr=2.0), dt=1.0)
    inj.apply(3)
    buf = u.buffer(4)
    # amplitude src.data[3] = 3, scale 2 -> sum over corners = 6
    assert buf.sum() == pytest.approx(6.0, rel=1e-6)
    assert (buf != 0).sum() == 8


def test_raw_injection_out_of_range(setup):
    grid, u, src = setup
    inj = RawInjection(src.inject(u), dt=1.0)
    inj.apply(-1)
    inj.apply(10)
    assert not u.data_with_halo.any()


def test_raw_injection_rejects_box(setup):
    grid, u, src = setup
    inj = RawInjection(src.inject(u), dt=1.0)
    with pytest.raises(ValueError, match="space-time tile"):
        inj.apply(1, box=((0, 4), (0, 11), (0, 11)))


def test_raw_interpolation_reads_field(setup):
    grid, u, src = setup
    u.buffer(3)[...] = 5.0
    rec = SparseTimeFunction("rec", grid, npoint=2, nt=5,
                             coordinates=np.array([[12.5, 22.5, 32.5], [50.0, 50.0, 50.0]]))
    itp = RawInterpolation(rec.interpolate(u))
    itp.apply(2)  # reads t+1 = 3
    np.testing.assert_allclose(rec.data[3], [5.0, 5.0], rtol=1e-6)
    assert not rec.data[2].any()


def test_raw_interpolation_rejects_box(setup):
    grid, u, src = setup
    rec = SparseTimeFunction("rec", grid, npoint=1, nt=5)
    itp = RawInterpolation(rec.interpolate(u))
    with pytest.raises(ValueError, match="space-time tile"):
        itp.gather(1, box=((0, 4), (0, 11), (0, 11)))


def test_raw_interpolation_row_bounds(setup):
    grid, u, src = setup
    rec = SparseTimeFunction("rec", grid, npoint=1, nt=3)
    itp = RawInterpolation(rec.interpolate(u))
    itp.apply(5)  # row 6 out of range: no crash
    assert not rec.data.any()


def test_injection_scale_folds_spatial_variation(setup):
    """Per-corner model factors: each corner gets its own scale."""
    grid, u, src = setup
    m = Function("m", grid, space_order=2)
    vals = np.ones(grid.shape, dtype=np.float32)
    vals[3, :, :] = 2.0  # base x-plane differs from x+1 plane
    m.data = vals
    inj = RawInjection(src.inject(u, expr=1.0 * m.indexify()), dt=1.0)
    inj.apply(1)
    buf = u.buffer(2)
    lo = float(buf[2 + 3].sum())  # x = 3 plane (halo 2)
    hi = float(buf[2 + 4].sum())
    # source x = 35.5 -> weight 0.45 on the x=3 plane, 0.55 on x=4; the x=3
    # corners additionally carry twice the model factor
    assert lo == pytest.approx(2.0 * (0.45 / 0.55) * hi, rel=1e-4)
