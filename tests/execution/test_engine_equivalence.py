"""Bit-identical equivalence of the three execution engines.

The fused three-address engine, the per-equation compiled kernels and the
tree-walking interpreter must produce *exactly* the same wavefields and
receiver traces — same bits, same dtype — for every physics under every
schedule, with off-the-grid sources and receivers attached.
"""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.propagators import (
    AcousticPropagator,
    ElasticPropagator,
    SeismicModel,
    TTIPropagator,
    layered_velocity,
    point_source,
    receiver_line,
)

SHAPE = (16, 14, 12)
NT = 10


def build(kind, so=4):
    vp = layered_velocity(SHAPE, 1.5, 3.0, 3)
    kwargs = {}
    if kind == "tti":
        kwargs = dict(epsilon=0.12, delta=0.05, theta=0.35, phi=0.4)
    if kind == "elastic":
        kwargs = dict(rho=1.8, vs=vp / 1.8)
    model = SeismicModel(SHAPE, (10.0,) * 3, vp, nbl=4, space_order=so, **kwargs)
    dt = model.critical_dt(kind)
    centre = model.domain_center
    coords = [tuple(c + o for c, o in zip(centre, (3.3, -2.1, 1.7)))]
    src = point_source("src", model.grid, NT + 2, coords, f0=0.02, dt=dt)
    rec = receiver_line("rec", model.grid, NT + 2, npoint=5, depth=25.0)
    cls = {
        "acoustic": AcousticPropagator,
        "tti": TTIPropagator,
        "elastic": ElasticPropagator,
    }[kind]
    return cls(model, space_order=so, source=src, receivers=rec), dt


def state_of(prop):
    return [f.interior(NT).copy() for f in prop.fields]


SCHEDULES = {
    "naive": NaiveSchedule(),
    "spatial": SpatialBlockSchedule(block=(6, 5)),
    "wavefront": WavefrontSchedule(tile=(7, 8), block=(7, 4), height=3),
}


@pytest.mark.parametrize("kind", ["acoustic", "tti", "elastic"])
@pytest.mark.parametrize("sched_name", list(SCHEDULES))
def test_engines_bit_identical(kind, sched_name):
    sched = SCHEDULES[sched_name]
    prop, dt = build(kind)
    rec_ref, _ = prop.forward(nt=NT, dt=dt, schedule=sched, engine="interp")
    ref = state_of(prop)
    assert max(np.abs(f).max() for f in ref) > 0, "must produce a wavefield"

    for engine in ("fused", "kernel"):
        rec_got, _ = prop.forward(nt=NT, dt=dt, schedule=sched, engine=engine)
        got = state_of(prop)
        for f_got, f_ref in zip(got, ref):
            assert f_got.dtype == f_ref.dtype
            np.testing.assert_array_equal(
                f_got, f_ref, err_msg=f"{kind}/{sched_name}/{engine}"
            )
        assert rec_got.dtype == rec_ref.dtype
        np.testing.assert_array_equal(rec_got, rec_ref)


def test_engines_bit_identical_precomputed_sparse_naive():
    """Grid-aligned (precomputed) sparse operators under an untiled schedule,
    so the aligned injection/receiver path is compared across engines too."""
    prop, dt = build("acoustic")
    rec_ref, _ = prop.forward(
        nt=NT, dt=dt, schedule=NaiveSchedule(), sparse_mode="precomputed", engine="interp"
    )
    ref = state_of(prop)
    for engine in ("fused", "kernel"):
        rec_got, _ = prop.forward(
            nt=NT, dt=dt, schedule=NaiveSchedule(), sparse_mode="precomputed", engine=engine
        )
        for f_got, f_ref in zip(state_of(prop), ref):
            np.testing.assert_array_equal(f_got, f_ref)
        np.testing.assert_array_equal(rec_got, rec_ref)


def test_wavefront_step_precompute_ablation_bit_identical():
    """``precompute_steps=False`` (inline-geometry ablation, the seed's cost
    structure) must traverse the exact same steps: same bits out, and the
    operator's cross-apply step-plan cache must stay unused."""
    import dataclasses

    sched = SCHEDULES["wavefront"]
    prop, dt = build("acoustic")
    rec_ref, _ = prop.forward(nt=NT, dt=dt, schedule=sched, engine="fused")
    ref = state_of(prop)
    op = prop.op
    assert op._step_cache, "default path should populate the step cache"
    op._step_cache.clear()
    ablated = dataclasses.replace(sched, precompute_steps=False)
    rec_got, _ = prop.forward(nt=NT, dt=dt, schedule=ablated, engine="fused")
    for f_got, f_ref in zip(state_of(prop), ref):
        np.testing.assert_array_equal(f_got, f_ref)
    np.testing.assert_array_equal(rec_got, rec_ref)
    assert not op._step_cache, "ablated path must not populate the cache"


def test_compiled_false_maps_to_interpreter():
    prop, dt = build("acoustic")
    plan = prop.op.apply(time_M=2, dt=dt, compiled=False)
    assert all(s.engine == "interp" for s in plan.sweeps)
    plan = prop.op.apply(time_M=2, dt=dt)
    assert all(s.engine == "fused" for s in plan.sweeps)


def test_elastic_sweep_shares_divergence_terms():
    """The stress sweep's shared strain combinations are CSE'd: the fused
    elastic kernel evaluates fewer instructions than the sum of its
    per-equation renderings would."""
    prop, dt = build("elastic")
    plan = prop.op.apply(time_M=1, dt=dt)
    stress = max(plan.sweeps, key=len)
    assert len(stress) > 1
    assert stress._kernel.__ntemps__ > 0
