"""Tests for vectorised box evaluation of bound equations."""

import numpy as np
import pytest

from repro.dsl import Eq, Function, Grid, TimeFunction
from repro.dsl.symbols import Number, Symbol
from repro.execution.evalbox import (
    BoundEq,
    bind_equations,
    box_is_empty,
    clip_box,
    full_box,
)


@pytest.fixture
def grid():
    return Grid(shape=(10, 9, 8))


def test_full_box(grid):
    assert full_box(grid) == ((0, 10), (0, 9), (0, 8))


def test_clip_box(grid):
    assert clip_box(((-3, 20), (2, 5), (0, 8)), grid) == ((0, 10), (2, 5), (0, 8))


def test_box_is_empty():
    assert box_is_empty(((3, 3), (0, 5)))
    assert box_is_empty(((5, 3), (0, 5)))
    assert not box_is_empty(((0, 1), (0, 1)))


def test_bound_eq_rejects_unbound_symbols(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    eq = Eq(u.forward, u.indexify() * Symbol("dt"))
    with pytest.raises(ValueError, match="dt"):
        BoundEq(eq, grid)


def test_copy_equation_on_box(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    rng = np.random.default_rng(0)
    u.interior(0)[...] = rng.normal(size=grid.shape).astype(np.float32)
    beq = BoundEq(Eq(u.forward, u.indexify() * 2), grid)
    box = ((2, 5), (1, 4), (0, 8))
    beq.evaluate(0, box)
    got = u.interior(1)
    ref = np.zeros(grid.shape, dtype=np.float32)
    ref[2:5, 1:4, :] = 2 * u.interior(0)[2:5, 1:4, :]
    np.testing.assert_array_equal(got, ref)


def test_shifted_access_reads_halo(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    x = grid.dimension("x")
    eq = Eq(u.forward, u.indexify().shift(x, 1))
    beq = BoundEq(eq, grid)
    u.interior(0)[...] = np.arange(10, dtype=np.float32)[:, None, None]
    beq.evaluate(0, full_box(grid))
    # last row reads the zero halo
    assert (u.interior(1)[-1] == 0).all()
    assert (u.interior(1)[0] == 1).all()


def test_empty_box_is_noop(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    beq = BoundEq(Eq(u.forward, u.indexify() + 1), grid)
    beq.evaluate(0, ((3, 3), (0, 9), (0, 8)))
    assert not u.interior(1).any()


def test_model_field_access(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    f = Function("f", grid, space_order=2)
    f.data = 3.0
    beq = BoundEq(Eq(u.forward, f.indexify()), grid)
    beq.evaluate(5, full_box(grid))
    assert (u.interior(6) == 3.0).all()


def test_circular_time_indexing(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    beq = BoundEq(Eq(u.forward, u.indexify() + 1), grid)
    for t in range(5):
        beq.evaluate(t, full_box(grid))
    assert (u.interior(5) == 5).all()


def test_scalar_rhs_broadcasts(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    beq = BoundEq(Eq(u.forward, Number(7)), grid)
    beq.evaluate(0, full_box(grid))
    assert (u.interior(1) == 7).all()


def test_bind_equations_list(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    eqs = bind_equations([Eq(u.forward, u.indexify())], grid)
    assert len(eqs) == 1 and isinstance(eqs[0], BoundEq)


def test_float32_preserved(grid):
    u = TimeFunction("u", grid, time_order=1, space_order=2)
    beq = BoundEq(Eq(u.forward, u.indexify() * 0.3333333), grid)
    beq.evaluate(0, full_box(grid))
    assert u.interior(1).dtype == np.float32
