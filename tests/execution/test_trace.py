"""Tests for the pencil-granularity trace generator and cache-sim coupling."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.execution.trace import (
    ChunkAddresser,
    TraceGeometry,
    schedule_trace,
    simulate_schedule,
)
from repro.machine import KernelSpec

from ..conftest import make_acoustic_operator


@pytest.fixture(scope="module")
def acoustic_spec():
    from repro.dsl import Grid

    grid = Grid(shape=(10, 10, 10))
    op, *_ = make_acoustic_operator(grid, so=4, src_coords=False, rec_coords=False)
    return KernelSpec.from_operator(op)


def test_addresser_distinct_chunks(acoustic_spec):
    geom = TraceGeometry(6, 6, 16)
    addr = ChunkAddresser(acoustic_spec, geom)
    sweep = acoustic_spec.sweeps[0]
    u0 = [s for s in sweep.reads if s.name == "u@0"][0]
    um1 = [s for s in sweep.reads if s.name == "u@-1"][0]
    # different buffers -> different chunk ids
    assert addr.pencil(u0, 0, 1, 1) != addr.pencil(um1, 0, 1, 1)
    # circular reuse: u@0 at t and u@-1 at t+1 share the physical buffer
    assert addr.pencil(u0, 5, 2, 3) == addr.pencil(um1, 6, 2, 3)
    # model fields single buffer
    m = [s for s in sweep.reads if s.name == "m"][0]
    assert addr.pencil(m, 0, 1, 1) == addr.pencil(m, 9, 1, 1)


def test_trace_length_naive(acoustic_spec):
    geom = TraceGeometry(5, 5, 8)
    trace = list(schedule_trace(acoustic_spec, geom, NaiveSchedule(), 0, 2))
    sweep = acoustic_spec.sweeps[0]
    r = max(s.radius for s in sweep.reads)
    per_row = sum(1 if s.radius == 0 else 4 * s.radius + 1 for s in sweep.reads) + sweep.writes
    assert len(trace) == 2 * 25 * per_row


def test_wavefront_trace_covers_same_rows(acoustic_spec):
    """Wavefront and naive traces touch exactly the same chunk multiset size
    per (row, sweep) — no point is skipped or duplicated."""
    geom = TraceGeometry(8, 8, 8)
    naive = list(schedule_trace(acoustic_spec, geom, NaiveSchedule(), 0, 4))
    wf = list(
        schedule_trace(
            acoustic_spec, geom,
            WavefrontSchedule(tile=(4, 4), block=(4, 4), height=2), 0, 4,
        )
    )
    assert len(naive) == len(wf)
    # identical multisets (ordering differs, content does not)
    assert sorted(naive) == sorted(wf)


def test_simulate_schedule_stats(acoustic_spec):
    geom = TraceGeometry(12, 12, 16)
    chunk = 16 * 4
    stats = simulate_schedule(
        acoustic_spec, geom, SpatialBlockSchedule(block=(4, 4)), 3,
        [("L1", 8 * chunk), ("L2", 64 * chunk)],
    )
    assert stats.accesses > 0
    assert stats.memory_fetches > 0
    assert stats.traffic_bytes("memory") == stats.memory_fetches * chunk
    assert 0 < stats.miss_ratio() < 1


def test_wavefront_cuts_memory_fetches(acoustic_spec):
    """The headline mechanism at simulator level."""
    geom = TraceGeometry(24, 24, 16)
    chunk = 16 * 4
    levels = [("L1", 16 * chunk), ("L2", 700 * chunk)]
    sp = simulate_schedule(acoustic_spec, geom, SpatialBlockSchedule(block=(8, 8)),
                           6, levels, warmup_steps=2)
    wf = simulate_schedule(
        acoustic_spec, geom, WavefrontSchedule(tile=(12, 12), block=(6, 6), height=3),
        6, levels, warmup_steps=2,
    )
    assert wf.memory_fetches < sp.memory_fetches * 0.8


def test_warmup_resets_counters(acoustic_spec):
    geom = TraceGeometry(6, 6, 8)
    chunk = 8 * 4
    cold = simulate_schedule(acoustic_spec, geom, NaiveSchedule(), 2,
                             [("L2", 500 * chunk)])
    warm = simulate_schedule(acoustic_spec, geom, NaiveSchedule(), 2,
                             [("L2", 500 * chunk)], warmup_steps=2)
    assert warm.memory_fetches < cold.memory_fetches  # compulsory misses gone


def test_trace_rejects_unknown_schedule(acoustic_spec):
    geom = TraceGeometry(4, 4, 4)
    with pytest.raises(TypeError):
        list(schedule_trace(acoustic_spec, geom, object(), 0, 1))
