"""The central correctness matrix: every schedule produces identical results.

This is the executable form of the paper's legality claim (§II): after
precomputing the sparse off-the-grid operators, wave-front temporal blocking
computes exactly what naive time-stepping computes — for single- and
multi-sweep kernels, any space order, any tile/block/height shape, with
sources and receivers anywhere (including on tile boundaries).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.dsl import Eq, Function, Grid, SparseTimeFunction, TimeFunction, solve
from repro.ir import Operator

from ..conftest import make_acoustic_operator, run_and_capture

DT = 1.0
NT = 9


SCHEDULES = [
    ("spatial-4x4", SpatialBlockSchedule(block=(4, 4)), "offgrid"),
    ("spatial-5x3", SpatialBlockSchedule(block=(5, 3)), "offgrid"),
    ("naive-precomputed", NaiveSchedule(), "precomputed"),
    ("wtb-4x4-h2", WavefrontSchedule(tile=(4, 4), block=(2, 2), height=2), "auto"),
    ("wtb-5x7-h3", WavefrontSchedule(tile=(5, 7), block=(5, 7), height=3), "auto"),
    ("wtb-6x6-h9", WavefrontSchedule(tile=(6, 6), block=(3, 3), height=9), "auto"),
    ("wtb-h1", WavefrontSchedule(tile=(8, 8), block=(4, 4), height=1), "auto"),
]


@pytest.mark.parametrize("so", [2, 4, 8])
@pytest.mark.parametrize("name,schedule,mode", SCHEDULES)
def test_acoustic_3d_schedule_equivalence(grid3d, so, name, schedule, mode):
    op, u, m, src, rec = make_acoustic_operator(grid3d, so=so, nt=NT)
    ref_u, ref_rec = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), "offgrid")
    got_u, got_rec = run_and_capture(op, u, rec, NT, DT, schedule, mode)
    np.testing.assert_array_equal(got_u, ref_u, err_msg=f"{name} so={so}")
    np.testing.assert_array_equal(got_rec, ref_rec, err_msg=f"{name} so={so}")


def test_source_on_tile_boundary(grid3d):
    """The paper's hard case: a source sitting exactly between space tiles."""
    # grid spacing is 10; tile=(4,4) puts boundaries at x=40,80: put the
    # source support astride x index 4
    op, u, m, src, rec = make_acoustic_operator(
        grid3d, nt=NT, src_coords=[[39.9, 45.0, 45.0], [40.1, 45.0, 45.0]]
    )
    # the two sources share support corners: the decomposed path pre-sums
    # their contributions (in float64), so it matches the raw off-grid path
    # only to float32 accumulation order...
    raw = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), "offgrid")
    ref = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), "precomputed")
    got = run_and_capture(
        op, u, rec, NT, DT, WavefrontSchedule(tile=(4, 4), block=(2, 2), height=4)
    )
    # ...but WTB must equal the precomputed reference bit-for-bit
    np.testing.assert_array_equal(got[0], ref[0])
    np.testing.assert_array_equal(got[1], ref[1])
    scale = max(np.abs(raw[0]).max(), 1e-30)
    np.testing.assert_allclose(got[0], raw[0], rtol=1e-4, atol=1e-5 * scale)


def test_receiver_on_tile_boundary(grid3d):
    op, u, m, src, rec = make_acoustic_operator(
        grid3d, nt=NT, rec_coords=[[40.0, 40.0, 40.0], [39.95, 44.0, 44.0]]
    )
    ref = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), "offgrid")
    got = run_and_capture(
        op, u, rec, NT, DT, WavefrontSchedule(tile=(4, 4), block=(4, 4), height=3)
    )
    np.testing.assert_array_equal(got[1], ref[1])


def test_2d_equivalence(grid2d):
    op, u, m, src, rec = make_acoustic_operator(grid2d, so=4, nt=NT)
    ref = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), "offgrid")
    got = run_and_capture(
        op, u, rec, NT, DT, WavefrontSchedule(tile=(5, 4), block=(5, 4), height=4)
    )
    np.testing.assert_array_equal(got[0], ref[0])
    np.testing.assert_array_equal(got[1], ref[1])


def test_1d_equivalence(grid1d):
    op, u, m, src, rec = make_acoustic_operator(grid1d, so=4, nt=NT)
    ref = run_and_capture(op, u, rec, NT, DT, NaiveSchedule(), "offgrid")
    got = run_and_capture(
        op, u, rec, NT, DT, WavefrontSchedule(tile=(6,), block=(3,), height=5)
    )
    np.testing.assert_array_equal(got[0], ref[0])


def test_multi_sweep_coupled_system(grid3d):
    """A two-sweep coupled kernel (the elastic/TTI pattern, Fig. 8b)."""
    g = grid3d
    a = TimeFunction("a", g, time_order=1, space_order=4)
    b = TimeFunction("b", g, time_order=1, space_order=4)
    from repro.dsl.symbols import Indexed

    def fwd(expr):
        return expr.subs({ix: ix.shift(g.stepping_dim, 1) for ix in expr.atoms(Indexed)})

    eq_a = Eq(a.forward, a.indexify() + 0.1 * b.dx2)
    eq_b = Eq(b.forward, b.indexify() + 0.1 * fwd(a.dx2))
    op = Operator([eq_a, eq_b])
    assert len(op.sweeps) == 2

    init = np.random.default_rng(3).normal(size=g.shape).astype(np.float32)

    def run(schedule):
        a.data_with_halo[...] = 0
        b.data_with_halo[...] = 0
        a.interior(0)[...] = init
        b.interior(0)[...] = 1.0
        op.apply(time_M=6, dt=DT, schedule=schedule)
        return a.interior(6).copy(), b.interior(6).copy()

    ref = run(NaiveSchedule())
    got = run(WavefrontSchedule(tile=(5, 5), block=(5, 5), height=3))
    np.testing.assert_array_equal(got[0], ref[0])
    np.testing.assert_array_equal(got[1], ref[1])


@given(
    tile=st.tuples(st.integers(2, 9), st.integers(2, 9)),
    height=st.integers(1, 8),
    so=st.sampled_from([2, 4]),
)
@settings(max_examples=20, deadline=None)
def test_property_any_tile_shape_is_exact(tile, height, so):
    """Hypothesis: arbitrary tile shapes and heights never change results."""
    grid = Grid(shape=(11, 10, 9), extent=(100.0, 90.0, 80.0))
    op, u, m, src, rec = make_acoustic_operator(grid, so=so, nt=6, seed=11)
    ref = run_and_capture(op, u, rec, 6, DT, NaiveSchedule(), "offgrid")
    got = run_and_capture(
        op, u, rec, 6, DT,
        WavefrontSchedule(tile=tile, block=tile, height=height),
    )
    np.testing.assert_array_equal(got[0], ref[0])
    np.testing.assert_array_equal(got[1], ref[1])


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_property_random_source_positions(data):
    """Hypothesis: sources anywhere in the domain, any tile shape: exact."""
    grid = Grid(shape=(10, 10, 10), extent=(90.0, 90.0, 90.0))
    n = data.draw(st.integers(1, 4))
    coords = data.draw(
        st.lists(st.tuples(*([st.floats(0, 90, allow_nan=False)] * 3)),
                 min_size=n, max_size=n)
    )
    tile = data.draw(st.tuples(st.integers(3, 8), st.integers(3, 8)))
    op, u, m, src, rec = make_acoustic_operator(grid, nt=6, src_coords=list(coords))
    # random sources may share support corners: compare against the
    # precomputed naive reference (identical accumulation), which is itself
    # checked against the raw path elsewhere
    ref = run_and_capture(op, u, rec, 6, DT, NaiveSchedule(), "precomputed")
    got = run_and_capture(
        op, u, rec, 6, DT, WavefrontSchedule(tile=tile, block=tile, height=4)
    )
    np.testing.assert_array_equal(got[0], ref[0])
