"""Unit tests for Fornberg finite-difference weight generation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil.coefficients import (
    central_offsets,
    central_weights,
    fornberg_weights,
    second_derivative_weights,
    staggered_weights,
    stencil_radius,
)


# -- known closed-form weights ----------------------------------------------------
def test_second_order_second_derivative():
    offs, w = central_weights(2, 2)
    assert offs == (-1, 0, 1)
    np.testing.assert_allclose(w, [1.0, -2.0, 1.0])


def test_second_order_first_derivative():
    offs, w = central_weights(1, 2)
    np.testing.assert_allclose(w, [-0.5, 0.0, 0.5])


def test_fourth_order_second_derivative():
    _, w = central_weights(2, 4)
    np.testing.assert_allclose(w, [-1 / 12, 4 / 3, -5 / 2, 4 / 3, -1 / 12], rtol=1e-12)


def test_interpolation_weights_deriv0():
    w = fornberg_weights(0, [0, 1], 0.5)
    np.testing.assert_allclose(w, [0.5, 0.5])


def test_staggered_second_order():
    offs, w = staggered_weights(1, 2, side=1)
    assert offs == (0, 1)
    np.testing.assert_allclose(w, [-1.0, 1.0])
    offs, w = staggered_weights(1, 2, side=-1)
    assert offs == (-1, 0)
    np.testing.assert_allclose(w, [-1.0, 1.0])


def test_staggered_fourth_order_antisymmetry():
    _, wp = staggered_weights(1, 4, side=1)
    _, wm = staggered_weights(1, 4, side=-1)
    np.testing.assert_allclose(wp, wm, rtol=1e-12)  # same weights, shifted nodes


# -- algebraic properties -----------------------------------------------------------
@pytest.mark.parametrize("so", [2, 4, 8, 12])
def test_second_derivative_weights_sum_zero(so):
    _, w = second_derivative_weights(so)
    assert sum(w) == pytest.approx(0.0, abs=1e-10)


@pytest.mark.parametrize("so", [2, 4, 8, 12])
def test_second_derivative_weights_symmetric(so):
    _, w = central_weights(2, so)
    np.testing.assert_allclose(w, w[::-1], rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("so", [2, 4, 8])
def test_first_derivative_weights_antisymmetric(so):
    _, w = central_weights(1, so)
    np.testing.assert_allclose(w, [-x for x in w[::-1]], rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("deriv,so", [(1, 4), (2, 4), (1, 8), (2, 8)])
def test_polynomial_exactness(deriv, so):
    """Order-so weights differentiate polynomials up to degree so+deriv-1 exactly."""
    offs, w = central_weights(deriv, so)
    for degree in range(so + deriv):
        vals = np.array([float(o) ** degree for o in offs])
        got = float(np.dot(w, vals))
        if degree == deriv:
            expected = float(math.factorial(deriv))
        else:
            expected = 0.0
        assert got == pytest.approx(expected, abs=1e-7), (degree, deriv, so)


@pytest.mark.parametrize("so", [4, 8])
def test_convergence_order(so):
    """Error of the so-order second derivative scales like h^so."""
    errs = []
    # larger steps for higher orders keep the error above round-off
    hs = (0.1, 0.05) if so == 4 else (0.5, 0.25)
    for h in hs:
        offs, w = central_weights(2, so)
        x0 = 0.7
        approx = sum(wi * np.sin(x0 + o * h) for o, wi in zip(offs, w)) / h**2
        errs.append(abs(approx - (-np.sin(x0))))
    order = np.log(errs[0] / errs[1]) / np.log(hs[0] / hs[1])
    assert order == pytest.approx(so, abs=1.0)


# -- validation ------------------------------------------------------------------------
def test_invalid_orders():
    for bad in (1, 3, 0, -2):
        with pytest.raises(ValueError):
            central_offsets(bad)
        with pytest.raises(ValueError):
            stencil_radius(bad)
    with pytest.raises(ValueError):
        staggered_weights(1, 4, side=2)
    with pytest.raises(ValueError):
        fornberg_weights(-1, [0, 1])
    with pytest.raises(ValueError):
        fornberg_weights(2, [0, 1])  # too few nodes
    with pytest.raises(ValueError):
        fornberg_weights(1, [0, 0, 1])  # duplicate nodes


def test_stencil_radius():
    assert stencil_radius(4) == 2
    assert stencil_radius(12) == 6


@given(so=st.sampled_from([2, 4, 6, 8, 10, 12]), deriv=st.integers(1, 2))
@settings(max_examples=30, deadline=None)
def test_weights_cached_and_consistent(so, deriv):
    a = central_weights(deriv, so)
    b = central_weights(deriv, so)
    assert a is b  # lru_cache
    assert len(a[0]) == so + 1
