"""Tests for affected-point discovery (Listing 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.precompute import (
    affected_points,
    affected_points_analytic,
    affected_points_by_injection,
)
from repro.dsl import Grid, SparseTimeFunction


def make_sparse(coords, grid=None, nt=4, data=None):
    grid = grid or Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    s = SparseTimeFunction("s", grid, npoint=len(coords), nt=nt,
                           coordinates=np.asarray(coords, dtype=float))
    if data is not None:
        s.data[:] = data
    else:
        s.data[:] = 1.0
    return s


def test_single_offgrid_source_touches_8_points():
    s = make_sparse([[35.5, 45.5, 55.5]])
    pts = affected_points_analytic(s)
    assert pts.shape == (8, 3)


def test_on_grid_source_touches_1_point():
    s = make_sparse([[30.0, 40.0, 50.0]])
    pts = affected_points_analytic(s)
    assert pts.shape == (1, 3)
    np.testing.assert_array_equal(pts, [[3, 4, 5]])


def test_face_aligned_source_touches_4_points():
    s = make_sparse([[30.0, 40.0, 55.5]])  # off-grid in z only... 2 points
    assert affected_points_analytic(s).shape == (2, 3)
    s = make_sparse([[30.0, 42.5, 55.5]])  # off-grid in y and z
    assert affected_points_analytic(s).shape == (4, 3)


def test_overlapping_sources_deduplicated():
    s = make_sparse([[35.5, 45.5, 55.5], [35.5, 45.5, 55.5]])
    assert affected_points_analytic(s).shape == (8, 3)


def test_canonical_ordering():
    s = make_sparse([[85.5, 15.5, 55.5], [15.5, 85.5, 5.5]])
    pts = affected_points_analytic(s)
    assert np.array_equal(pts, np.unique(pts, axis=0))


def test_injection_method_matches_analytic():
    coords = [[35.5, 45.5, 55.5], [10.0, 20.0, 30.0], [99.9, 99.9, 0.1]]
    s = make_sparse(coords)
    np.testing.assert_array_equal(
        affected_points_by_injection(s), affected_points_analytic(s)
    )


def test_injection_method_with_zero_opening_wavelet():
    """Listing 2's probe falls back to unit amplitudes when the wavelet opens
    with zeros, so no affected point is missed."""
    s = make_sparse([[35.5, 45.5, 55.5]])
    s.data[:] = 0.0
    np.testing.assert_array_equal(
        affected_points_by_injection(s), affected_points_analytic(s)
    )


def test_opposite_sign_probes_cannot_cancel():
    """Two sources of opposite amplitude on the same cell must still register."""
    s = make_sparse([[35.5, 45.5, 55.5], [35.5, 45.5, 55.5]],
                    data=np.array([[1.0, -1.0]] * 4))
    assert affected_points_by_injection(s).shape == (8, 3)


def test_dispatch():
    s = make_sparse([[35.5, 45.5, 55.5]])
    assert affected_points(s, "analytic").shape == (8, 3)
    assert affected_points(s, "by_injection").shape == (8, 3)
    with pytest.raises(ValueError):
        affected_points(s, "nope")


def test_boundary_source_stays_in_grid():
    s = make_sparse([[100.0, 100.0, 100.0]])
    pts = affected_points_analytic(s)
    assert pts.max() <= 10
    assert pts.shape == (1, 3)  # exact corner: single point


coords_strategy = st.lists(
    st.tuples(*([st.floats(0, 100, allow_nan=False)] * 3)), min_size=1, max_size=6
)


@given(coords=coords_strategy)
@settings(max_examples=40, deadline=None)
def test_property_methods_agree(coords):
    s = make_sparse(list(coords))
    np.testing.assert_array_equal(
        affected_points_by_injection(s), affected_points_analytic(s)
    )


@given(coords=coords_strategy)
@settings(max_examples=40, deadline=None)
def test_property_counts_bounded(coords):
    s = make_sparse(list(coords))
    pts = affected_points_analytic(s)
    assert 1 <= len(pts) <= 8 * len(coords)
