"""Tests for the explicit TemporalBlockingPipeline."""

import numpy as np
import pytest

from repro.core import NaiveSchedule, TemporalBlockingPipeline, WavefrontSchedule

from ..conftest import make_acoustic_operator, run_and_capture


@pytest.fixture
def setup(grid3d):
    return make_acoustic_operator(grid3d, nt=8)


def test_precompute_populates_artifacts(setup):
    op, u, m, src, rec = setup
    pipe = TemporalBlockingPipeline(op, dt=1.0).precompute()
    assert set(pipe.masks) == {"src", "rec"}
    assert len(pipe.sources) == 1 and len(pipe.receivers) == 1
    assert pipe.sources[id(op.injections()[0])].npts >= 1


def test_report_contents(setup):
    op, *_ = setup
    pipe = TemporalBlockingPipeline(op, dt=1.0).precompute()
    rep = pipe.report()
    assert rep.nsources == 1 and rep.nreceivers == 1
    assert rep.affected_points > 0
    assert 0 < rep.density < 1
    assert rep.aux_bytes > 0
    assert rep.wavefront_angle == 2
    text = rep.render()
    assert "affected points" in text and "wavefront angle" in text


def test_report_requires_precompute(setup):
    op, *_ = setup
    with pytest.raises(RuntimeError):
        TemporalBlockingPipeline(op, dt=1.0).report()


def test_run_matches_operator_path(setup):
    op, u, m, src, rec = setup
    sched = WavefrontSchedule(tile=(5, 5), block=(5, 5), height=4)
    ref = run_and_capture(op, u, rec, 8, 1.0, NaiveSchedule(), "precomputed")

    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    pipe = TemporalBlockingPipeline(op, dt=1.0)
    pipe.run(time_M=8, schedule=sched)
    np.testing.assert_array_equal(u.interior(8), ref[0])
    np.testing.assert_array_equal(rec.data, ref[1])


def test_pipeline_primes_operator_cache(setup):
    op, u, m, src, rec = setup
    pipe = TemporalBlockingPipeline(op, dt=1.0).precompute()
    inj = op.injections()[0]
    # the operator must reuse the pipeline's decomposition, not rebuild
    assert op._decomp_cache[(id(inj), 1.0)] is pipe.sources[id(inj)]


def test_run_without_explicit_precompute(setup):
    op, u, m, src, rec = setup
    pipe = TemporalBlockingPipeline(op, dt=1.0)
    pipe.run(time_M=4)  # auto-precomputes
    assert pipe._done
