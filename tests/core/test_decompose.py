"""Tests for wavefield decomposition (Listing 3) and receiver grid-alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_masks, decompose_receiver, decompose_source
from repro.dsl import Function, Grid, SparseTimeFunction, TimeFunction


@pytest.fixture
def setup():
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    u = TimeFunction("u", grid, time_order=2, space_order=4)
    m = Function("m", grid, space_order=4)
    m.data = 0.44
    return grid, u, m


def make_src(grid, coords, nt=6, seed=3):
    rng = np.random.default_rng(seed)
    s = SparseTimeFunction("src", grid, npoint=len(coords), nt=nt,
                           coordinates=np.asarray(coords, dtype=float))
    s.data[:] = rng.normal(size=(nt, len(coords))).astype(np.float32)
    return s


def test_dcmp_shape_and_field(setup):
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5]])
    d = decompose_source(src.inject(u, expr=2.0), dt=1.0)
    assert d.data.shape == (6, 8)
    assert d.field_name == "u"
    assert d.time_offset == 1
    assert d.npts == 8


def test_amplitude_conservation(setup):
    """Partition of unity: sum over decomposed points == scale * wavelet."""
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5], [71.2, 33.3, 18.4]])
    d = decompose_source(src.inject(u, expr=3.0), dt=1.0)
    np.testing.assert_allclose(
        d.data.sum(axis=1), 3.0 * src.data.sum(axis=1), rtol=1e-5
    )


def test_scale_expression_with_model_field(setup):
    grid, u, m = setup
    dt_sym = grid.stepping_dim.spacing
    src = make_src(grid, [[30.0, 40.0, 50.0]])  # exactly on grid: 1 point
    d = decompose_source(src.inject(u, expr=dt_sym**2 / m), dt=2.0)
    expected = src.data[:, 0] * (4.0 / 0.44)
    np.testing.assert_allclose(d.data[:, 0], expected, rtol=1e-5)


def test_shared_support_accumulates(setup):
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5], [35.5, 45.5, 55.5]])
    d = decompose_source(src.inject(u, expr=1.0), dt=1.0)
    assert d.npts == 8  # shared support
    np.testing.assert_allclose(d.data.sum(axis=1), src.data.sum(axis=1), rtol=1e-5)


def test_masks_can_be_supplied(setup):
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5]])
    masks = build_masks(src)
    d = decompose_source(src.inject(u), dt=1.0, masks=masks)
    assert d.masks is masks


def test_receiver_decomposition_weights(setup):
    grid, u, m = setup
    rec = make_src(grid, [[35.5, 45.5, 55.5], [10.0, 20.0, 30.0]])
    d = decompose_receiver(rec.interpolate(u))
    assert d.weights.shape == (2, d.npts)
    # rows sum to 1 (partition of unity for the gather)
    np.testing.assert_allclose(np.asarray(d.weights.sum(axis=1)).ravel(), 1.0, rtol=1e-12)


def test_receiver_reconstruction_matches_direct_gather(setup):
    """W @ gather(points) == direct off-grid interpolation."""
    grid, u, m = setup
    rng = np.random.default_rng(5)
    field = rng.normal(size=grid.shape)
    rec = make_src(grid, [[33.3, 44.4, 55.5], [60.1, 20.2, 80.3]])
    d = decompose_receiver(rec.interpolate(u))
    gathered = field[tuple(d.masks.points[:, k] for k in range(3))]
    got = d.weights.dot(gathered)

    from repro.dsl.interpolation import support_points

    idx, w = support_points(rec.coordinates, grid)
    direct = (field[tuple(idx[..., k] for k in range(3))] * w).sum(axis=1)
    np.testing.assert_allclose(got, direct, rtol=1e-12)


def test_decomposed_matches_raw_injection(setup):
    """One naive step with the grid-aligned path == raw off-grid path."""
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5], [62.3, 71.9, 12.8]])
    dt_sym = grid.stepping_dim.spacing
    inj = src.inject(u, expr=dt_sym**2 / m)

    from repro.core.aligned import AlignedInjection
    from repro.execution.sparse import RawInjection

    raw = RawInjection(inj, dt=1.5)
    raw.apply(2)
    raw_result = u.buffer(3).copy()

    u.data_with_halo[...] = 0.0
    aligned = AlignedInjection(decompose_source(inj, dt=1.5), u)
    aligned.apply(2)
    np.testing.assert_allclose(u.buffer(3), raw_result, rtol=1e-5, atol=1e-7)


def test_scale_rejects_time_fields(setup):
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5]])
    with pytest.raises(TypeError):
        decompose_source(src.inject(u, expr=u.indexify()), dt=1.0)


def test_scale_rejects_shifted_access(setup):
    grid, u, m = setup
    src = make_src(grid, [[35.5, 45.5, 55.5]])
    shifted = m.indexify().shift(grid.dimension("x"), 1)
    with pytest.raises(ValueError, match="centred"):
        decompose_source(src.inject(u, expr=shifted), dt=1.0)


@given(
    coords=st.lists(st.tuples(*([st.floats(0, 100, allow_nan=False)] * 3)),
                    min_size=1, max_size=5),
    scale=st.floats(0.1, 10.0),
)
@settings(max_examples=30, deadline=None)
def test_property_conservation(coords, scale):
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    src = make_src(grid, list(coords))
    d = decompose_source(src.inject(u, expr=float(scale)), dt=1.0)
    np.testing.assert_allclose(
        d.data.sum(axis=1), scale * src.data.sum(axis=1), rtol=1e-4, atol=1e-5
    )
