"""Tests for schedule descriptions and tile/lag arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    NaiveSchedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    instance_lags,
    tile_origins,
    time_tiles,
)


# -- validation ------------------------------------------------------------------
def test_spatial_block_validation():
    with pytest.raises(ValueError):
        SpatialBlockSchedule(block=(0, 8))
    with pytest.raises(ValueError):
        SpatialBlockSchedule(block=())
    assert SpatialBlockSchedule(block=(4,)).block == (4,)


def test_wavefront_validation():
    with pytest.raises(ValueError):
        WavefrontSchedule(tile=(0, 8))
    with pytest.raises(ValueError):
        WavefrontSchedule(tile=(8, 8), block=(4,))
    with pytest.raises(ValueError):
        WavefrontSchedule(tile=(8, 8), block=(0, 4))
    with pytest.raises(ValueError):
        WavefrontSchedule(height=0)
    assert WavefrontSchedule(tile=(8,), block=(4,), height=1).height == 1


def test_schedules_are_frozen():
    s = WavefrontSchedule()
    with pytest.raises(Exception):
        s.height = 5


def test_schedule_kinds():
    assert NaiveSchedule().kind == "naive"
    assert SpatialBlockSchedule().kind == "spatial"
    assert WavefrontSchedule().kind == "wavefront"


# -- time tiles ------------------------------------------------------------------------
def test_time_tiles_cover_range():
    tiles = list(time_tiles(0, 10, 4))
    assert tiles == [(0, 4), (4, 8), (8, 10)]


def test_time_tiles_exact_division():
    assert list(time_tiles(2, 8, 3)) == [(2, 5), (5, 8)]


def test_time_tiles_invalid_height():
    with pytest.raises(ValueError):
        list(time_tiles(0, 4, 0))


@given(m=st.integers(0, 20), n=st.integers(1, 30), h=st.integers(1, 10))
@settings(max_examples=50, deadline=None)
def test_time_tiles_partition(m, n, h):
    tiles = list(time_tiles(m, m + n, h))
    # contiguous, ordered, covering exactly [m, m+n)
    assert tiles[0][0] == m and tiles[-1][1] == m + n
    for (a0, a1), (b0, b1) in zip(tiles, tiles[1:]):
        assert a1 == b0
    assert all(1 <= t1 - t0 <= h for t0, t1 in tiles)


# -- tile origins ----------------------------------------------------------------------
def test_tile_origins_lexicographic():
    origins = list(tile_origins((8, 8), (4, 4), max_lag=2))
    assert origins == sorted(origins)
    assert origins[0] == (0, 0)
    # covers the skewed extent [0, 8+2)
    assert max(o[0] for o in origins) >= 8


def test_tile_origins_1d():
    assert list(tile_origins((10,), (5,), 0)) == [(0,), (5,)]


# -- instance lags -------------------------------------------------------------------------
def test_instance_lags_single_radius():
    assert instance_lags((2,), 3) == [0, 2, 4]


def test_instance_lags_multi_sweep():
    assert instance_lags((2, 4), 2) == [0, 4, 6, 10]


def test_instance_lags_validation():
    with pytest.raises(ValueError):
        instance_lags((2,), 0)
    with pytest.raises(ValueError):
        instance_lags((), 2)


@given(
    radii=st.lists(st.integers(0, 5), min_size=1, max_size=4).map(tuple),
    h=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_lag_safety_property(radii, h):
    """The legality invariant: for any instance A and earlier instance B,
    L[A] - L[B] >= radius(A) — every read of older data is covered."""
    lags = instance_lags(radii, h)
    k = len(radii)
    for ia in range(1, len(lags)):
        ra = radii[ia % k]
        for ib in range(ia):
            assert lags[ia] - lags[ib] >= ra


@given(
    radii=st.lists(st.integers(0, 5), min_size=1, max_size=4).map(tuple),
    h=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_lags_monotone_and_bounded(radii, h):
    lags = instance_lags(radii, h)
    assert lags == sorted(lags)
    assert lags[-1] == sum(radii) * h - radii[0]
