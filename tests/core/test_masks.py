"""Tests for the SM/SID/nnz/Sp_SID mask structures (Figs. 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_masks
from repro.dsl import Grid, SparseTimeFunction


def make_sparse(coords, shape=(11, 11, 11)):
    grid = Grid(shape=shape, extent=tuple(10.0 * (s - 1) for s in shape))
    s = SparseTimeFunction("s", grid, npoint=len(coords), nt=3,
                           coordinates=np.asarray(coords, dtype=float))
    s.data[:] = 1.0
    return s


def test_sm_matches_points():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    assert masks.sm.sum() == masks.npts == 8
    idx = tuple(masks.points[:, d] for d in range(3))
    assert (masks.sm[idx] == 1).all()


def test_sid_unique_ascending():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5], [80.3, 20.7, 10.1]]))
    ids = masks.sid[masks.sid >= 0]
    assert sorted(ids.tolist()) == list(range(masks.npts))
    # canonical: ids ascend with lexicographic point order
    assert np.array_equal(masks.id_of(masks.points), np.arange(masks.npts))


def test_sid_sentinel_elsewhere():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    assert (masks.sid < 0).sum() == masks.sid.size - masks.npts


def test_id_of_rejects_unaffected():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    with pytest.raises(KeyError):
        masks.id_of(np.array([[0, 0, 0]]))


def test_nnz_counts_z_slots():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    assert masks.nnz.sum() == masks.npts
    assert masks.nnz.max() == 2  # two z corners per occupied pencil
    assert masks.max_nnz == 2


def test_sp_sid_compaction():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    for x, y in zip(*np.nonzero(masks.nnz)):
        k = masks.nnz[x, y]
        zs = masks.sp_sid[x, y, :k]
        assert (zs >= 0).all()
        assert (masks.sm[x, y, zs] == 1).all()
        assert (masks.sp_sid[x, y, k:] == -1).all()
        assert np.array_equal(np.sort(zs), zs)  # ascending z per pencil


def test_density_and_occupancy():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    assert masks.density() == pytest.approx(8 / 11**3)
    assert masks.pencil_occupancy() == pytest.approx(4 / 121)


def test_memory_bytes_positive():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    assert masks.memory_bytes() > 0


def test_points_in_box():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    all_ids = masks.points_in_box(((0, 11), (0, 11), (0, 11)))
    assert len(all_ids) == 8
    none = masks.points_in_box(((0, 1), (0, 1), (0, 1)))
    assert len(none) == 0
    # half-open semantics: box ending at the base x excludes it
    bx = int(masks.points[:, 0].min())
    left = masks.points_in_box(((0, bx), (0, 11), (0, 11)))
    assert len(left) == 0


def test_2d_grid_masks():
    grid = Grid(shape=(9, 9), extent=(80.0, 80.0))
    s = SparseTimeFunction("s", grid, npoint=1, nt=3,
                           coordinates=np.array([[35.5, 45.5]]))
    s.data[:] = 1.0
    masks = build_masks(s)
    assert masks.sm.shape == (9, 9)
    assert masks.nnz.shape == (9,)
    assert masks.npts == 4


def test_empty_pencils_have_sentinel_slots():
    masks = build_masks(make_sparse([[35.5, 45.5, 55.5]]))
    empty = masks.nnz == 0
    assert (masks.sp_sid[empty] == -1).all()


coords_strategy = st.lists(
    st.tuples(*([st.floats(0, 100, allow_nan=False)] * 3)), min_size=1, max_size=8
)


@given(coords=coords_strategy)
@settings(max_examples=40, deadline=None)
def test_property_invariants(coords):
    masks = build_masks(make_sparse(list(coords)))
    # SM and SID agree everywhere
    assert ((masks.sid >= 0) == (masks.sm == 1)).all()
    # nnz is the per-pencil sum of SM
    np.testing.assert_array_equal(masks.nnz, masks.sm.sum(axis=-1))
    # every affected point appears exactly once in the compressed structure
    total = sum(
        masks.nnz[x, y] for x, y in zip(*np.nonzero(masks.nnz))
    )
    assert total == masks.npts
