"""Tests for grid-aligned box-wise injection and measurement (Listings 4/5)."""

import numpy as np
import pytest

from repro.core import decompose_receiver, decompose_source
from repro.core.aligned import AlignedInjection, AlignedReceiver
from repro.dsl import Grid, SparseTimeFunction, TimeFunction


@pytest.fixture
def setup():
    grid = Grid(shape=(11, 11, 11), extent=(100.0, 100.0, 100.0))
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    src = SparseTimeFunction("src", grid, npoint=2, nt=6,
                             coordinates=np.array([[35.5, 45.5, 55.5], [71.2, 13.3, 88.4]]))
    rng = np.random.default_rng(0)
    src.data[:] = rng.normal(size=(6, 2)).astype(np.float32)
    return grid, u, src


def test_box_injection_sums_to_full(setup):
    """Injecting per-box over a partition == injecting the whole grid once."""
    grid, u, src = setup
    d = decompose_source(src.inject(u, expr=1.0), dt=1.0)
    inj = AlignedInjection(d, u)
    inj.apply(2)
    full = u.buffer(3).copy()

    u.data_with_halo[...] = 0.0
    for x0 in range(0, 11, 4):
        for y0 in range(0, 11, 3):
            inj.apply(2, box=((x0, min(x0 + 4, 11)), (y0, min(y0 + 3, 11)), (0, 11)))
    np.testing.assert_array_equal(u.buffer(3), full)


def test_injection_out_of_range_timestep_noop(setup):
    grid, u, src = setup
    d = decompose_source(src.inject(u, expr=1.0), dt=1.0)
    inj = AlignedInjection(d, u)
    inj.apply(-1)
    inj.apply(99)
    assert not u.data_with_halo.any()


def test_injection_field_mismatch(setup):
    grid, u, src = setup
    d = decompose_source(src.inject(u, expr=1.0), dt=1.0)
    other = TimeFunction("w", grid, time_order=2, space_order=2)
    with pytest.raises(ValueError, match="targets field"):
        AlignedInjection(d, other)


def test_overhead_points(setup):
    grid, u, src = setup
    d = decompose_source(src.inject(u, expr=1.0), dt=1.0)
    assert AlignedInjection(d, u).overhead_points() == d.npts


def test_receiver_box_gather_then_finalize(setup):
    grid, u, src = setup
    rng = np.random.default_rng(1)
    u.buffer(3)[...] = rng.normal(size=u.buffer(3).shape).astype(np.float32)
    rec = SparseTimeFunction("rec", grid, npoint=2, nt=6,
                             coordinates=np.array([[33.3, 44.4, 55.5], [60.0, 20.0, 80.0]]))
    d = decompose_receiver(rec.interpolate(u))
    out = np.zeros((6, 2), dtype=np.float32)
    r = AlignedReceiver(d, u, out)

    # gather in boxes, finalize at timestep end
    for x0 in range(0, 11, 5):
        r.gather(2, box=((x0, min(x0 + 5, 11)), (0, 11), (0, 11)))
    assert r.pending_rows() == [3]
    r.finalize(2)
    assert r.pending_rows() == []

    # reference: whole-grid gather
    out_ref = np.zeros((6, 2), dtype=np.float32)
    r2 = AlignedReceiver(d, u, out_ref)
    r2.gather(2)
    r2.finalize(2)
    np.testing.assert_allclose(out[3], out_ref[3], rtol=1e-6)
    assert out[3].any()


def test_receiver_out_of_range_row(setup):
    grid, u, src = setup
    rec = SparseTimeFunction("rec", grid, npoint=1, nt=3)
    d = decompose_receiver(rec.interpolate(u))
    r = AlignedReceiver(d, u, rec.data)
    r.gather(99)
    r.finalize(99)  # no crash, no row


def test_receiver_field_mismatch(setup):
    grid, u, src = setup
    rec = SparseTimeFunction("rec", grid, npoint=1, nt=3)
    d = decompose_receiver(rec.interpolate(u))
    other = TimeFunction("w", grid, time_order=2, space_order=2)
    with pytest.raises(ValueError, match="targets field"):
        AlignedReceiver(d, other, rec.data)


def test_injection_amplitudes_converted_once(setup):
    """No per-timestep astype churn: amplitudes live in the field dtype."""
    grid, u, src = setup
    d = decompose_source(src.inject(u, expr=1.0), dt=1.0)
    inj = AlignedInjection(d, u)
    assert u.dtype == np.float32
    assert inj._amplitudes.dtype == u.dtype
    assert inj._amplitudes.flags["C_CONTIGUOUS"]
    # identical values to casting the float64 decomposition per call
    np.testing.assert_array_equal(
        inj._amplitudes, d.data.astype(u.dtype, copy=False)
    )
    inj.apply(2)
    assert u.buffer(3).dtype == u.dtype


def test_receiver_staging_stays_float64(setup):
    """Reconstruction precision is unchanged: staging and weights are float64
    and the single cast happens on the output assignment."""
    grid, u, src = setup
    rec = SparseTimeFunction("rec", grid, npoint=2, nt=6)
    d = decompose_receiver(rec.interpolate(u))
    r = AlignedReceiver(d, u, rec.data)
    u.buffer(2)[...] = 1.25
    r.gather(2)
    assert all(s.dtype == np.float64 for s in r._staging.values())
    assert d.weights.dtype == np.float64
    r.finalize(2)
    assert rec.data.dtype == np.float32
