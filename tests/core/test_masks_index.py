"""Tests for the bucketed spatial index behind ``SourceMasks.points_in_box``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_masks
from repro.core.masks import SourceMasks
from repro.dsl import Grid, SparseTimeFunction

SHAPE = (11, 11, 11)


def make_masks(coords, shape=SHAPE):
    grid = Grid(shape=shape, extent=tuple(10.0 * (s - 1) for s in shape))
    s = SparseTimeFunction("s", grid, npoint=len(coords), nt=3,
                           coordinates=np.asarray(coords, dtype=float))
    s.data[:] = 1.0
    return build_masks(s)


def synthetic_masks(npts, shape=(64, 64, 64), seed=0):
    """A SourceMasks with *npts* fabricated affected points in canonical
    order (build_masks on that many real sources would dominate the test)."""
    rng = np.random.default_rng(seed)
    flat = rng.choice(int(np.prod(shape)), size=npts, replace=False)
    flat.sort()
    points = np.stack(np.unravel_index(flat, shape), axis=1).astype(np.int64)
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape))
    dummy = np.zeros((1, 1), dtype=np.int32)
    return SourceMasks(grid=grid, points=points, sm=dummy.astype(np.uint8),
                       sid=dummy, nnz=dummy, sp_sid=dummy)


box_strategy = st.tuples(
    *[
        st.tuples(st.integers(-3, 13), st.integers(-3, 13))
        for _ in range(3)
    ]
)


@given(box=box_strategy)
@settings(max_examples=60, deadline=None)
def test_indexed_matches_brute_force(box):
    masks = make_masks([[35.5, 45.5, 55.5], [80.3, 20.7, 10.1], [4.2, 99.9, 50.0]])
    np.testing.assert_array_equal(
        masks.points_in_box(box), masks._points_in_box_scan(box)
    )


def test_indexed_matches_brute_force_randomized():
    masks = synthetic_masks(5000, shape=(32, 32, 32), seed=3)
    rng = np.random.default_rng(7)
    cases = [
        tuple((0, s) for s in (32, 32, 32)),        # full grid
        tuple((0, 0) for _ in range(3)),            # empty
        ((-5, 40), (-5, 40), (-5, 40)),             # clipped beyond the grid
        ((31, 32), (0, 32), (0, 32)),               # last slab
    ]
    for _ in range(120):
        lo = rng.integers(-4, 32, size=3)
        hi = lo + rng.integers(0, 12, size=3)
        cases.append(tuple((int(a), int(b)) for a, b in zip(lo, hi)))
    for box in cases:
        np.testing.assert_array_equal(
            masks.points_in_box(box),
            masks._points_in_box_scan(box),
            err_msg=f"box={box}",
        )


def test_ids_ascending_and_int():
    masks = make_masks([[35.5, 45.5, 55.5], [80.3, 20.7, 10.1]])
    ids = masks.points_in_box(((0, 11), (0, 11), (0, 11)))
    assert np.array_equal(ids, np.sort(ids))
    assert ids.dtype == np.intp


def test_small_boxes_do_not_scan_all_points():
    """The acceptance-criterion op count: on a 10^5-point mask, small-box
    queries touch only the leading-dimension slab, not all npts points."""
    masks = synthetic_masks(100_000, shape=(64, 64, 64), seed=1)
    assert masks.npts == 100_000
    rng = np.random.default_rng(2)
    nq = 50
    for _ in range(nq):
        lo = rng.integers(0, 60, size=3)
        box = tuple((int(a), int(a) + 4) for a in lo)
        ids = masks.points_in_box(box)
        np.testing.assert_array_equal(ids, masks._points_in_box_scan(box))
    assert masks.stats["queries"] == nq
    # a 4-wide leading slab holds ~npts * 4/64; brute force would be nq*npts
    assert masks.stats["scanned"] <= nq * masks.npts // 8
    assert masks.stats["scanned"] > 0


def test_unindexed_ablation_routes_through_scan():
    """``indexed = False`` (the seed-path A/B knob) must bypass both the
    bucketed index and the memo cache yet return identical ids."""
    masks = synthetic_masks(5000, shape=(32, 32, 32), seed=5)
    box = ((3, 20), (0, 32), (7, 19))
    ref = masks.points_in_box(box)
    masks.indexed = False
    before = masks.stats["scanned"]
    got = masks.points_in_box(box)
    np.testing.assert_array_equal(got, ref)
    assert masks.stats["scanned"] == before + masks.npts  # brute-force cost
    assert masks.stats["cache_hits"] == 0
    # repeated queries are *not* memoised on the ablation path
    masks.points_in_box(box)
    assert masks.stats["cache_hits"] == 0
    masks.indexed = True
    masks.points_in_box(box)
    assert masks.stats["cache_hits"] == 1


def test_box_cache_hits():
    masks = make_masks([[35.5, 45.5, 55.5]])
    box = ((0, 11), (0, 11), (0, 11))
    a = masks.points_in_box(box)
    b = masks.points_in_box(box)
    assert a is b
    assert masks.stats["cache_hits"] == 1


def test_canonical_order_regression_guard():
    masks = make_masks([[35.5, 45.5, 55.5]])
    masks.points[:] = masks.points[::-1]  # sabotage the canonical order
    with pytest.raises(AssertionError, match="canonical order"):
        masks.points_in_box(((0, 11), (0, 11), (0, 11)))


def test_1d_and_2d_grids():
    grid = Grid(shape=(9, 9), extent=(80.0, 80.0))
    s = SparseTimeFunction("s", grid, npoint=1, nt=3,
                           coordinates=np.array([[35.5, 45.5]]))
    s.data[:] = 1.0
    masks = build_masks(s)
    for box in [((0, 9), (0, 9)), ((3, 4), (4, 5)), ((0, 0), (0, 9)), ((-2, 20), (-2, 20))]:
        np.testing.assert_array_equal(
            masks.points_in_box(box), masks._points_in_box_scan(box)
        )
