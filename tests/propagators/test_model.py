"""Tests for SeismicModel: extension, damping, CFL."""

import numpy as np
import pytest

from repro.propagators import (
    CFL_COEFFICIENTS,
    SeismicModel,
    damping_profile,
    layered_velocity,
)

SHAPE = (12, 11, 10)


def make_model(**kw):
    defaults = dict(shape=SHAPE, spacing=(10.0, 10.0, 10.0),
                    vp=layered_velocity(SHAPE, 1.5, 3.0, 3), nbl=4, space_order=4)
    defaults.update(kw)
    return SeismicModel(**defaults)


def test_grid_extended_by_boundary_layers():
    m = make_model()
    assert m.grid.shape == tuple(s + 8 for s in SHAPE)
    # interior physical coordinates unchanged: origin shifted by nbl*h
    assert m.grid.origin == (-40.0, -40.0, -40.0)


def test_velocity_edge_replicated():
    m = make_model()
    vp = m.vp.data
    assert vp[0, 5, 5] == vp[4, 5, 5]  # boundary layer copies the edge
    assert float(vp.min()) == pytest.approx(1.5)
    assert float(vp.max()) == pytest.approx(3.0)


def test_slowness_field():
    m = make_model()
    np.testing.assert_allclose(m.m.data, 1.0 / m.vp.data**2, rtol=1e-6)


def test_scalar_velocity():
    m = make_model(vp=2.0)
    assert (m.vp.data == 2.0).all()
    assert m.vp_max == 2.0


def test_field_shape_validation():
    with pytest.raises(ValueError):
        make_model(vp=np.ones((3, 3, 3)))


def test_damping_zero_in_interior_positive_at_edges():
    m = make_model()
    d = m.damp.data
    c = tuple(s // 2 for s in m.grid.shape)
    assert d[c] == 0.0
    assert d[0, c[1], c[2]] > 0
    assert d[-1, c[1], c[2]] > 0
    assert (d >= 0).all()


def test_damping_profile_monotone():
    p = damping_profile(30, 8)
    assert (p[:8] >= 0).all()
    assert (np.diff(p[:8]) <= 1e-12).all()  # decays into the interior
    assert (p[8:-8] == 0).all()
    np.testing.assert_allclose(p, p[::-1], atol=1e-12)  # symmetric


def test_damping_profile_validation():
    with pytest.raises(ValueError):
        damping_profile(10, 5)
    assert (damping_profile(10, 0) == 0).all()


def test_critical_dt_kinds():
    m = make_model()
    dts = {k: m.critical_dt(k) for k in CFL_COEFFICIENTS}
    assert dts["tti"] < dts["acoustic"] < dts["elastic"]
    assert m.critical_dt("acoustic", cfl=0.1) == pytest.approx(0.1 * 10.0 / 3.0)


def test_nt_for():
    m = make_model()
    assert m.nt_for(100.0, 2.0) == 50
    assert m.nt_for(101.0, 2.0) == 51
    with pytest.raises(ValueError):
        m.nt_for(10.0, 0.0)


def test_domain_center():
    m = make_model()
    assert m.domain_center == (55.0, 50.0, 45.0)


def test_layered_velocity_structure():
    vp = layered_velocity((8, 8, 12), 1.0, 4.0, 4)
    assert vp.shape == (8, 8, 12)
    assert float(vp[..., 0].min()) == 1.0
    assert float(vp[..., -1].max()) == 4.0
    # monotone non-decreasing with depth
    assert (np.diff(vp[4, 4, :]) >= 0).all()
    with pytest.raises(ValueError):
        layered_velocity((4, 4, 4), nlayers=0)


def test_thomsen_fields_optional():
    m = make_model(epsilon=0.1, delta=0.05, theta=0.3, phi=0.1, rho=2.0)
    for f in (m.epsilon, m.delta, m.theta, m.phi, m.rho):
        assert f is not None
        assert f.data.shape == m.grid.shape
    m2 = make_model()
    assert m2.epsilon is None and m2.rho is None
