"""Tests for wavelets and acquisition geometry."""

import numpy as np
import pytest

from repro.dsl import Grid
from repro.propagators import (
    gabor_wavelet,
    plane_sources,
    point_source,
    receiver_line,
    ricker_wavelet,
    time_axis,
    volume_sources,
)


def test_time_axis_inclusive():
    t = time_axis(0.0, 100.0, 2.0)
    assert t[0] == 0.0 and t[-1] >= 100.0
    assert len(t) == 51
    with pytest.raises(ValueError):
        time_axis(0, 10, 0)


def test_ricker_peak_and_decay():
    t = np.linspace(0, 200, 2001)
    w = ricker_wavelet(0.02, t)  # f0 = 20 Hz in kHz/ms units
    assert w.max() == pytest.approx(1.0, abs=1e-3)  # peak amplitude 1 at t=1/f0
    assert abs(w[-1]) < 1e-6  # decayed by the end
    assert t[np.argmax(w)] == pytest.approx(50.0, abs=0.2)


def test_ricker_zero_mean():
    # integrate over a window symmetric about the peak (t_shift = 1/f0 = 50)
    t = np.linspace(50 - 300, 50 + 300, 8001)
    w = ricker_wavelet(0.02, t)
    assert np.trapezoid(w, t) == pytest.approx(0.0, abs=1e-6)


def test_ricker_nonzero_at_start():
    """The probe-injection discovery (Listing 2) relies on early samples."""
    t = np.arange(3) * 2.0
    w = ricker_wavelet(0.02, t)
    assert np.any(w != 0.0)


def test_ricker_validation():
    with pytest.raises(ValueError):
        ricker_wavelet(0.0, np.arange(4.0))


def test_gabor_bounded():
    t = np.linspace(0, 300, 1000)
    w = gabor_wavelet(0.015, t, amplitude=2.0)
    assert np.abs(w).max() <= 2.0 + 1e-9
    with pytest.raises(ValueError):
        gabor_wavelet(-1.0, t)


def test_point_source_wavelet_broadcast():
    grid = Grid(shape=(11, 11, 11))
    src = point_source("s", grid, nt=20, coordinates=[[50.0, 50.0, 50.0]] * 3,
                       f0=0.02, dt=2.0)
    assert src.data.shape == (20, 3)
    np.testing.assert_array_equal(src.data[:, 0], src.data[:, 2])
    with pytest.raises(ValueError):
        point_source("s", grid, 20, [[50.0] * 3], f0=0.02, dt=2.0, kind="square")


def test_receiver_line_geometry():
    grid = Grid(shape=(21, 11, 11), extent=(200.0, 100.0, 100.0))
    rec = receiver_line("r", grid, nt=10, npoint=5, depth=30.0)
    assert rec.coordinates.shape == (5, 3)
    assert (rec.coordinates[:, 2] == 30.0).all()
    assert (np.diff(rec.coordinates[:, 0]) > 0).all()  # spread along x
    assert (rec.coordinates[:, 1] == 50.0).all()  # centred in y


def test_plane_sources_on_slice():
    grid = Grid(shape=(11, 11, 11))
    coords = plane_sources(grid, 50, depth_fraction=0.5, jitter=False)
    assert coords.shape == (50, 3)
    assert np.allclose(coords[:, 2], 50.0)
    assert grid.contains_points(coords).all()


def test_plane_sources_jittered_off_grid():
    grid = Grid(shape=(11, 11, 11))
    coords = plane_sources(grid, 50, rng=np.random.default_rng(0))
    assert grid.contains_points(coords).all()
    assert (coords[:, 2] >= 50.0).all()


def test_volume_sources_fill_domain():
    grid = Grid(shape=(11, 11, 11))
    coords = volume_sources(grid, 200, rng=np.random.default_rng(1))
    assert coords.shape == (200, 3)
    assert grid.contains_points(coords).all()
    # genuinely spread over the volume
    assert coords[:, 2].std() > 10.0


def test_geometry_deterministic_with_rng():
    grid = Grid(shape=(11, 11, 11))
    a = volume_sources(grid, 10, rng=np.random.default_rng(7))
    b = volume_sources(grid, 10, rng=np.random.default_rng(7))
    np.testing.assert_array_equal(a, b)
