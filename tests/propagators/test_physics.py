"""Physics sanity tests for the three propagators (§III).

These validate the *substrate* (the solvers the paper evaluates on), not the
blocking scheme: wave speed, causality, stability, symmetry, damping.
"""

import numpy as np
import pytest

from repro.core import NaiveSchedule
from repro.propagators import (
    AcousticPropagator,
    ElasticPropagator,
    SeismicModel,
    TTIPropagator,
    point_source,
    receiver_line,
)

SHAPE = (26, 26, 26)


def homogeneous_model(vp=2.0, nbl=6, so=4, **kw):
    return SeismicModel(SHAPE, (10.0,) * 3, vp, nbl=nbl, space_order=so, **kw)


def run_acoustic(model, nt, so=4, dt=None, src_coords=None):
    dt = dt or model.critical_dt("acoustic")
    src_coords = src_coords or [model.domain_center]
    src = point_source("src", model.grid, nt + 2, src_coords, f0=0.03, dt=dt)
    prop = AcousticPropagator(model, space_order=so, source=src)
    prop.forward(nt=nt, dt=dt)
    return prop, dt


def test_acoustic_stability_at_cfl():
    model = homogeneous_model()
    prop, dt = run_acoustic(model, nt=60)
    u = prop.u.interior(60)
    assert np.isfinite(u).all()
    assert np.abs(u).max() < 1e3


def test_acoustic_unstable_beyond_cfl():
    """The CFL bound is real: 3x the critical step blows up."""
    model = homogeneous_model()
    dt = 3.0 * model.critical_dt("acoustic")
    prop, _ = run_acoustic(model, nt=60, dt=dt)
    u = prop.u.interior(60)
    assert (~np.isfinite(u)).any() or np.abs(u).max() > 1e6


def test_acoustic_causality():
    """No energy beyond the wavefront c*t (plus stencil smear)."""
    model = homogeneous_model(vp=2.0, nbl=4)
    dt = model.critical_dt("acoustic")
    nt = 20
    prop, _ = run_acoustic(model, nt=nt, dt=dt)
    u = prop.u.interior(nt)
    radius_km = 2.0 * dt * nt  # m (vp in km/s = m/ms)
    centre = np.array(model.domain_center)
    # physical coordinates of extended-grid points
    idx = np.indices(model.grid.shape).reshape(3, -1).T
    phys = np.asarray(model.grid.origin) + idx * 10.0
    dist = np.linalg.norm(phys - centre, axis=1)
    outside = dist > radius_km + 60.0  # margin: wavelet onset + stencil halo
    vals = np.abs(u.reshape(-1)[outside])
    assert vals.max() <= 1e-6 * max(np.abs(u).max(), 1e-30)


def test_acoustic_spherical_symmetry():
    """Homogeneous medium + centred source: the field is mirror-symmetric."""
    model = homogeneous_model()
    # place source exactly at a grid point in the centre
    prop, dt = run_acoustic(model, nt=40)
    u = prop.u.interior(40)
    np.testing.assert_allclose(u, u[::-1, :, :], atol=1e-5 * np.abs(u).max())
    np.testing.assert_allclose(u, u.transpose(1, 0, 2), atol=1e-5 * np.abs(u).max())


def test_wave_arrival_speed():
    """First arrival at a receiver matches distance / velocity."""
    vp = 2.0
    model = homogeneous_model(vp=vp, nbl=6)
    dt = model.critical_dt("acoustic")
    nt = 110
    centre = model.domain_center
    rec = point_source("rec", model.grid, nt + 2,
                       [[centre[0] + 100.0, centre[1], centre[2]]], f0=0.03, dt=dt)
    rec.data[:] = 0.0
    src = point_source("src", model.grid, nt + 2, [centre], f0=0.03, dt=dt)
    prop = AcousticPropagator(model, space_order=4, source=src, receivers=rec)
    data, _ = prop.forward(nt=nt, dt=dt)
    trace = np.abs(data[:, 0])
    onset = np.argmax(trace > 0.01 * trace.max())
    t_expected = 100.0 / vp  # ms
    # wavelet ramps up from t=0 (peak at 1/f0): onset precedes peak travel time
    assert onset * dt == pytest.approx(t_expected, abs=25.0)
    assert trace[: max(onset - 12, 0)].max() <= 0.01 * trace.max()


def test_damping_absorbs_energy():
    """With absorbing layers, late-time energy decays instead of ringing."""
    damped = homogeneous_model(nbl=8)
    dtc = damped.critical_dt("acoustic")
    p1, _ = run_acoustic(damped, nt=150, dt=dtc)
    e_damped = float(np.square(p1.u.interior(150)).sum())

    undamped = homogeneous_model(nbl=8)
    undamped.damp.data = 0.0
    p2, _ = run_acoustic(undamped, nt=150, dt=dtc)
    e_undamped = float(np.square(p2.u.interior(150)).sum())
    assert e_damped < 0.8 * e_undamped


def test_tti_reduces_to_isotropic():
    """epsilon = delta = theta = 0 makes the TTI kernel acoustic-like."""
    model = homogeneous_model(epsilon=0.0, delta=0.0, theta=0.0, phi=0.0)
    dt = model.critical_dt("tti")
    nt = 30
    src = point_source("src", model.grid, nt + 2, [model.domain_center], f0=0.03, dt=dt)
    tti = TTIPropagator(model, space_order=4, source=src)
    tti.forward(nt=nt, dt=dt)

    model2 = homogeneous_model()
    src2 = point_source("src", model2.grid, nt + 2, [model2.domain_center], f0=0.03, dt=dt)
    ac = AcousticPropagator(model2, space_order=4, source=src2)
    ac.forward(nt=nt, dt=dt)

    p = tti.p.interior(nt)
    u = ac.u.interior(nt)
    scale = np.abs(u).max()
    assert np.abs(p - u).max() < 0.05 * scale


def test_tti_requires_thomsen_fields():
    with pytest.raises(ValueError, match="epsilon"):
        TTIPropagator(homogeneous_model(), space_order=4)


def test_tti_space_order_multiple_of_4():
    model = homogeneous_model(epsilon=0.1, delta=0.05, theta=0.2)
    with pytest.raises(ValueError, match="multiple of 4"):
        TTIPropagator(model, space_order=6)


def test_tti_anisotropy_changes_field():
    model = homogeneous_model(epsilon=0.2, delta=0.1, theta=0.5, phi=0.3)
    dt = model.critical_dt("tti")
    nt = 24
    src = point_source("src", model.grid, nt + 2, [model.domain_center], f0=0.03, dt=dt)
    tti = TTIPropagator(model, space_order=4, source=src)
    tti.forward(nt=nt, dt=dt)
    p = tti.p.interior(nt)
    assert np.isfinite(p).all()
    # anisotropy breaks x/z exchange symmetry
    assert np.abs(p - p.transpose(2, 1, 0)).max() > 1e-3 * np.abs(p).max()


def test_elastic_stability_and_stress_symmetry():
    model = homogeneous_model(rho=2.0, vs=1.1)
    dt = model.critical_dt("elastic")
    nt = 40
    src = point_source("src", model.grid, nt + 2, [model.domain_center], f0=0.03, dt=dt)
    el = ElasticPropagator(model, space_order=4, source=src)
    el.forward(nt=nt, dt=dt)
    for f in el.fields:
        assert np.isfinite(f.interior(nt)).all()
    # explosive source at the centre: under the x<->y swap the staggered
    # scheme maps txx(x,y) -> tyy(y,x) and leaves tzz invariant
    txx = el.txx.interior(nt)
    tyy = el.tyy.interior(nt)
    tzz = el.tzz.interior(nt)
    scale = np.abs(txx).max()
    assert np.abs(txx - tyy.transpose(1, 0, 2)).max() < 1e-4 * scale
    np.testing.assert_allclose(tzz, tzz.transpose(1, 0, 2), atol=1e-4 * scale)


def test_elastic_requires_rho():
    with pytest.raises(ValueError, match="rho"):
        ElasticPropagator(homogeneous_model(), space_order=4)


def test_elastic_receivers_record(grid3d=None):
    model = homogeneous_model(rho=2.0, vs=1.1)
    dt = model.critical_dt("elastic")
    nt = 50
    src = point_source("src", model.grid, nt + 2, [model.domain_center], f0=0.03, dt=dt)
    rec = receiver_line("rec", model.grid, nt + 2, npoint=4, depth=model.domain_center[2] - 40.0)
    el = ElasticPropagator(model, space_order=4, source=src, receivers=rec)
    data, _ = el.forward(nt=nt, dt=dt)
    assert np.abs(data).max() > 0.0


def test_forward_requires_enough_source_samples():
    model = homogeneous_model()
    dt = model.critical_dt("acoustic")
    src = point_source("src", model.grid, 5, [model.domain_center], f0=0.03, dt=dt)
    prop = AcousticPropagator(model, space_order=4, source=src)
    with pytest.raises(ValueError, match="samples"):
        prop.forward(nt=50, dt=dt)


def test_forward_tn_interface():
    model = homogeneous_model()
    dt = model.critical_dt("acoustic")
    src = point_source("src", model.grid, 200, [model.domain_center], f0=0.03, dt=dt)
    prop = AcousticPropagator(model, space_order=4, source=src)
    _, plan = prop.forward(tn=20.0, dt=dt)
    with pytest.raises(ValueError, match="nt or tn"):
        prop.forward(dt=dt)
