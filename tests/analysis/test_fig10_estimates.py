"""Validate the Fig. 10 analytic affected-point estimator against exact counts."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from paper_setup import expected_affected_points, source_load_for  # noqa: E402

from repro.core import build_masks  # noqa: E402
from repro.dsl import Grid, SparseTimeFunction  # noqa: E402
from repro.propagators import plane_sources, volume_sources  # noqa: E402


def exact_npts(coords, grid):
    s = SparseTimeFunction("s", grid, npoint=len(coords), nt=2, coordinates=coords)
    s.data[:] = 1.0
    return build_masks(s).npts


@pytest.mark.parametrize("nsrc", [1, 10, 100, 1000])
def test_volume_estimate_matches_exact(nsrc):
    grid = Grid(shape=(24, 24, 24), extent=(230.0,) * 3)
    coords = volume_sources(grid, nsrc, rng=np.random.default_rng(42))
    exact = exact_npts(coords, grid)
    est = expected_affected_points(nsrc, grid.npoints, support=8)
    assert est == pytest.approx(exact, rel=0.25)


def test_plane_estimate_matches_exact():
    grid = Grid(shape=(24, 24, 24), extent=(230.0,) * 3)
    coords = plane_sources(grid, 500, rng=np.random.default_rng(42))
    exact = exact_npts(coords, grid)
    est = expected_affected_points(500, 2 * 24 * 24, support=8)
    assert est == pytest.approx(exact, rel=0.3)


def test_estimator_limits():
    n = 1000
    # few sources: ~ support * nsources
    assert expected_affected_points(1, n) == pytest.approx(8.0, rel=0.01)
    # saturation: never exceeds the grid
    assert expected_affected_points(10**9, n) <= n


def test_source_load_for_shapes():
    light = source_load_for(1, "volume", shape=(64, 64, 64))
    heavy = source_load_for(10**6, "volume", shape=(64, 64, 64))
    assert light.npts < heavy.npts <= 64**3
    plane = source_load_for(10**6, "plane", shape=(64, 64, 64))
    assert plane.npts <= 2 * 64 * 64
    with pytest.raises(ValueError):
        source_load_for(1, "everywhere")
