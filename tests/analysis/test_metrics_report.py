"""Tests for metrics (flop counting) and report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    access_count,
    arithmetic_intensity,
    eq_flops,
    flop_count,
    gpoints_per_s,
    render_series,
    render_speedup_bars,
    render_table,
)
from repro.dsl import Eq, Function, Grid, TimeFunction, solve
from repro.dsl.symbols import Add, Call, Mul, Number, Pow, Symbol

X, Y = Symbol("x"), Symbol("y")


# -- flop counting ------------------------------------------------------------------
def test_add_mul_costs():
    assert flop_count(Add(X, Y, Number(1))) == 2
    assert flop_count(Mul(X, Y)) == 1
    assert flop_count(X) == 0
    assert flop_count(Number(5)) == 0


def test_nested_cost():
    e = Mul(Add(X, Y), Add(X, Number(2)))  # 1 mul + 2 adds
    assert flop_count(e) == 3


def test_pow_costs():
    assert flop_count(Pow(X, Number(2))) == 1  # x*x
    assert flop_count(Pow(X, Number(3))) == 2
    assert flop_count(Pow(X, Number(-1))) == 1  # one division
    assert flop_count(Pow(X, Number(-2))) == 2  # square + divide


def test_call_cost():
    assert flop_count(Call("cos", X)) == 4.0


def test_eq_flops_acoustic_scales_with_order():
    g = Grid(shape=(8, 8, 8))
    m = Function("m", g, space_order=4)

    def build(so):
        u = TimeFunction("u", g, time_order=2, space_order=so)
        return Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))

    assert eq_flops(build(8)) > eq_flops(build(4)) > 10


def test_access_count():
    g = Grid(shape=(8, 8, 8))
    u = TimeFunction("u", g, time_order=2, space_order=4)
    eq = Eq(u.forward, u.laplace)
    assert access_count(eq) == 13 + 1  # 13-pt star + the write


# -- throughput helpers ------------------------------------------------------------------
def test_gpoints():
    assert gpoints_per_s(1e9, 10, 10.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        gpoints_per_s(1, 1, 0)


def test_ai():
    assert arithmetic_intensity(100, 50) == 2.0
    with pytest.raises(ValueError):
        arithmetic_intensity(1, 0)


# -- report rendering ------------------------------------------------------------------------
def test_render_table_alignment():
    t = render_table(["a", "bb"], [[1, 2.5], ["xx", 3]], title="T")
    lines = t.splitlines()
    assert lines[0] == "T"
    assert "---" in lines[2]
    assert len({len(l) for l in lines[1:3]}) == 1


def test_render_series():
    t = render_series([1, 2], {"s1": [0.5, 0.6], "s2": [1.0, 1.1]}, x_label="n")
    assert "n" in t and "s1" in t and "0.6" in t


def test_render_speedup_bars():
    t = render_speedup_bars(["a", "b"], [1.5, 0.9], title="Fig")
    assert "1.50x" in t and "0.90x" in t
    assert "#" in t


# -- legality-certificate rendering -------------------------------------------------
def test_render_certificate():
    from repro.analysis import render_certificate
    from repro.core.scheduler import WavefrontSchedule
    from repro.verify import prove_schedule

    from ..conftest import make_acoustic_operator
    from repro.dsl import Grid

    op, *_ = make_acoustic_operator(Grid(shape=(12, 11, 10)))
    cert = prove_schedule(op, WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2))
    out = render_certificate(cert, title="demo certificate")
    assert "demo certificate" in out
    assert "wavefront angle" in out and "tile skew" in out
    assert "True" in out  # legal verdict
    assert "in-tile" in out
