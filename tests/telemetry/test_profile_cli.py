"""The ``python -m repro.profile`` CLI: exit codes, table output, trace and
JSON modes."""

from __future__ import annotations

import json

import pytest

from repro.profile import main, profile_example


def test_quickstart_phase_table(capsys):
    assert main(["quickstart", "--nt", "6"]) == 0
    out = capsys.readouterr().out
    assert "quickstart (wavefront, nt=6)" in out
    assert "stencil" in out and "precompute" in out
    assert "GPts/s" in out


def test_naive_schedule_flag(capsys):
    assert main(["acoustic", "--schedule", "naive", "--nt", "4"]) == 0
    out = capsys.readouterr().out
    assert "acoustic (naive, nt=4)" in out


def test_json_output_parses(capsys):
    assert main(["quickstart", "--nt", "4", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["meta"]["schedule"]["kind"] == "wavefront"
    assert doc["phase_seconds"]["stencil"] > 0
    assert doc["counters"]["points_updated"] > 0
    assert "spans" not in doc


def test_trace_file_is_valid_chrome_trace(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["quickstart", "--nt", "4", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "ui.perfetto.dev" in out
    doc = json.loads(trace.read_text())
    events = [e for e in doc["traceEvents"] if e["ph"] in ("B", "E")]
    assert events, "trace mode must record spans"
    assert len([e for e in events if e["ph"] == "B"]) == \
        len([e for e in events if e["ph"] == "E"])


def test_unknown_example_rejected():
    with pytest.raises(SystemExit) as exc:
        main(["nosuch"])
    assert exc.value.code != 0


def test_profile_example_returns_buffer():
    tel = profile_example("quickstart", schedule="spatial", nt=4)
    assert tel.detail == "phase"
    assert tel.root_span().name in ("forward", "apply")
    assert tel.counters["instances"] > 0
