"""Batch-trace merging: payload validation, clock-offset correction, and the
property that merged traces stay structurally valid — strict-LIFO B/E
nesting and monotonic timestamps per track — for arbitrary well-nested
attempt buffers under arbitrary per-payload clock offsets, with corrupt
(e.g. SIGKILL-torn) payloads dropped rather than corrupting the trace."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs.spec import AttemptRecord, BatchReport, JobResult, JobSpec
from repro.telemetry import Telemetry
from repro.telemetry.merge import (
    PAYLOAD_VERSION,
    merge_batch_trace,
    telemetry_payload,
    validate_chrome_trace,
    validate_payload,
    write_batch_trace,
)


class FakeClock:
    """Strictly increasing deterministic clock for driving Telemetry."""

    def __init__(self, start: float = 0.0):
        self.t = start

    def advance(self, dt: float) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


def drive_telemetry(ops, start=0.0, events_too=True) -> Telemetry:
    """Replay a (op, dt) program against a real Telemetry buffer — the
    buffer's own LIFO discipline guarantees the result is well-nested."""
    clock = FakeClock(start)
    tel = Telemetry(clock=clock)
    open_spans = []
    for op, dt in ops:
        clock.advance(dt)
        if op == "begin":
            open_spans.append(tel.begin(f"s{len(tel.spans)}-{len(open_spans)}",
                                        phase="stencil", k=len(open_spans)))
        elif op == "end" and open_spans:
            tel.end(open_spans.pop())
        elif op == "event" and events_too:
            tel.event(f"ev{len(tel.events)}", phase="jobs")
    while open_spans:
        clock.advance(0.5)
        tel.end(open_spans.pop())
    return tel


OPS = st.lists(
    st.tuples(
        st.sampled_from(["begin", "end", "event"]),
        st.floats(min_value=1e-6, max_value=5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def make_report(payloads, statuses=None) -> BatchReport:
    results = []
    for i, payload in enumerate(payloads):
        rec = AttemptRecord(attempt=0, started=0.0, outcome="completed")
        rec.trace = payload
        status = (statuses or {}).get(i, "completed")
        results.append(
            JobResult(spec=JobSpec(f"j{i}", nt=4), status=status, attempts=[rec])
        )
    return BatchReport(results=results, wall_seconds=1.0, batch_id="t")


def supervisor_with_lifecycle(job_ids, start=100.0) -> Telemetry:
    clock = FakeClock(start)
    tel = Telemetry(clock=clock)
    root = tel.begin("batch", phase="jobs")
    for jid in job_ids:
        clock.advance(0.1)
        tel.event("job.queued", phase="jobs", job=jid)
    for jid in job_ids:
        clock.advance(0.2)
        tel.event("job.completed", phase="jobs", job=jid)
    clock.advance(0.1)
    tel.end(root)
    return tel


# -- payload serialization ---------------------------------------------------------------
def test_payload_roundtrip_carries_context_and_epoch():
    tel = drive_telemetry([("begin", 1.0), ("event", 0.5), ("end", 1.0)])
    payload = telemetry_payload(tel, job="j0", attempt=2, worker=3)
    assert payload["version"] == PAYLOAD_VERSION
    assert payload["context"] == {"job": "j0", "attempt": 2, "worker": 3}
    assert payload["epoch"] == tel.epoch
    assert len(payload["spans"]) == 1 and len(payload["events"]) == 1
    assert validate_payload(payload) is None


def test_validate_payload_rejects_malformations():
    tel = drive_telemetry([("begin", 1.0), ("end", 1.0)])
    good = telemetry_payload(tel)
    assert validate_payload("nope") is not None
    assert validate_payload({**good, "version": 99}) is not None
    bad_dur = {**good, "spans": [{**good["spans"][0], "dur": -1.0}]}
    assert "bad dur" in validate_payload(bad_dur)
    bad_ts = {**good, "spans": [{**good["spans"][0], "start": math.nan}]}
    assert "non-finite" in validate_payload(bad_ts)
    overlap = {
        **good,
        "spans": [
            {"name": "a", "phase": "", "start": 0.0, "dur": 2.0, "depth": 0, "attrs": {}},
            {"name": "b", "phase": "", "start": 1.0, "dur": 2.0, "depth": 0, "attrs": {}},
        ],
    }
    assert "not well-nested" in validate_payload(overlap)


# -- merged-trace structural properties --------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    programs=st.lists(OPS, min_size=1, max_size=4),
    offsets=st.lists(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        min_size=4, max_size=4,
    ),
    epochs=st.lists(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        min_size=4, max_size=4,
    ),
)
def test_merged_trace_preserves_nesting_and_monotonicity(programs, offsets, epochs):
    """The acceptance property: arbitrary well-nested per-attempt buffers,
    each in its own clock frame with its own offset, merge into a trace
    whose per-track B/E streams stay strictly LIFO with non-decreasing
    timestamps (validate_chrome_trace checks exactly that)."""
    payloads = []
    for i, ops in enumerate(programs):
        tel = drive_telemetry(ops, start=epochs[i % 4])
        payload = telemetry_payload(
            tel, job=f"j{i}", attempt=0, worker=(i % 3) + 1
        )
        payload["context"]["clock_offset_s"] = offsets[i % 4]
        payloads.append(payload)
    report = make_report(payloads)
    sup = supervisor_with_lifecycle([f"j{i}" for i in range(len(payloads))])
    trace = merge_batch_trace(report, sup)
    problems = validate_chrome_trace(trace)
    assert problems == []
    assert trace["otherData"]["dropped_payloads"] == 0
    # every non-empty worker payload landed on its own worker track
    tids = {
        ev["tid"]
        for ev in trace["traceEvents"]
        if ev.get("pid") == 2 and ev.get("ph") != "M"
    }
    expected = {
        (i % 3) + 1
        for i, p in enumerate(payloads)
        if p["spans"] or p["events"]
    }
    assert tids == expected


@settings(max_examples=25, deadline=None)
@given(ops=OPS, offset=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
def test_offset_correction_shifts_without_reordering(ops, offset):
    """Within one track, applying a clock offset must not change event
    order or span durations — only translate timestamps."""
    tel = drive_telemetry(ops)
    p0 = telemetry_payload(tel, job="j", attempt=0, worker=1)
    p0["context"]["clock_offset_s"] = 0.0
    p1 = telemetry_payload(tel, job="j", attempt=0, worker=1)
    p1["context"]["clock_offset_s"] = offset
    t0 = merge_batch_trace(make_report([p0]))
    t1 = merge_batch_trace(make_report([p1]))
    ev0 = [e for e in t0["traceEvents"] if e.get("ph") in ("B", "E", "i")]
    ev1 = [e for e in t1["traceEvents"] if e.get("ph") in ("B", "E", "i")]
    assert [e["name"] for e in ev0] == [e["name"] for e in ev1]
    for a, b in zip(ev0, ev1):
        assert b["ts"] - a["ts"] == pytest.approx(offset * 1e6, abs=0.01)


@settings(max_examples=25, deadline=None)
@given(ops=OPS, data=st.data())
def test_corrupt_payload_dropped_without_corrupting_trace(ops, data):
    """A SIGKILL-torn / bit-flipped payload arriving alongside good ones is
    dropped (counted) and the surviving trace still validates."""
    good_tel = drive_telemetry([("begin", 1.0)] + list(ops) + [("end", 1.0)])
    good = telemetry_payload(good_tel, job="good", attempt=0, worker=1)
    good["context"]["clock_offset_s"] = -float(good_tel.epoch or 0.0)

    bad = telemetry_payload(good_tel, job="bad", attempt=0, worker=2)
    bad["context"]["clock_offset_s"] = 0.0
    corruption = data.draw(st.sampled_from(
        ["overlap", "nan_ts", "neg_dur", "missing_offset", "version"]
    ))
    if corruption == "overlap":
        bad["spans"] = [
            {"name": "a", "phase": "", "start": 0.0, "dur": 2.0, "depth": 0, "attrs": {}},
            {"name": "b", "phase": "", "start": 1.0, "dur": 2.0, "depth": 0, "attrs": {}},
        ]
    elif corruption == "nan_ts":
        bad["events"] = [
            {"name": "e", "phase": "", "start": math.inf, "dur": 0.0, "depth": 0, "attrs": {}}
        ]
    elif corruption == "neg_dur":
        bad["spans"] = [
            {"name": "a", "phase": "", "start": 0.0, "dur": -1.0, "depth": 0, "attrs": {}}
        ]
    elif corruption == "missing_offset":
        del bad["context"]["clock_offset_s"]
    else:
        bad["version"] = 999

    trace = merge_batch_trace(make_report([good, bad]))
    assert trace["otherData"]["dropped_payloads"] == 1
    assert validate_chrome_trace(trace) == []
    # the good payload survived on its track; the bad one left nothing
    tids = {
        e["tid"] for e in trace["traceEvents"]
        if e.get("pid") == 2 and e.get("ph") != "M"
    }
    assert tids == {1}


# -- supervisor track --------------------------------------------------------------------
def test_supervisor_track_is_epoch_relative_with_async_job_bars():
    sup = supervisor_with_lifecycle(["a", "b"], start=5000.0)
    trace = merge_batch_trace(make_report([]), sup)
    assert validate_chrome_trace(trace) == []
    sup_events = [
        e for e in trace["traceEvents"]
        if e.get("pid") == 1 and e.get("ph") != "M"
    ]
    # epoch-normalised: everything starts at ~0, not at 5000 s
    assert min(e["ts"] for e in sup_events) == pytest.approx(0.0, abs=1.0)
    bars = [e for e in sup_events if e["ph"] in ("b", "e")]
    assert {(e["ph"], e["id"]) for e in bars} == {
        ("b", "a"), ("e", "a"), ("b", "b"), ("e", "b")
    }
    ends = {e["id"]: e for e in bars if e["ph"] == "e"}
    assert ends["a"]["args"]["outcome"] == "completed"


def test_write_batch_trace_roundtrips(tmp_path):
    tel = drive_telemetry([("begin", 1.0), ("end", 1.0)])
    payload = telemetry_payload(tel, job="j0", attempt=0, worker=1)
    payload["context"]["clock_offset_s"] = 0.0
    report = make_report([payload])
    path = tmp_path / "trace.json"
    trace = write_batch_trace(report, path)
    import json

    on_disk = json.loads(path.read_text())
    assert on_disk == trace
    assert validate_chrome_trace(on_disk) == []


def test_validate_chrome_trace_catches_violations():
    base = {"pid": 1, "tid": 0, "cat": "x"}
    bad_nesting = {"traceEvents": [
        {**base, "name": "a", "ph": "B", "ts": 0},
        {**base, "name": "b", "ph": "B", "ts": 1},
        {**base, "name": "a", "ph": "E", "ts": 2},  # closes b's frame
        {**base, "name": "b", "ph": "E", "ts": 3},
    ]}
    assert any("nesting" in p for p in validate_chrome_trace(bad_nesting))
    decreasing = {"traceEvents": [
        {**base, "name": "e1", "ph": "i", "ts": 5, "s": "t"},
        {**base, "name": "e2", "ph": "i", "ts": 1, "s": "t"},
    ]}
    assert any("decreases" in p for p in validate_chrome_trace(decreasing))
    unclosed = {"traceEvents": [{**base, "name": "a", "ph": "B", "ts": 0}]}
    assert any("unclosed" in p for p in validate_chrome_trace(unclosed))
    orphan_async = {"traceEvents": [
        {**base, "name": "j", "ph": "e", "ts": 0, "id": "1"},
    ]}
    assert any("never opened" in p for p in validate_chrome_trace(orphan_async))
