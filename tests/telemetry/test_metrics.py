"""Metrics registry: instrument semantics, exposition format, snapshot
schema, the HTTP endpoint, and the phase accountant's exclusivity."""

from __future__ import annotations

import json
import math
import threading
import urllib.request

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    SNAPSHOT_VERSION,
    MetricsRegistry,
    MetricsServer,
    PhaseAccountant,
    validate_exposition,
    write_json_atomic,
)


# -- instruments -------------------------------------------------------------------------
def test_counter_monotonic_and_labelled():
    reg = MetricsRegistry()
    c = reg.counter("things_total", "things", ("kind",))
    c.inc(kind="a")
    c.inc(2.5, kind="a")
    c.inc(kind="b")
    assert c.value(kind="a") == 3.5
    assert c.value(kind="b") == 1.0
    assert c.value(kind="never") == 0.0
    with pytest.raises(ValueError):
        c.inc(-1, kind="a")


def test_label_set_is_enforced():
    reg = MetricsRegistry()
    c = reg.counter("x_total", "", ("lane",))
    with pytest.raises(ValueError):
        c.inc()  # missing the declared label
    with pytest.raises(ValueError):
        c.inc(lane="a", tenant="t")  # undeclared label


def test_gauge_set_inc_dec_remove():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "", ("lane",))
    g.set(3, lane="batch")
    g.inc(lane="batch")
    g.dec(2, lane="batch")
    assert g.value(lane="batch") == 2.0
    g.remove(lane="batch")
    assert g.value(lane="batch") == 0.0


def test_histogram_buckets_sum_count_quantile():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count() == 4
    assert h.sum() == pytest.approx(6.05)
    # p50 falls in the (0.1, 1.0] bucket
    q = h.quantile(0.5)
    assert 0.1 <= q <= 1.0
    assert h.quantile(0.0) == pytest.approx(0.0, abs=0.1)


def test_histogram_overflow_saturates_to_last_edge():
    reg = MetricsRegistry()
    h = reg.histogram("lat2", "", buckets=(0.1, 1.0))
    h.observe(50.0)
    assert h.quantile(0.99) == 1.0


def test_histogram_empty_quantile_is_none():
    reg = MetricsRegistry()
    h = reg.histogram("lat3", "")
    assert h.quantile(0.5) is None


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a_total") is reg.counter("a_total")
    with pytest.raises(ValueError):
        reg.gauge("a_total")  # same name, different kind
    with pytest.raises(ValueError):
        reg.counter("a_total", labelnames=("x",))  # different labels


def test_invalid_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad name")
    with pytest.raises(ValueError):
        reg.counter("ok_total", labelnames=("bad-label",))


# -- export ------------------------------------------------------------------------------
def test_snapshot_is_versioned_and_json_roundtrips():
    reg = MetricsRegistry()
    reg.counter("jobs_total", "jobs", ("lane",)).inc(lane="batch")
    reg.histogram("lat", "latency").observe(0.2)
    snap = reg.snapshot()
    assert snap["version"] == SNAPSHOT_VERSION
    assert snap["namespace"] == "repro"
    snap2 = json.loads(json.dumps(snap))
    fam = snap2["metrics"]["repro_jobs_total"]
    assert fam["type"] == "counter"
    assert fam["series"][0] == {"labels": {"lane": "batch"}, "value": 1.0}
    hist = snap2["metrics"]["repro_lat"]["series"][0]
    assert hist["count"] == 1
    assert hist["buckets"]["+Inf"] == 1  # cumulative


def test_exposition_is_valid_prometheus_text():
    reg = MetricsRegistry()
    reg.counter("jobs_total", "total jobs", ("lane",)).inc(lane="batch")
    reg.gauge("depth", "queue depth").set(3)
    reg.histogram("lat", "latency", ("outcome",)).observe(0.01, outcome="ok")
    text = reg.exposition()
    families = validate_exposition(text)
    assert families["repro_jobs_total"]["type"] == "counter"
    assert families["repro_lat"]["type"] == "histogram"
    # histogram renders one bucket line per edge plus +Inf, sum, count
    assert families["repro_lat"]["samples"] == len(DEFAULT_BUCKETS) + 1 + 2
    assert 'lane="batch"' in text


def test_validate_exposition_rejects_malformations():
    with pytest.raises(ValueError):
        validate_exposition("repro_x 1\n")  # sample without TYPE
    with pytest.raises(ValueError):
        validate_exposition("# TYPE repro_x wat\nrepro_x 1\n")
    good = "# TYPE x histogram\n"
    with pytest.raises(ValueError):  # histogram without +Inf
        validate_exposition(good + 'x_bucket{le="1"} 1\nx_sum 1\nx_count 1\n')
    with pytest.raises(ValueError):  # cumulative counts decrease
        validate_exposition(
            good + 'x_bucket{le="1"} 2\nx_bucket{le="+Inf"} 1\nx_sum 1\nx_count 1\n'
        )


def test_exposition_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("esc_total", "", ("msg",)).inc(msg='he said "hi"\nbye')
    validate_exposition(reg.exposition())  # must still parse


def test_write_json_atomic(tmp_path):
    path = tmp_path / "m.json"
    write_json_atomic(path, {"a": 1})
    assert json.loads(path.read_text()) == {"a": 1}
    assert not (tmp_path / "m.json.tmp").exists()


# -- HTTP endpoint -----------------------------------------------------------------------
def test_metrics_server_serves_exposition_snapshot_and_health():
    reg = MetricsRegistry()
    reg.counter("hits_total", "hits").inc()
    with MetricsServer(reg, port=0) as server:
        assert server.port > 0
        text = urllib.request.urlopen(f"{server.url}/metrics").read().decode()
        families = validate_exposition(text)
        assert families["repro_hits_total"]["samples"] == 1
        snap = json.loads(
            urllib.request.urlopen(f"{server.url}/metrics.json").read()
        )
        assert snap["version"] == SNAPSHOT_VERSION
        ok = urllib.request.urlopen(f"{server.url}/healthz").read()
        assert ok == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{server.url}/nope")


def test_metrics_server_scrape_while_recording():
    """The server thread scrapes concurrently with a writer without
    torn/invalid exposition output."""
    reg = MetricsRegistry()
    c = reg.counter("spin_total", "")
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            c.inc()

    t = threading.Thread(target=writer)
    t.start()
    try:
        with MetricsServer(reg, port=0) as server:
            for _ in range(10):
                text = urllib.request.urlopen(f"{server.url}/metrics").read()
                validate_exposition(text.decode())
    finally:
        stop.set()
        t.join()


# -- phase accounting --------------------------------------------------------------------
def test_phase_accountant_exclusive_nesting():
    clock = iter(range(100))
    acct = PhaseAccountant(clock=lambda: float(next(clock)))
    acct.push("supervise")  # t=0
    acct.push("admission")  # t=1 (supervise charged 1)
    acct.pop()              # t=2 (admission charged 1)
    with acct.phase("journal"):  # t=3..4
        pass
    acct.pop()              # t=5 (supervise charged 2+1 more)
    total = sum(acct.seconds.values())
    assert total == pytest.approx(5.0)  # covers [0, 5] exactly, no overlap
    assert acct.seconds["admission"] == pytest.approx(1.0)
    assert acct.seconds["journal"] == pytest.approx(1.0)
    assert acct.seconds["supervise"] == pytest.approx(3.0)


def test_phase_accountant_flush_keeps_stack_usable():
    clock = iter(range(100))
    acct = PhaseAccountant(clock=lambda: float(next(clock)))
    acct.push("supervise")  # t=0
    totals = acct.flush()   # t=1
    assert totals["supervise"] == pytest.approx(1.0)
    acct.pop()              # t=2
    assert acct.seconds["supervise"] == pytest.approx(2.0)
    assert not math.isnan(sum(acct.seconds.values()))
