"""Span nesting, phase accounting and attribute integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.telemetry import PHASES, Telemetry

from ..conftest import make_acoustic_operator


class FakeClock:
    """Deterministic clock: each reading advances by a fixed tick."""

    def __init__(self, tick=1.0):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


def test_begin_end_nesting_and_depth():
    tel = Telemetry(clock=FakeClock())
    outer = tel.begin("outer", schedule="naive")
    inner = tel.begin("inner")
    assert outer.depth == 0 and inner.depth == 1
    tel.end(inner)
    tel.end(outer)
    assert [s.name for s in tel.spans] == ["inner", "outer"]
    assert outer.start <= inner.start
    assert inner.end <= outer.end
    assert outer.attrs == {"schedule": "naive"}


def test_end_out_of_order_raises():
    tel = Telemetry(clock=FakeClock())
    outer = tel.begin("outer")
    tel.begin("inner")
    with pytest.raises(ValueError, match="nesting violated"):
        tel.end(outer)


def test_span_contextmanager_closes_on_error():
    tel = Telemetry(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tel.span("work"):
            raise RuntimeError("boom")
    assert len(tel.spans) == 1
    assert not tel._stack


def test_phase_accounting_with_fake_clock():
    tel = Telemetry(clock=FakeClock(tick=0.5))
    tel.add_phase("stencil", 2.0)
    tel.add_phase("stencil", 1.0)
    tel.add_phase("custom", 0.25)
    totals = tel.phase_totals()
    assert totals["stencil"] == 3.0
    assert totals["custom"] == 0.25
    assert list(totals)[: len(PHASES)] == list(PHASES)
    assert tel.phase_sum() == pytest.approx(3.25)


def test_events_and_epoch():
    tel = Telemetry(clock=FakeClock())
    ev = tel.event("checkpoint.save", phase="checkpoint+guard", step=4)
    assert tel.epoch == ev.start
    assert ev.dur == 0.0
    assert tel.events == [ev]
    assert ev.attrs["step"] == 4


def test_detail_validation():
    with pytest.raises(ValueError, match="unknown detail"):
        Telemetry(detail="verbose")


SCHEDULES = {
    "naive": NaiveSchedule(),
    "spatial": SpatialBlockSchedule(block=(6, 6)),
    "wavefront": WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2),
}


@pytest.mark.parametrize("sched_name", sorted(SCHEDULES))
def test_run_span_structure(grid3d, sched_name):
    """Every schedule produces a consistent apply > run > (tile|step) tree
    with per-instance spans at detail="trace"."""
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=8)
    tel = Telemetry(detail="trace")
    op.apply(time_M=8, dt=0.4, schedule=SCHEDULES[sched_name], telemetry=tel)

    root = tel.root_span()
    assert root is not None and root.name == "apply"
    assert root.attrs["schedule"] == sched_name
    (run,) = tel.find("run")
    assert run.attrs["schedule"] == sched_name
    assert run.start >= root.start and run.end <= root.end + 1e-9

    groups = tel.find("tile" if sched_name == "wavefront" else "step")
    assert groups, "no per-tile/per-step spans recorded"
    for g in groups:
        assert run.start <= g.start and g.end <= run.end + 1e-9

    instances = [s for s in tel.spans if s.name.startswith("sweep")]
    assert instances, "trace detail must record per-instance spans"
    for inst in instances:
        assert inst.phase == "stencil"
        assert "t" in inst.attrs and "sweep" in inst.attrs
        if sched_name == "wavefront":
            assert "tile" in inst.attrs and "box" in inst.attrs
    # instance count matches the executed-instances counter
    assert len(instances) == tel.counters["instances"]

    # every phase second is attributed to a known phase, and the phase sum
    # explains (almost) all of the run wall-time
    assert all(v >= 0 for v in tel.phase_seconds.values())
    assert tel.coverage() > 0.90
    assert tel.total_seconds() > 0


def test_phase_detail_suppresses_instance_spans(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=6)
    tel = Telemetry(detail="phase")
    op.apply(time_M=6, dt=0.4, schedule=NaiveSchedule(), telemetry=tel)
    assert not [s for s in tel.spans if s.name.startswith("sweep")]
    assert tel.find("run")  # structural spans still present
    assert tel.counters["instances"] > 0  # counters unaffected by detail


def test_meta_static_costs_registered(grid3d):
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=6)
    tel = Telemetry()
    op.apply(time_M=6, dt=0.4, schedule=NaiveSchedule(), telemetry=tel)
    assert tel.meta["operator"] == op.name
    assert len(tel.meta["sweep_flops"]) == len(op.sweeps)
    assert all(f > 0 for f in tel.meta["sweep_flops"])
    assert all(a > 0 for a in tel.meta["sweep_accesses"])
    assert tel.meta["dtype_bytes"] in (4, 8)
    assert tel.meta["grid_shape"] == list(grid3d.shape)


def test_pipeline_precompute_span(grid3d):
    from repro.core.pipeline import TemporalBlockingPipeline

    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=8)
    tel = Telemetry()
    pipe = TemporalBlockingPipeline(op, dt=0.4)
    pipe.precompute(telemetry=tel)
    (pspan,) = tel.find("pipeline.precompute")
    assert pspan.phase == "precompute"
    assert tel.find("decompose.source") and tel.find("decompose.receiver")
    assert tel.phase_seconds["precompute"] >= pspan.dur > 0

    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    pipe.run(time_M=8, schedule=WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2),
             telemetry=tel)
    assert np.isfinite(rec.data).all()
    assert tel.find("apply")
