"""Exporter integrity: JSON report, phase table, Chrome-trace round-trip."""

from __future__ import annotations

import json

from repro.core import WavefrontSchedule
from repro.telemetry import (
    Telemetry,
    render_phase_table,
    telemetry_to_json,
    to_chrome_trace,
    write_chrome_trace,
)

from ..conftest import make_acoustic_operator

NT = 8


def _traced_run(grid):
    op, u, m, src, rec = make_acoustic_operator(grid, nt=NT)
    tel = Telemetry(detail="trace")
    op.apply(
        time_M=NT, dt=0.4,
        schedule=WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2),
        telemetry=tel,
    )
    return tel


def test_telemetry_to_json_roundtrips(grid3d):
    tel = _traced_run(grid3d)
    report = telemetry_to_json(tel)
    encoded = json.dumps(report)  # must be JSON-able as-is
    decoded = json.loads(encoded)
    assert decoded["detail"] == "trace"
    assert decoded["meta"]["operator"] == "acoustic-test"
    assert decoded["phase_seconds"]["stencil"] > 0
    assert decoded["counters"]["points_updated"] > 0
    assert decoded["total_seconds"] > 0
    assert len(decoded["spans"]) == len(tel.spans)
    # spans=False strips the bulky part but keeps the aggregates
    slim = telemetry_to_json(tel, spans=False)
    assert "spans" not in json.loads(json.dumps(slim))
    assert slim["phase_seconds"] == report["phase_seconds"]


def test_phase_table_contents(grid3d):
    tel = _traced_run(grid3d)
    table = render_phase_table(tel, title="unit-test run")
    assert "unit-test run" in table
    for phase in ("stencil", "injection", "receivers", "precompute"):
        assert phase in table
    assert "GPts/s" in table  # achieved throughput is rendered in the table
    assert "(unattributed)" in table and "total" in table


def test_chrome_trace_well_formed(grid3d, tmp_path):
    tel = _traced_run(grid3d)
    path = tmp_path / "trace.json"
    write_chrome_trace(tel, path)
    doc = json.loads(path.read_text())
    assert doc == to_chrome_trace(tel)  # file is the exact serialisation
    assert doc.get("displayTimeUnit") == "ms"
    events = doc["traceEvents"]
    assert events

    # timeline events: monotonically non-decreasing timestamps, all relative
    # to the run epoch (no absolute perf_counter leakage)
    timeline = [e for e in events if e["ph"] in ("B", "E", "i", "I", "X")]
    ts = [e["ts"] for e in timeline]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)

    # every B has a matching E at the same nesting level (stack replay)
    stack = []
    for e in timeline:
        if e["ph"] == "B":
            stack.append(e["name"])
        elif e["ph"] == "E":
            assert stack, f"E event without open B: {e}"
            stack.pop()
    assert stack == [], f"unclosed B events: {stack}"

    # the span tree made it across: apply, run, tiles and sweep instances
    names = {e["name"] for e in timeline if e["ph"] == "B"}
    assert "apply" in names and "run" in names and "tile" in names
    assert any(n.startswith("sweep") for n in names)


def test_chrome_trace_empty_telemetry_still_valid(tmp_path):
    tel = Telemetry()
    path = tmp_path / "empty.json"
    write_chrome_trace(tel, path)
    doc = json.loads(path.read_text())
    timeline = [e for e in doc["traceEvents"] if e["ph"] in ("B", "E")]
    assert timeline == []
