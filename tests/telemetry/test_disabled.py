"""The observability layer must observe, not perturb: telemetry-on runs are
bit-identical to telemetry-off runs, and a disabled layer records nothing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.telemetry import Telemetry

from ..conftest import make_acoustic_operator, run_and_capture

NT = 8
SCHEDULES = {
    "naive": NaiveSchedule(),
    "spatial": SpatialBlockSchedule(block=(6, 6)),
    "wavefront": WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2),
}


@pytest.mark.parametrize("sched_name", sorted(SCHEDULES))
def test_bit_identical_with_and_without_telemetry(grid3d, sched_name):
    schedule = SCHEDULES[sched_name]
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=NT)
    u_off, rec_off = run_and_capture(op, u, rec, NT, 0.4, schedule)

    u.data_with_halo[...] = 0.0
    rec.data[...] = 0.0
    tel = Telemetry(detail="trace")
    op.apply(time_M=NT, dt=0.4, schedule=schedule, telemetry=tel)
    assert np.array_equal(u.interior(NT), u_off)
    assert np.array_equal(rec.data, rec_off)
    assert tel.spans  # it did instrument the run


def test_fresh_telemetry_records_nothing():
    tel = Telemetry()
    assert tel.spans == [] and tel.events == []
    assert dict(tel.counters) == {}
    assert all(v == 0.0 for v in tel.phase_seconds.values())
    assert tel.total_seconds() == 0.0
    assert tel.root_span() is None


def test_apply_without_telemetry_is_silent(grid3d):
    """The no-telemetry path never constructs a Telemetry behind the
    caller's back — apply() returns a plan and nothing else is recorded."""
    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=NT)
    plan = op.apply(time_M=NT, dt=0.4, schedule=NaiveSchedule())
    assert plan is not None


def test_monitor_composes_with_telemetry(grid3d):
    from repro.runtime.checkpoint import CheckpointConfig
    from repro.runtime.health import HealthGuard

    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=NT)
    tel = Telemetry()
    op.apply(
        time_M=NT, dt=0.4, schedule=NaiveSchedule(), telemetry=tel,
        health=HealthGuard(check_every=2),
        checkpoint=CheckpointConfig(every=4),
    )
    assert tel.counters["guard_ticks"] > 0
    assert tel.counters["guard_checks"] > 0
    assert tel.counters["checkpoint_saves"] > 0
    saves = [e for e in tel.events if "checkpoint" in e.name]
    assert len(saves) == tel.counters["checkpoint_saves"]
    assert tel.phase_seconds["checkpoint+guard"] > 0


def test_aborted_run_still_flushes_guard_counters(grid3d):
    """A run killed by NumericalBlowup must leave its guard tallies in the
    telemetry buffer — partial telemetry of a crashed run is the postmortem."""
    from repro.errors import NumericalBlowup
    from repro.runtime.faults import Fault, FaultInjector
    from repro.runtime.health import HealthGuard

    op, u, m, src, rec = make_acoustic_operator(grid3d, nt=NT)
    tel = Telemetry()
    with pytest.raises(NumericalBlowup):
        op.apply(
            time_M=NT, dt=0.4, schedule=NaiveSchedule(), telemetry=tel,
            health=HealthGuard(check_every=1),
            faults=FaultInjector([Fault(t=3, kind="nan", point=(5, 5, 5))]),
        )
    assert tel.counters["guard_checks"] > 0
    assert tel.counters["guard_ticks"] > 0
    # the fired fault is recorded even though firing it killed the run
    assert tel.counters["faults_fired"] == 1
    (ev,) = [e for e in tel.events if e.name == "fault.fired"]
    assert ev.attrs["kind"] == "nan" and ev.attrs["t"] == 3
