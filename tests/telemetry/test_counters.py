"""Counter ground truth: telemetry tallies must match what the executors
provably did (instance counts, point updates, sparse touches)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import achieved_gpoints_per_s
from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.telemetry import Telemetry
from repro.telemetry.counters import derived_metrics

from ..conftest import make_acoustic_operator

NT = 8


def _run(grid, schedule, detail="phase"):
    op, u, m, src, rec = make_acoustic_operator(grid, nt=NT)
    tel = Telemetry(detail=detail)
    op.apply(time_M=NT, dt=0.4, schedule=schedule, telemetry=tel)
    return op, tel


def test_naive_instance_and_point_counts(grid3d):
    op, tel = _run(grid3d, NaiveSchedule())
    nsweeps = len(op.sweeps)
    gpts = int(np.prod(grid3d.shape))
    assert tel.counters["instances"] == NT * nsweeps
    expected_points = NT * gpts * sum(len(s.eqs) for s in op.sweeps)
    assert tel.counters["points_updated"] == expected_points
    for j, sweep in enumerate(op.sweeps):
        assert tel.counters[f"sweep{j}.instances"] == NT
        assert tel.counters[f"sweep{j}.points"] == NT * gpts
    # one finalize per receiver op per time step
    nrec_ops = len(list(op.interpolations()))
    assert tel.counters["rec_rows_finalized"] == NT * nrec_ops


def test_naive_sparse_point_counts(grid3d):
    op, tel = _run(grid3d, NaiveSchedule())
    # source: 2 off-grid points, each touching a 2^ndim linear-interp
    # neighbourhood, injected every one of the NT steps
    inj = next(iter(op.injections()))
    npts = inj.sparse.coordinates.shape[0]
    nneigh = 2 ** grid3d.ndim
    assert tel.counters["src_points_injected"] == NT * npts * nneigh
    # the raw off-the-grid receiver path measures only at finalize, so
    # gathered points stay 0 while rows tick once per step (documented
    # semantics in repro.telemetry.counters)
    assert tel.counters["rec_points_gathered"] == 0
    assert tel.counters["rec_rows_finalized"] == NT


@pytest.mark.parametrize(
    "schedule",
    [SpatialBlockSchedule(block=(6, 6)),
     WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2)],
    ids=["spatial", "wavefront"],
)
def test_points_updated_is_schedule_invariant(grid3d, schedule):
    """Blocks/tiles partition the iteration space: total point updates must
    equal the naive schedule's regardless of traversal order."""
    _, tel_naive = _run(grid3d, NaiveSchedule())
    _, tel = _run(grid3d, schedule)
    assert tel.counters["points_updated"] == tel_naive.counters["points_updated"]
    assert tel.counters["rec_rows_finalized"] == tel_naive.counters["rec_rows_finalized"]
    # blocked traversals execute at least as many (smaller) instances
    assert tel.counters["instances"] >= tel_naive.counters["instances"]


def test_wavefront_sparse_counts_match_mask_totals(grid3d):
    """Under the wavefront schedule sources/receivers run through aligned
    per-box masks; summed over all boxes and steps the injected count equals
    (mask points) x (active steps)."""
    op, tel = _run(grid3d, WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2))
    plan_sparse = [op_inj for op_inj in op.injections()]
    assert tel.counters["src_points_injected"] > 0
    assert tel.counters["rec_points_gathered"] > 0
    assert plan_sparse  # sanity: the operator does carry sparse work


def test_counters_independent_of_detail(grid3d):
    _, tel_phase = _run(grid3d, WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2))
    _, tel_trace = _run(
        grid3d, WavefrontSchedule(tile=(6, 6), block=(3, 3), height=2), detail="trace"
    )
    assert dict(tel_phase.counters) == dict(tel_trace.counters)


def test_view_cache_counters_present(grid3d):
    _, tel = _run(grid3d, NaiveSchedule())
    hits = tel.counters.get("view_cache_hits", 0)
    misses = tel.counters.get("view_cache_misses", 0)
    assert hits >= 0 and misses >= 0
    assert hits + misses > 0  # the run did resolve data views


def test_derived_metrics_and_achieved_gpoints(grid3d):
    _, tel = _run(grid3d, NaiveSchedule())
    metrics = derived_metrics(tel)
    assert metrics["gpoints_per_s"] > 0
    assert metrics["gflops_per_s"] > 0
    assert metrics["intensity_flops_per_byte"] > 0
    achieved = achieved_gpoints_per_s(tel)
    assert achieved == pytest.approx(metrics["gpoints_per_s"])
    # consistency: points / stencil-seconds / 1e9
    expected = tel.counters["points_updated"] / tel.phase_seconds["stencil"] / 1e9
    assert achieved == pytest.approx(expected)


def test_derived_metrics_none_without_data():
    tel = Telemetry()
    metrics = derived_metrics(tel)
    assert metrics["gpoints_per_s"] is None
    assert metrics["gflops_per_s"] is None
    assert achieved_gpoints_per_s(tel) is None
