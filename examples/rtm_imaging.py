"""Reverse-time migration (RTM): the paper's motivating application (§I-C).

A miniature RTM experiment built entirely on the public API:

1. **Forward model** a shot over a two-layer "true" earth, recording a
   surface shot gather (the observed data),
2. forward model over a smooth *background* model (no reflector),
3. **back-propagate** the data residual by injecting the time-reversed
   receiver traces as sources — receivers become off-the-grid *sources*,
   exactly the duality the paper's scheme handles,
4. form the zero-lag cross-correlation image, which should light up near the
   reflector depth.

Both propagations run under wave-front temporal blocking.

Run:  python examples/rtm_imaging.py
"""

import numpy as np

from repro.core import WavefrontSchedule
from repro.dsl import SparseTimeFunction
from repro.propagators import (
    AcousticPropagator,
    SeismicModel,
    point_source,
    receiver_line,
)

SHAPE = (40, 20, 28)
SPACING = (10.0, 10.0, 10.0)
REFLECTOR_Z = 12  # grid index of the velocity jump (120 m)
WTB = WavefrontSchedule(tile=(16, 16), block=(8, 8), height=4)


def make_model(two_layer: bool) -> SeismicModel:
    vp = np.full(SHAPE, 1.8, dtype=np.float32)
    if two_layer:
        vp[..., REFLECTOR_Z:] = 2.6
    return SeismicModel(SHAPE, SPACING, vp, nbl=8, space_order=8)


def forward_shot(model, nt, dt, save_every=1):
    centre = model.domain_center
    src = point_source("src", model.grid, nt + 2,
                       [(centre[0] + 2.7, centre[1] - 1.3, 45.3)], f0=0.028, dt=dt)
    rec = receiver_line("rec", model.grid, nt + 2, npoint=40, depth=15.0)
    prop = AcousticPropagator(model, space_order=8, source=src, receivers=rec)
    # snapshot the source wavefield for the imaging condition
    snaps = []
    data = None
    # run in chunks so we can snapshot (time tiles inside each chunk)
    prop.zero_fields()
    rec.data[...] = 0.0
    chunk = 8
    t = 0
    while t < nt:
        t1 = min(t + chunk, nt)
        prop.op.apply(time_M=t1, time_m=t, dt=dt, schedule=WTB)
        snaps.append((t1, prop.u.interior(t1).copy()))
        t = t1
    return prop, rec.data.copy(), snaps


def backpropagate(model, residual, nt, dt):
    """Inject time-reversed receiver data as off-the-grid sources."""
    grid = model.grid
    rec_src = SparseTimeFunction(
        "recsrc", grid, npoint=residual.shape[1], nt=nt + 2,
        coordinates=receiver_line("tmp", grid, 2, npoint=residual.shape[1], depth=15.0).coordinates,
    )
    rec_src.data[:nt] = residual[:nt][::-1]  # time reversal
    prop = AcousticPropagator(model, space_order=8, source=rec_src)
    dt_sym = grid.stepping_dim.spacing
    # rebuild operator with the adjoint source
    prop.source = rec_src
    prop._op = None
    snaps = {}
    prop.zero_fields()
    chunk = 8
    t = 0
    while t < nt:
        t1 = min(t + chunk, nt)
        prop.op.apply(time_M=t1, time_m=t, dt=dt, schedule=WTB)
        snaps[t1] = prop.u.interior(t1).copy()
        t = t1
    return snaps


def main():
    true_model = make_model(two_layer=True)
    smooth_model = make_model(two_layer=False)
    dt = true_model.critical_dt("acoustic")
    nt = 128
    print(f"modelling {nt} steps, dt={dt:.3f} ms, grid {true_model.grid.shape}")

    _, observed, _ = forward_shot(true_model, nt, dt)
    _, predicted, fwd_snaps = forward_shot(smooth_model, nt, dt)
    residual = observed - predicted
    print(f"residual energy: {float(np.square(residual).sum()):.3e} "
          f"(observed {float(np.square(observed).sum()):.3e})")
    assert np.abs(residual).max() > 0.02 * np.abs(observed).max(), "reflector must reflect"

    back_snaps = backpropagate(smooth_model, residual, nt, dt)

    # zero-lag imaging condition at matching snapshot times (back-prop time
    # nt - t corresponds to forward time t)
    image = np.zeros(true_model.grid.shape, dtype=np.float64)
    for t1, fwd in fwd_snaps:
        bt = nt - t1 + 8
        if bt in back_snaps:
            image += fwd.astype(np.float64) * back_snaps[bt]

    nbl = true_model.nbl
    interior = image[nbl:-nbl, nbl:-nbl, nbl:-nbl]
    depth_profile = np.abs(interior).sum(axis=(0, 1))
    # standard RTM post-processing: mute the near-surface source/receiver
    # crosstalk artifact before interpreting the image
    mute = 6
    peak_z = mute + int(np.argmax(depth_profile[mute:]))
    print("depth profile of |image| (normalised):")
    prof = depth_profile / depth_profile.max()
    for z in range(0, SHAPE[2], 2):
        bar = "#" * int(40 * prof[z])
        marker = " <-- true reflector" if z == REFLECTOR_Z else ""
        print(f"z={z:3d} |{bar}{marker}")
    print(f"\nimage peak at z={peak_z}, true reflector at z={REFLECTOR_Z}")
    assert abs(peak_z - REFLECTOR_Z) <= 8, "image energy should focus near the reflector"


if __name__ == "__main__":
    main()
