"""Regenerate the paper's evaluation (Table I, Figs. 9-11) in one run.

Drives the same model/tuner code as the benchmark harness and prints every
table and figure analogue to stdout.  This is the quickest way to inspect the
reproduced results without pytest.

Run:  python examples/paper_evaluation.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from paper_setup import (  # noqa: E402
    KINDS,
    MACHINES,
    PAPER_SPEEDUPS,
    SPACE_ORDERS,
    kernel_spec,
    paper_geometry,
    single_source_load,
    source_load_for,
)
from repro.analysis import render_series, render_table  # noqa: E402
from repro.autotuning import tune_spatial, tune_wavefront  # noqa: E402
from repro.machine import BROADWELL, PerformanceModel  # noqa: E402
from repro.machine.roofline import render_roofline, roofline_points  # noqa: E402


def table1():
    rows = []
    for machine in MACHINES:
        for kind in KINDS:
            for so in SPACE_ORDERS:
                pm = PerformanceModel(kernel_spec(kind, so), machine,
                                      paper_geometry(kind), single_source_load())
                s = tune_wavefront(pm).schedule
                rows.append([f"{kind} O({1 if kind == 'elastic' else 2},{so})",
                             machine.name,
                             f"{s.tile[0]}, {s.tile[1]}, {s.block[0]}, {s.block[1]}",
                             s.height])
    print(render_table(["Problem", "Machine", "tile/block", "height"], rows,
                       title="TABLE I analogue: tuned WTB shapes"))


def fig9():
    for machine in MACHINES:
        rows = []
        for kind in KINDS:
            for so in SPACE_ORDERS:
                pm = PerformanceModel(kernel_spec(kind, so), machine,
                                      paper_geometry(kind), single_source_load())
                b = pm.evaluate(tune_spatial(pm))
                w = pm.evaluate(tune_wavefront(pm).schedule)
                rows.append([kind, so, f"{b.time_s / w.time_s:.2f}x",
                             f"{PAPER_SPEEDUPS[(machine.name, kind)][so]:.2f}x"])
        print()
        print(render_table(["kernel", "so", "modelled speedup", "paper"], rows,
                           title=f"Fig. 9 analogue — {machine.name}"))


def fig10():
    spec = kernel_spec("acoustic", 4)
    geo = paper_geometry("acoustic")
    counts = (1, 16, 256, 4096, 65536, 1048576, 8388608)
    series = {}
    for placement in ("plane", "volume"):
        vals = []
        for n in counts:
            pm = PerformanceModel(spec, BROADWELL, geo, source_load_for(n, placement))
            vals.append(round(pm.evaluate(tune_spatial(pm)).time_s
                              / pm.evaluate(tune_wavefront(pm).schedule).time_s, 3))
        series[placement] = vals
    print()
    print(render_series(list(counts), series, x_label="#sources",
                        title="Fig. 10 analogue: speedup vs #sources (acoustic so4, Broadwell)"))


def fig11():
    points = []
    for so in SPACE_ORDERS:
        pm = PerformanceModel(kernel_spec("acoustic", so), BROADWELL,
                              paper_geometry("acoustic"), single_source_load())
        points.extend(roofline_points(pm, {
            f"acoustic so={so} spatial": tune_spatial(pm),
            f"acoustic so={so} WTB": tune_wavefront(pm).schedule,
        }))
    print()
    print(render_roofline(points, machine_name="broadwell"))


def main():
    table1()
    fig9()
    fig10()
    fig11()


if __name__ == "__main__":
    main()
