"""Multi-physics: TTI and elastic propagators under temporal blocking.

Exercises the two multi-sweep kernels of §III — the coupled anisotropic
acoustic (TTI) system and the nine-field velocity–stress elastic system —
whose wavefront angle must be widened by the per-sweep radii (Fig. 8b), and
verifies the temporally blocked runs against the naive schedule.

Run:  python examples/multi_physics.py
"""

import time

import numpy as np

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.machine import KernelSpec
from repro.propagators import (
    ElasticPropagator,
    SeismicModel,
    TTIPropagator,
    layered_velocity,
    point_source,
    receiver_line,
)


def run_kind(kind: str, shape=(30, 26, 24), so=4, nt=20):
    vp = layered_velocity(shape, 1.5, 2.8, 3)
    extra = {}
    if kind == "tti":
        extra = dict(epsilon=0.15, delta=0.08, theta=0.4, phi=0.25)
        cls = TTIPropagator
    else:
        extra = dict(rho=2.0, vs=vp / 1.9)
        cls = ElasticPropagator
    model = SeismicModel(shape, (10.0,) * 3, vp, nbl=6, space_order=so, **extra)
    dt = model.critical_dt(kind)
    src = point_source("src", model.grid, nt + 2, [model.domain_center], f0=0.02, dt=dt)
    rec = receiver_line("rec", model.grid, nt + 2, npoint=12, depth=25.0)
    prop = cls(model, space_order=so, source=src, receivers=rec)

    spec = KernelSpec.from_operator(prop.op)
    print(f"\n== {kind}: {len(prop.op.sweeps)} sweeps/timestep, "
          f"wavefront angle {prop.op.wavefront_angle}, "
          f"{spec.flops_per_point_step:.0f} flops/pt, "
          f"{spec.state_bytes_per_point:.0f} B/pt state ==")
    print("per-sweep lags (one tile of height 3):",
          __import__("repro.core", fromlist=["instance_lags"]).instance_lags(
              tuple(s.read_radius() for s in prop.op.sweeps), 3))

    t0 = time.perf_counter()
    rec_ref, _ = prop.forward(nt=nt, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid")
    t_naive = time.perf_counter() - t0
    state_ref = np.concatenate([f.interior(nt).ravel() for f in prop.fields])

    t0 = time.perf_counter()
    rec_wtb, _ = prop.forward(
        nt=nt, dt=dt, schedule=WavefrontSchedule(tile=(12, 12), block=(6, 6), height=4)
    )
    t_wtb = time.perf_counter() - t0
    state_wtb = np.concatenate([f.interior(nt).ravel() for f in prop.fields])

    d_state = np.abs(state_wtb - state_ref).max()
    d_rec = np.abs(rec_wtb - rec_ref).max()
    print(f"naive {t_naive:.2f}s, wavefront {t_wtb:.2f}s (interpreter timings)")
    print(f"max state diff {d_state:.3e}, max receiver diff {d_rec:.3e}")
    scale = max(np.abs(state_ref).max(), 1e-30)
    assert d_state <= 1e-5 * scale, f"{kind}: schedules disagree"
    return d_state


def main():
    for kind in ("tti", "elastic"):
        run_kind(kind)
    print("\nboth multi-sweep kernels agree across schedules.")


if __name__ == "__main__":
    main()
