"""Anatomy of the precomputation scheme (§II, Figs. 5-6, Listings 2-5).

Walks through the paper's pipeline step by step on a small 2-D grid so the
data structures are printable:

1. place off-the-grid sources,
2. discover the affected grid points (probe injection, Listing 2),
3. build the binary source mask SM and the source-ID map SID (Fig. 5),
4. decompose the wavelets to per-affected-point series (Listing 3),
5. compress the iteration space (nnz mask + Sp_SID, Fig. 6 / Listing 5),
6. print the generated C for the fused and compressed loop nests.

Run:  python examples/inspect_precomputation.py
"""

import numpy as np

from repro.core import build_masks, decompose_source
from repro.core.precompute import affected_points_analytic, affected_points_by_injection
from repro.dsl import Eq, Function, Grid, SparseTimeFunction, TimeFunction, solve
from repro.ir import Operator


def show_plane(arr, title):
    print(f"\n{title}")
    for row in arr:
        print(" ".join(f"{int(v):3d}" for v in row))


def main():
    grid = Grid(shape=(8, 8), extent=(70.0, 70.0))
    nt = 6
    # three off-the-grid sources; two share support points (Fig. 5's overlap)
    coords = np.array([[12.3, 7.9], [51.0, 52.7], [55.4, 55.2]])
    src = SparseTimeFunction("src", grid, npoint=3, nt=nt, coordinates=coords)
    src.data[:] = np.linspace(1, 2, nt)[:, None] * np.array([1.0, 0.5, -1.0])

    print("off-the-grid source coordinates (grid spacing = 10):")
    print(coords)

    # Listing 2 vs analytic discovery
    by_probe = affected_points_by_injection(src)
    analytic = affected_points_analytic(src)
    assert np.array_equal(by_probe, analytic)
    print(f"\naffected grid points (npts = {len(analytic)}), both discovery methods agree:")
    print(analytic.T)

    masks = build_masks(src)
    show_plane(masks.sm, "SM — binary source mask (Fig. 5b):")
    show_plane(masks.sid, "SID — unique ids, -1 elsewhere (Fig. 5c):")
    show_plane(masks.nnz.reshape(-1, 1).T, "nnz per x-pencil (Fig. 6):")
    print(f"\npencil occupancy: {masks.pencil_occupancy():.2%} "
          f"(the compressed z2 loop skips the rest)")
    print(f"auxiliary structure footprint: {masks.memory_bytes()} bytes")

    # Listing 3: decomposition
    u = TimeFunction("u", grid, time_order=2, space_order=2)
    m = Function("m", grid, space_order=2)
    m.data = 1.0
    dt_sym = grid.stepping_dim.spacing
    inj = src.inject(u, expr=dt_sym**2 / m)
    dsrc = decompose_source(inj, dt=1.0, masks=masks)
    print(f"\nsrc_dcmp shape (nt x npts): {dsrc.data.shape}")
    print("src_dcmp[t=2] per affected point:")
    print(np.round(dsrc.data[2], 4))
    # conservation: total injected amplitude is preserved per timestep
    for t in range(nt):
        assert np.isclose(dsrc.data[t].sum(), src.data[t].sum(), rtol=1e-5)
    print("amplitude conservation per timestep: OK")

    # Listings 4/5: the generated loop nests
    update = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    op = Operator([update], sparse=[inj], name="demo2d")

    from repro.core import TemporalBlockingPipeline

    pipe = TemporalBlockingPipeline(op, dt=1.0).precompute()
    print()
    print(pipe.report().render())
    print("\n--- fused injection (Listing 4 shape) ---")
    print("\n".join(op.ccode("fused").splitlines()[2:]))
    print("\n--- compressed injection (Listing 5 shape) ---")
    tail = [l for l in op.ccode("compressed").splitlines() if "nnz" in l or "Sp_SID" in l or "zind" in l]
    print("\n".join(tail))


if __name__ == "__main__":
    main()
