"""Quickstart: define a wave equation symbolically, add an off-the-grid
source and receivers, and run it under wave-front temporal blocking.

This is the paper's running example end-to-end:

1. write the PDE exactly as the paper's symbolic listing,
2. run the naive schedule (Listing 1 semantics),
3. run the same operator under WTB — the sparse operators are automatically
   precomputed into grid-aligned structures (Listings 2-5) so the time-tiled
   traversal (Listing 6) is legal,
4. check the two agree bit-for-bit and show the generated C for both.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Eq,
    Function,
    Grid,
    NaiveSchedule,
    Operator,
    SparseTimeFunction,
    TimeFunction,
    WavefrontSchedule,
    solve,
)


def main():
    # -- 1. the problem, symbolically -------------------------------------------
    grid = Grid(shape=(48, 48, 48), extent=(470.0, 470.0, 470.0))
    u = TimeFunction("u", grid, time_order=2, space_order=8)
    m = Function("m", grid, space_order=8)
    m.data = 1.0 / 1.5**2  # water-speed square slowness (km/s)

    eq = m * u.dt2 - u.laplace
    update = Eq(u.forward, solve(eq, u.forward))

    # an off-the-grid source (not on any grid point!) and three receivers
    nt = 60
    src = SparseTimeFunction(
        "src", grid, npoint=1, nt=nt + 1, coordinates=np.array([[236.1, 233.7, 121.9]])
    )
    t = np.arange(nt + 1, dtype=np.float64)
    f0 = 0.025
    src.data[:, 0] = (1 - 2 * (np.pi * f0 * (t - 40)) ** 2) * np.exp(-((np.pi * f0 * (t - 40)) ** 2))
    rec = SparseTimeFunction(
        "rec", grid, npoint=3, nt=nt + 1,
        coordinates=np.array([[100.5, 235.0, 50.2], [235.0, 235.0, 50.2], [370.5, 235.0, 50.2]]),
    )

    dt_sym = grid.stepping_dim.spacing
    op = Operator(
        [update],
        sparse=[src.inject(u, expr=dt_sym**2 / m), rec.interpolate(u)],
        name="quickstart",
    )
    print(op)
    print(f"wavefront angle per timestep: {op.wavefront_angle} (space order 8)")

    # -- 2. naive reference run ---------------------------------------------------
    dt = 2.0  # ms, stable for 1.5 km/s on a ~10 m grid
    op.apply(time_M=nt, dt=dt, schedule=NaiveSchedule())
    u_ref = u.interior(nt).copy()
    rec_ref = rec.data.copy()

    # -- 3. temporally blocked run -------------------------------------------------
    u.data_with_halo[...] = 0
    rec.data[...] = 0
    wtb = WavefrontSchedule(tile=(16, 16), block=(8, 8), height=4)
    op.apply(time_M=nt, dt=dt, schedule=wtb)

    # -- 4. identical results -------------------------------------------------------
    du = np.abs(u.interior(nt) - u_ref).max()
    dr = np.abs(rec.data - rec_ref).max()
    print(f"max |u_wtb - u_naive|   = {du:.3e}")
    print(f"max |rec_wtb - rec_ref| = {dr:.3e}")
    assert du == 0.0 and dr == 0.0, "schedules must agree bit-for-bit"
    print("wavefront temporal blocking reproduces the naive schedule exactly.")

    print("\n--- generated C, naive (Listing 1 shape), first lines ---")
    print("\n".join(op.ccode("naive").splitlines()[:12]))
    print("\n--- generated C, wavefront (Listing 6 shape), first lines ---")
    print("\n".join(op.ccode("wavefront", schedule=wtb).splitlines()[:14]))


if __name__ == "__main__":
    main()
