"""Seismic acquisition: model one shot over a layered earth model.

The motivating workload of the paper's introduction: a Ricker point source
injected into a layered subsurface, a surface line of receivers recording
the returning wavefield — i.e. one shot of a full-waveform-inversion /
reverse-time-migration survey.  The shot is modelled twice (naive and
wave-front temporally blocked), the shot records are verified identical, and
a small ASCII shot gather is printed.

Run:  python examples/seismic_acquisition.py
"""

import numpy as np

from repro.core import NaiveSchedule, WavefrontSchedule
from repro.propagators import (
    AcousticPropagator,
    SeismicModel,
    layered_velocity,
    point_source,
    receiver_line,
)


def ascii_gather(data: np.ndarray, rows: int = 18, cols: int = 64) -> str:
    """Render a shot record (nt x nrec) as an ASCII amplitude map."""
    nt, nrec = data.shape
    t_idx = np.linspace(0, nt - 1, rows).astype(int)
    r_idx = np.linspace(0, nrec - 1, min(cols, nrec)).astype(int)
    sub = data[np.ix_(t_idx, r_idx)]
    peak = np.abs(sub).max() or 1.0
    glyphs = " .:-=+*#%@"
    lines = []
    for r, row in zip(t_idx, sub):
        cells = "".join(glyphs[min(int(abs(v) / peak * (len(glyphs) - 1) * 3), len(glyphs) - 1)] for v in row)
        lines.append(f"t={r:4d} |{cells}|")
    return "\n".join(lines)


def main():
    shape = (60, 44, 40)
    spacing = (10.0, 10.0, 10.0)
    vp = layered_velocity(shape, v_top=1.5, v_bottom=3.2, nlayers=4)
    model = SeismicModel(shape, spacing, vp, nbl=8, space_order=8)
    print(model)

    dt = model.critical_dt("acoustic")
    tn = 160.0  # ms
    nt = model.nt_for(tn, dt)
    print(f"dt = {dt:.3f} ms (CFL), {nt} timesteps for {tn:.0f} ms")

    centre = model.domain_center
    src_coords = [(centre[0] + 3.3, centre[1] - 2.1, 24.7)]  # near-surface, off-grid
    src = point_source("src", model.grid, nt + 2, src_coords, f0=0.020, dt=dt)
    rec = receiver_line("rec", model.grid, nt + 2, npoint=48, depth=18.0)

    prop = AcousticPropagator(model, space_order=8, source=src, receivers=rec)

    shot_naive, _ = prop.forward(nt=nt, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid")
    shot_wtb, _ = prop.forward(
        nt=nt, dt=dt, schedule=WavefrontSchedule(tile=(20, 20), block=(10, 10), height=5)
    )

    diff = np.abs(shot_wtb - shot_naive).max()
    print(f"max |WTB - naive| over the shot record: {diff:.3e}")
    assert diff < 1e-5 * max(np.abs(shot_naive).max(), 1e-30)

    print("\nshot gather (receiver offset -> right, time -> down):")
    print(ascii_gather(shot_wtb))

    detected = np.abs(shot_wtb) > 0.2 * np.abs(shot_wtb).max()
    arrivals = np.where(detected.any(axis=0), np.argmax(detected, axis=0), -1)
    mid = len(arrivals) // 2
    # farthest receiver with a detected arrival
    hit = np.flatnonzero(arrivals >= 0)
    near, far = mid, hit[np.argmax(np.abs(hit - mid))]
    print(f"\nfirst-arrival sample at near offset: {arrivals[near]}, "
          f"farthest detected offset: {arrivals[far]}")
    assert arrivals[far] >= arrivals[near], "moveout: far receivers record later"


if __name__ == "__main__":
    main()
