"""Shared constants and builders for the paper-reproduction benchmarks.

§IV-B test-case setup: 512^3 velocity models, spacing 10 m (isotropic /
elastic) and 20 m (TTI), 512 ms of propagation in single precision giving
228 (acoustic), 436 (elastic) and 587 (TTI) timesteps, one Ricker source,
absorbing boundary layers.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.machine import BROADWELL, GridGeometry, KernelSpec, SKYLAKE, SourceLoad
from repro.propagators import (
    AcousticPropagator,
    ElasticPropagator,
    SeismicModel,
    TTIPropagator,
    layered_velocity,
)

PAPER_SHAPE = (512, 512, 512)
PAPER_STEPS = {"acoustic": 228, "elastic": 436, "tti": 587}
PAPER_SPACING = {"acoustic": 10.0, "elastic": 10.0, "tti": 20.0}
SPACE_ORDERS = (4, 8, 12)
KINDS = ("acoustic", "elastic", "tti")
MACHINES = (BROADWELL, SKYLAKE)

#: paper-reported speedups (Fig. 9, read off the bars / §IV-D text), used by
#: EXPERIMENTS.md and the shape assertions
PAPER_SPEEDUPS = {
    ("broadwell", "acoustic"): {4: 1.60, 8: 1.25, 12: 1.00},
    ("broadwell", "elastic"): {4: 1.30, 8: 1.13, 12: 1.05},
    ("broadwell", "tti"): {4: 1.44, 8: 1.10, 12: 1.05},
    ("skylake", "acoustic"): {4: 1.55, 8: 1.20, 12: 1.00},
    ("skylake", "elastic"): {4: 1.22, 8: 1.00, 12: 1.00},
    ("skylake", "tti"): {4: 1.44, 8: 1.13, 12: 1.00},
}


def build_propagator(kind: str, space_order: int, shape=(16, 16, 16), nbl=4):
    """A small-grid propagator: the kernel spec it yields is shape-independent."""
    vp = layered_velocity(shape, 1.5, 3.0, 3)
    kwargs = {}
    if kind == "tti":
        kwargs = dict(epsilon=0.12, delta=0.05, theta=0.35, phi=0.4)
    if kind == "elastic":
        kwargs = dict(rho=1.8, vs=vp / 1.8)
    h = PAPER_SPACING[kind]
    model = SeismicModel(shape, (h,) * 3, vp, nbl=nbl, space_order=space_order, **kwargs)
    cls = {
        "acoustic": AcousticPropagator,
        "tti": TTIPropagator,
        "elastic": ElasticPropagator,
    }[kind]
    return cls(model, space_order=space_order)


@lru_cache(maxsize=None)
def kernel_spec(kind: str, space_order: int) -> KernelSpec:
    prop = build_propagator(kind, space_order)
    return KernelSpec.from_operator(prop.op, name=f"{kind}-so{space_order}")


def paper_geometry(kind: str) -> GridGeometry:
    return GridGeometry(PAPER_SHAPE, PAPER_STEPS[kind])


def single_source_load() -> SourceLoad:
    """One off-the-grid Ricker source: 8 affected points, 4 pencils."""
    return SourceLoad(nsources=1, npts=8, corners=8, occupied_pencils=4)


def expected_affected_points(nsources: int, grid_points: int, support: int = 8) -> float:
    """Expected unique affected points for uniformly random sources.

    Collision-corrected occupancy: ``N * (1 - exp(-support*nsources/N))``;
    validated against exact counting in tests/analysis/test_fig10_estimates.py.
    """
    n = float(grid_points)
    return n * (1.0 - math.exp(-support * nsources / n))


def source_load_for(nsources: int, placement: str, shape=PAPER_SHAPE) -> SourceLoad:
    """Fig. 10 source loads: 'plane' (one x-y slice) or 'volume' (dense 3-D)."""
    nx, ny, nz = shape
    if placement == "plane":
        # sources jittered off a z-plane touch 2 z-slices of nx*ny points
        plane_points = 2.0 * nx * ny
        npts = expected_affected_points(nsources, int(plane_points), support=8)
        pencils = expected_affected_points(nsources, nx * ny, support=4)
    elif placement == "volume":
        npts = expected_affected_points(nsources, nx * ny * nz, support=8)
        pencils = expected_affected_points(nsources, nx * ny, support=4)
    else:
        raise ValueError(f"unknown placement {placement!r}")
    return SourceLoad(
        nsources=nsources,
        npts=int(round(npts)),
        corners=8,
        occupied_pencils=int(round(pencils)),
    )
