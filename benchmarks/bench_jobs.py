"""Batch-execution service bench: pool throughput vs serial under chaos.

Runs the same batch of small propagation jobs (the job service's seed-
perturbed survey shots) through the serial executor (``workers=0``) and the
multiprocess pool (``workers=4``) at injected-fault rates of 0%, 10% and
20%, records throughput (completed jobs per second of batch wall-clock) and
completion rate for each cell, and writes the machine-readable
``BENCH_jobs.json`` at the repo root so later PRs can track the resilience
trajectory.

Both executors see the *same* chaos plan per fault rate (same batch seed ⇒
same faulting jobs, same fault timesteps), so the comparison isolates the
executor, not the luck of the draw.  Every completed cell is also checked
for zero lost jobs — a resilience bench that quietly drops work would be
measuring the wrong thing.

Each pool cell also records the warm-worker attribution: per-job phase
seconds (``spawn``/``compile``/``compute``/``io``) summed over completed
attempts, and the ``warm_over_cold`` throughput ratio (mean cold-attempt
seconds over mean warm-attempt seconds — how much a daemon's second job
gains from hot kernel/step caches) alongside ``pool_over_serial``.

A second section measures the cost of the observability layer itself:
paired warm-pool runs of the same batch with the metrics registry + phase
accountant on (the default) and off (``metrics=False``), interleaved to
cancel machine drift, summarised as the median of per-pair wall-clock
ratios (robust to one noisy pair).  The slow-marked pytest gate holds the
median overhead to <= 3% on the warm path.

Run directly::

    PYTHONPATH=src python benchmarks/bench_jobs.py
    PYTHONPATH=src python benchmarks/bench_jobs.py --smoke   # CI perf gate

or through pytest (slow-marked)::

    pytest benchmarks/bench_jobs.py -m slow

The ≥2× pool-over-serial throughput gate only holds where the pool can
actually run in parallel; the pytest gate skips on single-core containers
(the JSON artefact still records the measured ratio).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.jobs import ChaosConfig, JobSpec, run_batch
from repro.jobs.spec import PHASE_KEYS

NJOBS = 16
NT = 128
POOL_WORKERS = 4
BATCH_SEED = 1234
FAULT_RATES = (0.0, 0.1, 0.2)
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_jobs.json"

# metrics-overhead section: paired on/off runs, fault-free warm path
OVERHEAD_PAIRS = 5
OVERHEAD_JOBS = 8
OVERHEAD_NT = 64
OVERHEAD_GATE = 1.03


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_specs():
    return [
        JobSpec(f"shot-{i:02d}", nt=NT, seed=i, checkpoint_every=8, max_attempts=4)
        for i in range(NJOBS)
    ]


def run_cell(workers: int, fault_rate: float, specs=None) -> dict:
    """One (executor, fault-rate) cell: run the batch, summarise it."""
    chaos = ChaosConfig(fault_rate=fault_rate) if fault_rate > 0 else None
    t0 = time.perf_counter()
    report = run_batch(
        specs or build_specs(), workers=workers, chaos=chaos, batch_seed=BATCH_SEED
    )
    wall = time.perf_counter() - t0
    assert report.ok, "resilience bench lost jobs — measuring the wrong thing"
    return {
        "wall_seconds": wall,
        "throughput_jobs_per_s": report.completed / wall,
        "completion_rate": report.completion_rate,
        "completed": report.completed,
        "retries": report.retries,
        # warm-pool attribution: where each attempt's time went
        # (spawn = dispatch→daemon latency, compile = operator precompute,
        # compute = sweeps+sparse, io = checkpoint+guard) and how warm
        # attempts compare to the cold first job of each daemon
        "phases": report.phase_totals(),
        "warm_attempts": report.warm_attempts,
        "cold_attempts": report.cold_attempts,
        "warm_over_cold": report.warm_over_cold(),
        "workers_spawned": report.workers_spawned,
        # supervisor-robustness tallies: all zero in a healthy bench (the
        # ok-assertion above already guarantees nothing was quarantined)
        "quarantined": report.quarantined,
        "hung_workers": report.hung_workers,
    }


def run_bench() -> dict:
    cells = {}
    for rate in FAULT_RATES:
        key = f"{int(rate * 100)}pct"
        serial = run_cell(0, rate)
        pool = run_cell(POOL_WORKERS, rate)
        cells[key] = {
            "fault_rate": rate,
            "serial": serial,
            "pool": pool,
            "pool_over_serial": (
                pool["throughput_jobs_per_s"] / serial["throughput_jobs_per_s"]
            ),
            "warm_over_cold": pool["warm_over_cold"],
        }
    return {
        "bench": "jobs",
        "workload": {
            "jobs": NJOBS,
            "nt": NT,
            "example": "acoustic",
            "schedule": "wavefront",
            "engine": "fused",
            "checkpoint_every": 8,
            "batch_seed": BATCH_SEED,
            "pool_workers": POOL_WORKERS,
        },
        "usable_cores": usable_cores(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "fault_rates": cells,
        "metrics_overhead": run_overhead(),
    }


def _timed_batch(specs, metrics) -> float:
    t0 = time.perf_counter()
    report = run_batch(
        specs, workers=POOL_WORKERS, batch_seed=BATCH_SEED, metrics=metrics
    )
    wall = time.perf_counter() - t0
    assert report.ok
    return wall


def run_overhead() -> dict:
    """Median-of-ratios wall-clock cost of the metrics layer on the warm
    path: OVERHEAD_PAIRS interleaved (metrics on, metrics off) runs of the
    same fault-free batch through the multiprocess pool."""
    specs = [
        JobSpec(f"ovh-{i:02d}", nt=OVERHEAD_NT, seed=500 + i, checkpoint_every=8)
        for i in range(OVERHEAD_JOBS)
    ]
    ratios, on_walls, off_walls = [], [], []
    for pair in range(OVERHEAD_PAIRS):
        # alternate which side runs first so drift cancels across pairs
        if pair % 2 == 0:
            on = _timed_batch(specs, metrics=None)
            off = _timed_batch(specs, metrics=False)
        else:
            off = _timed_batch(specs, metrics=False)
            on = _timed_batch(specs, metrics=None)
        on_walls.append(on)
        off_walls.append(off)
        ratios.append(on / off)
    return {
        "pairs": OVERHEAD_PAIRS,
        "jobs": OVERHEAD_JOBS,
        "nt": OVERHEAD_NT,
        "pool_workers": POOL_WORKERS,
        "on_wall_seconds": on_walls,
        "off_wall_seconds": off_walls,
        "ratios": ratios,
        "median_ratio": float(np.median(ratios)),
        "gate": OVERHEAD_GATE,
    }


def write_report(report, path=RESULT_PATH):
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def print_report(report):
    print(
        f"# jobs bench — {NJOBS} acoustic shots, nt={NT}, "
        f"pool={POOL_WORKERS} workers, {report['usable_cores']} usable core(s)"
    )
    print(
        f"{'faults':<8} {'serial':>12} {'pool':>12} {'pool/serial':>12} "
        f"{'warm/cold':>10} {'retries':>8} {'complete':>9}"
    )
    for key, cell in report["fault_rates"].items():
        ratio = cell["warm_over_cold"]
        print(
            f"{key:<8} {cell['serial']['throughput_jobs_per_s']:>10.2f}/s "
            f"{cell['pool']['throughput_jobs_per_s']:>10.2f}/s "
            f"{cell['pool_over_serial']:>11.2f}x "
            f"{(f'{ratio:.2f}x' if ratio is not None else '-'):>10} "
            f"{cell['serial']['retries'] + cell['pool']['retries']:>8} "
            f"{cell['pool']['completion_rate']:>8.0%}"
        )
        ph = cell["pool"]["phases"]
        print(
            "         pool phases: "
            + "  ".join(f"{k}={ph.get(k, 0.0):.3f}s" for k in PHASE_KEYS)
        )
    ovh = report.get("metrics_overhead")
    if ovh:
        print(
            f"metrics overhead: median {ovh['median_ratio']:.4f}x over "
            f"{ovh['pairs']} paired runs (gate <= {ovh['gate']:.2f}x)"
        )


@pytest.mark.slow
def test_batch_bench_report_and_completion():
    """Acceptance: every cell completes every job (completion rate 1.0 at
    fault rates 0/10/20%) and the JSON trajectory artefact lands at the repo
    root with both executors' throughput recorded."""
    report = run_bench()
    path = write_report(report)
    assert path.exists()
    for cell in report["fault_rates"].values():
        assert cell["serial"]["completion_rate"] == 1.0
        assert cell["pool"]["completion_rate"] == 1.0


@pytest.mark.slow
@pytest.mark.skipif(
    usable_cores() < 2,
    reason="pool-over-serial throughput gate needs >= 2 usable cores",
)
def test_pool_throughput_gate():
    """Acceptance: the 4-worker pool sustains >= 2x serial throughput on the
    fault-free batch (where cores allow parallelism at all)."""
    serial = run_cell(0, 0.0)
    pool = run_cell(POOL_WORKERS, 0.0)
    assert (
        pool["throughput_jobs_per_s"] >= 2.0 * serial["throughput_jobs_per_s"]
    )


@pytest.mark.slow
def test_metrics_overhead_gate():
    """Acceptance: the metrics registry + phase accountant cost <= 3% of
    warm-path wall clock (median of paired on/off ratios).  The artefact
    records the measurement either way."""
    ovh = run_overhead()
    if RESULT_PATH.exists():
        report = json.loads(RESULT_PATH.read_text())
        report["metrics_overhead"] = ovh
        write_report(report)
    assert ovh["median_ratio"] <= OVERHEAD_GATE, ovh["ratios"]


def run_smoke() -> int:
    """CI perf-sanity gate: on a smoke-sized fault-free batch the warm pool
    must at least match serial throughput (the old process-per-attempt pool
    *lost* to serial at 0% faults — this is the regression tripwire).  Skips
    (exit 0) on single-core containers where parallelism cannot exist."""
    cores = usable_cores()
    if cores < 2:
        print(f"perf-sanity: SKIP — {cores} usable core(s), no parallelism")
        return 0
    specs = [
        JobSpec(f"smoke-{i:02d}", nt=64, seed=i, checkpoint_every=8, max_attempts=4)
        for i in range(8)
    ]
    serial = run_cell(0, 0.0, specs=specs)
    pool = run_cell(POOL_WORKERS, 0.0, specs=specs)
    ratio = pool["throughput_jobs_per_s"] / serial["throughput_jobs_per_s"]
    print(
        f"perf-sanity: serial {serial['throughput_jobs_per_s']:.2f}/s, "
        f"warm pool {pool['throughput_jobs_per_s']:.2f}/s "
        f"({ratio:.2f}x, {pool['warm_attempts']} warm / "
        f"{pool['cold_attempts']} cold attempts, {cores} cores)"
    )
    if ratio < 1.0:
        print("perf-sanity: FAIL — warm pool slower than serial at 0% faults")
        return 1
    print("perf-sanity: OK")
    return 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    report = run_bench()
    print_report(report)
    out = write_report(report)
    print(f"\nwrote {out}")
