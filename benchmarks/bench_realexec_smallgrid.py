"""Wall-clock corroboration: real NumPy execution of the three schedules.

The paper-scale (512^3) numbers come from the performance model; this bench
actually *runs* the acoustic propagator on a small grid under each schedule
and times it with pytest-benchmark.  Its purpose is not absolute speed (a
vectorised-NumPy interpreter has very different constants from generated
OpenMP C) but to pin the executors' relative costs and guard against
regressions in the schedule implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from paper_setup import build_propagator
from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule

NT = 8
SHAPE = (36, 36, 36)


@pytest.fixture(scope="module")
def acoustic_prop():
    prop = build_propagator("acoustic", 4, shape=SHAPE, nbl=4)
    from repro.propagators import point_source, receiver_line

    dt = prop.critical_dt()
    prop.source = point_source(
        "src", prop.grid, NT + 2, [prop.model.domain_center], f0=0.02, dt=dt
    )
    prop.receivers = receiver_line("rec", prop.grid, NT + 2, npoint=8, depth=40.0)
    prop._op = None  # rebuild with the sparse operators attached
    return prop, dt


def _run(prop, dt, schedule, mode="auto"):
    rec, _ = prop.forward(nt=NT, dt=dt, schedule=schedule, sparse_mode=mode)
    return rec


@pytest.mark.benchmark(group="realexec")
def test_naive_execution(benchmark, acoustic_prop):
    prop, dt = acoustic_prop
    rec = benchmark(_run, prop, dt, NaiveSchedule(), "offgrid")
    assert np.isfinite(rec).all()


@pytest.mark.benchmark(group="realexec")
def test_spatial_execution(benchmark, acoustic_prop):
    prop, dt = acoustic_prop
    rec = benchmark(_run, prop, dt, SpatialBlockSchedule(block=(12, 12)))
    assert np.isfinite(rec).all()


@pytest.mark.benchmark(group="realexec")
def test_wavefront_execution(benchmark, acoustic_prop):
    prop, dt = acoustic_prop
    rec = benchmark(_run, prop, dt, WavefrontSchedule(tile=(18, 18), block=(9, 9), height=4))
    assert np.isfinite(rec).all()


@pytest.mark.benchmark(group="realexec")
def test_wavefront_matches_naive(benchmark, acoustic_prop):
    """Correctness under timing conditions: WTB == naive bit-for-bit."""
    prop, dt = acoustic_prop
    ref = _run(prop, dt, NaiveSchedule(), "offgrid")

    def check():
        rec = _run(prop, dt, WavefrontSchedule(tile=(18, 18), block=(9, 9), height=4))
        return rec

    rec = benchmark(check)
    np.testing.assert_allclose(rec, ref, rtol=1e-5, atol=1e-6)
