"""Ablation benches for the design choices DESIGN.md calls out.

1. **Generated NumPy kernels vs tree-walking interpreter** — the executor's
   code-generation fast path (the Devito philosophy applied to our own
   substrate).  Same results, measurably faster.
2. **Compressed (Listing 5) vs uncompressed fused injection (Listing 4)** —
   the iteration-space reduction via ``nnz_mask``/``Sp_SID``.  Modelled at
   paper scale: the uncompressed z2 loop scans every grid point per step,
   the compressed one only the affected pencils (§II-A step 5: "Only the
   necessary iterations in z dimension need to be performed").
3. **Wavefront height sweep** — temporal reuse vs skew overhead, the core
   trade-off the autotuner navigates (modelled and cache-simulated).
"""

from __future__ import annotations

import numpy as np
import pytest

from paper_setup import build_propagator, kernel_spec, paper_geometry, single_source_load
from repro.analysis import render_table
from repro.core import NaiveSchedule, WavefrontSchedule
from repro.machine import BROADWELL, PerformanceModel, SourceLoad


# -- 1. compiled vs interpreted executor ------------------------------------------------
@pytest.fixture(scope="module")
def small_prop():
    prop = build_propagator("acoustic", 8, shape=(32, 32, 32), nbl=4)
    from repro.propagators import point_source

    dt = prop.critical_dt()
    prop.source = point_source("src", prop.grid, 10, [prop.model.domain_center], f0=0.02, dt=dt)
    prop._op = None
    return prop, dt


#: a wavefront schedule with small blocks: per-box overhead is where kernel
#: generation pays off (whole-grid sweeps are dominated by array arithmetic)
_SCHED = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=3)


@pytest.mark.benchmark(group="ablation-exec")
def test_compiled_kernels(benchmark, small_prop):
    prop, dt = small_prop

    def run():
        prop.zero_fields()
        prop.op.apply(time_M=6, dt=dt, schedule=_SCHED, compiled=True)

    benchmark(run)


@pytest.mark.benchmark(group="ablation-exec")
def test_interpreted_kernels(benchmark, small_prop):
    prop, dt = small_prop

    def run():
        prop.zero_fields()
        prop.op.apply(time_M=6, dt=dt, schedule=_SCHED, compiled=False)

    benchmark(run)


@pytest.mark.benchmark(group="ablation-exec")
def test_compiled_equals_interpreted(benchmark, small_prop):
    prop, dt = small_prop

    def check():
        prop.forward(nt=6, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid")
        a = prop.u.interior(6).copy()
        prop.zero_fields()
        prop.op.apply(time_M=6, dt=dt, schedule=NaiveSchedule(), sparse_mode="offgrid",
                      compiled=False)
        return a, prop.u.interior(6).copy()

    a, b = benchmark.pedantic(check, rounds=1, iterations=1)
    np.testing.assert_array_equal(a, b)


# -- 2. compressed vs uncompressed injection (modelled, Listing 4 vs 5) ----------------------
@pytest.mark.benchmark(group="ablation-compress")
def test_injection_compression_model(benchmark, report):
    spec = kernel_spec("acoustic", 4)
    geo = paper_geometry("acoustic")
    dtype = 4

    def model_overheads():
        rows = []
        for nsrc, label in ((1, "1 source"), (10**4, "10^4 plane sources")):
            load = single_source_load() if nsrc == 1 else SourceLoad(
                nsources=nsrc, npts=8 * nsrc, corners=8, occupied_pencils=4 * nsrc)
            # Listing 4: the fused z2 loop reads SM + SID + src_dcmp gather for
            # EVERY grid point, every timestep
            uncompressed = dtype * 3.0  # SM (u8->word) + SID + field RMW amortised
            # Listing 5: nnz mask per pencil + work only on affected points
            compressed = (
                geo.points / geo.nz * 4.0 + load.npts * (4.0 + dtype * 3.0)
            ) / geo.points
            rows.append([label, f"{uncompressed:.3f}", f"{compressed:.5f}",
                         f"{uncompressed / max(compressed, 1e-12):.0f}x"])
        return rows

    rows = benchmark.pedantic(model_overheads, rounds=1, iterations=1)
    report(
        "ablation_compression",
        render_table(
            ["source load", "Listing 4 B/pt/step", "Listing 5 B/pt/step", "reduction"],
            rows,
            title="Iteration-space compression (Fig. 6): injection overhead per grid point",
        ),
    )
    # the compressed structure must be orders of magnitude cheaper for sparse loads
    assert float(rows[0][1]) > 100 * float(rows[0][2])


# -- 3. wavefront height sweep -------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-height")
def test_height_sweep_model(benchmark, report):
    spec = kernel_spec("acoustic", 4)
    pm = PerformanceModel(spec, BROADWELL, paper_geometry("acoustic"), single_source_load())

    def sweep():
        rows = []
        for h in (1, 2, 3, 4, 6, 8, 12, 16):
            res = pm.evaluate(WavefrontSchedule(tile=(48, 48), block=(8, 8), height=h))
            rows.append([h, f"{res.gpoints_s:.2f}", res.bound,
                         f"{res.traffic_bytes_ppt['DRAM']:.1f}",
                         "yes" if res.feasible else "NO"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_height",
        render_table(
            ["height", "GPts/s", "bound", "DRAM B/pt/step", "fits L3"],
            rows,
            title="Wavefront height trade-off, acoustic so=4 tile 48x48 (Broadwell)",
        ),
    )
    by_h = {r[0]: float(r[1]) for r in rows}
    assert by_h[2] > by_h[1], "some temporal reuse must beat none"
    # DRAM traffic decreases monotonically in height while feasible
    drams = [float(r[3]) for r in rows if r[4] == "yes"]
    assert all(a >= b - 1e-9 for a, b in zip(drams, drams[1:]))
