"""Fig. 11 — cache-aware roofline for isotropic acoustic on Broadwell.

For space orders 4, 8, 12, place the spatially blocked (red markers in the
paper) and temporally blocked (yellow markers) kernels on the cache-aware
roofline: per-level arithmetic intensity and achieved GFLOP/s.  The paper's
claim: the WTB acoustic kernel "breaks the ceiling of the L3 cache" — its
DRAM arithmetic intensity rises enough that the DRAM/L3 ceilings no longer
pin it.
"""

from __future__ import annotations

import pytest

from paper_setup import kernel_spec, paper_geometry, single_source_load
from repro.autotuning import tune_spatial, tune_wavefront
from repro.machine import BROADWELL, PerformanceModel
from repro.machine.roofline import render_roofline, roofline_points


def _roofline():
    points = []
    for so in (4, 8, 12):
        pm = PerformanceModel(
            kernel_spec("acoustic", so), BROADWELL, paper_geometry("acoustic"), single_source_load()
        )
        schedules = {
            f"acoustic so={so} spatial": tune_spatial(pm),
            f"acoustic so={so} WTB": tune_wavefront(pm).schedule,
        }
        points.extend(roofline_points(pm, schedules))
    return points


@pytest.mark.benchmark(group="fig11")
def test_fig11_roofline(benchmark, report):
    points = benchmark.pedantic(_roofline, rounds=1, iterations=1)
    report("fig11_roofline", render_roofline(points, machine_name="broadwell"))

    by = {p.label: p for p in points}
    for so in (4, 8, 12):
        spatial = by[f"acoustic so={so} spatial"]
        wtb = by[f"acoustic so={so} WTB"]
        # WTB raises the DRAM arithmetic intensity (less DRAM traffic per flop)
        assert wtb.ai["DRAM"] > spatial.ai["DRAM"], "WTB must raise AI at DRAM"
        # and never loses performance
        assert wtb.gflops >= spatial.gflops * 0.98
    # the headline case: so4 breaks the DRAM/L3 pin
    s4, w4 = by["acoustic so=4 spatial"], by["acoustic so=4 WTB"]
    assert s4.bound == "DRAM", "spatial so4 is memory bound (under the ceiling)"
    assert w4.bound != "DRAM", "WTB so4 breaks through the memory ceiling"
    assert w4.gflops > s4.gflops * 1.3
