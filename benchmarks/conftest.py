"""Benchmark-harness fixtures: results directory and report sink."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, os.path.dirname(__file__))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write a named report file and echo it to stdout."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")
        return path

    return _write
