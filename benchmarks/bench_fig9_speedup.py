"""Fig. 9 — throughput speedup of WTB over tuned spatially-blocked code.

One sub-benchmark per machine (Fig. 9a Broadwell, Fig. 9b Skylake): for every
kernel and space order, tune both the spatial baseline and the wavefront
schedule on the paper-scale geometry and report the throughput ratio, with
the paper's measured speedups alongside.
"""

from __future__ import annotations

import pytest

from paper_setup import (
    KINDS,
    PAPER_SPEEDUPS,
    SPACE_ORDERS,
    kernel_spec,
    paper_geometry,
    single_source_load,
)
from repro.analysis import render_speedup_bars, render_table
from repro.autotuning import tune_spatial, tune_wavefront
from repro.machine import BROADWELL, PerformanceModel, SKYLAKE


def _speedups(machine):
    out = []
    for kind in KINDS:
        for so in SPACE_ORDERS:
            pm = PerformanceModel(
                kernel_spec(kind, so), machine, paper_geometry(kind), single_source_load()
            )
            base_sched = tune_spatial(pm)
            wf_sched = tune_wavefront(pm).schedule
            base = pm.evaluate(base_sched)
            wf = pm.evaluate(wf_sched)
            out.append(
                dict(
                    kind=kind,
                    so=so,
                    speedup=base.time_s / wf.time_s,
                    base_gpts=base.gpoints_s,
                    wf_gpts=wf.gpoints_s,
                    paper=PAPER_SPEEDUPS[(machine.name, kind)][so],
                )
            )
    return out


def _report(machine, rows, report, tag):
    table = render_table(
        ["kernel", "space order", "spatial GPts/s", "WTB GPts/s", "speedup", "paper speedup"],
        [
            [r["kind"], r["so"], f"{r['base_gpts']:.2f}", f"{r['wf_gpts']:.2f}",
             f"{r['speedup']:.2f}x", f"{r['paper']:.2f}x"]
            for r in rows
        ],
        title=f"Fig. 9{tag}: WTB speedup over spatially-blocked baseline — {machine.name}",
    )
    bars = render_speedup_bars(
        [f"{r['kind']} so={r['so']}" for r in rows],
        [r["speedup"] for r in rows],
    )
    report(f"fig9{tag}_speedup_{machine.name}", table + "\n\n" + bars)

    # shape assertions: the paper's qualitative claims
    by = {(r["kind"], r["so"]): r["speedup"] for r in rows}
    for kind in KINDS:
        assert by[(kind, 4)] >= by[(kind, 8)] - 0.02, "gains must shrink with space order"
        assert by[(kind, 8)] >= by[(kind, 12)] - 0.05
        assert by[(kind, 12)] >= 0.95, "so12 should be neutral, not a slowdown"
    assert by[("acoustic", 4)] == max(by[(k, 4)] for k in KINDS), (
        "acoustic benefits the most at so4 (paper §IV-D)"
    )
    assert by[("acoustic", 4)] >= 1.4, "headline: substantial (>1.4x) acoustic gain"


@pytest.mark.benchmark(group="fig9")
def test_fig9a_broadwell(benchmark, report):
    rows = benchmark.pedantic(_speedups, args=(BROADWELL,), rounds=1, iterations=1)
    _report(BROADWELL, rows, report, "a")


@pytest.mark.benchmark(group="fig9")
def test_fig9b_skylake(benchmark, report):
    rows = benchmark.pedantic(_speedups, args=(SKYLAKE,), rounds=1, iterations=1)
    _report(SKYLAKE, rows, report, "b")
