"""Fig. 10 — speedup vs number of off-the-grid sources (corner cases, §IV-E).

Isotropic acoustic, space order 4, Broadwell.  Two placements, as in the
paper: (a) increasing source counts scattered over one x-y plane slice, and
(b) increasing source counts densely/uniformly over the whole 3-D volume.
The decomposition overhead scales with the number of *affected grid points*,
so gains persist until density destroys the sparsity the compressed scheme
exploits — then drop mildly (paper: ~1.55x -> ~1.4x) but stay > 1.
"""

from __future__ import annotations

import pytest

from paper_setup import kernel_spec, paper_geometry, source_load_for
from repro.analysis import render_series
from repro.autotuning import tune_spatial, tune_wavefront
from repro.machine import BROADWELL, PerformanceModel

SOURCE_COUNTS = (1, 16, 256, 4096, 65536, 1048576, 8388608)


def _sweep():
    spec = kernel_spec("acoustic", 4)
    geo = paper_geometry("acoustic")
    series = {"plane": [], "volume": []}
    for placement in ("plane", "volume"):
        for n in SOURCE_COUNTS:
            load = source_load_for(n, placement)
            pm = PerformanceModel(spec, BROADWELL, geo, load)
            base = pm.evaluate(tune_spatial(pm))
            wf = pm.evaluate(tune_wavefront(pm).schedule)
            series[placement].append(base.time_s / wf.time_s)
    return series


@pytest.mark.benchmark(group="fig10")
def test_fig10_source_scaling(benchmark, report):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = render_series(
        list(SOURCE_COUNTS),
        {k: [round(v, 3) for v in vs] for k, vs in series.items()},
        x_label="#sources",
        title="Fig. 10: acoustic so=4 WTB speedup vs number of sources (Broadwell)",
    )
    report("fig10_sources", text)

    plane, volume = series["plane"], series["volume"]
    # sparse plane sources: performance gains are not affected
    assert max(plane) - min(plane) < 0.25 * max(plane), (
        "plane-source speedup should stay roughly flat"
    )
    # dense volume sources: gains degrade but remain substantial (> 1.2x)
    assert volume[-1] < volume[0] - 0.05, "dense sources must cost something"
    assert volume[-1] > 1.2, "paper: ~1.4x even at full density"
    # degradation only kicks in once the grid saturates
    assert volume[2] > volume[0] - 0.05, "moderate counts should be free"
