"""Simulated-cache corroboration of the traffic model.

Replays the exact pencil-level access streams of the spatial and wavefront
schedules through the LRU cache-hierarchy simulator on a scaled-down
geometry, and checks that wavefront blocking cuts last-level misses — the
mechanism behind every speedup the paper reports — and that miss counts
respond to tile height the way the analytical model predicts (gain grows
with height until capacity, then collapses).
"""

from __future__ import annotations

import pytest

from paper_setup import kernel_spec
from repro.analysis import render_table
from repro.core import SpatialBlockSchedule, WavefrontSchedule
from repro.execution.trace import TraceGeometry, simulate_schedule

GEOM = TraceGeometry(40, 40, 64)
CHUNK = GEOM.nz * 4
LEVELS = [("L1", 24 * CHUNK), ("L2", 1500 * CHUNK)]
NSTEPS = 8


def _simulate(schedule):
    return simulate_schedule(
        kernel_spec("acoustic", 4), GEOM, schedule, NSTEPS, LEVELS, warmup_steps=2
    )


@pytest.mark.benchmark(group="cachesim")
def test_cachesim_wavefront_cuts_misses(benchmark, report):
    spatial = _simulate(SpatialBlockSchedule(block=(8, 8)))

    def run():
        rows = []
        results = {}
        for h in (2, 4, 8):
            s = _simulate(WavefrontSchedule(tile=(16, 16), block=(8, 8), height=h))
            results[h] = s
            rows.append([f"WTB 16x16 h={h}", s.memory_fetches,
                         f"{spatial.memory_fetches / s.memory_fetches:.2f}x"])
        # oversized tile: working set exceeds the simulated L2 -> no gain
        big = _simulate(WavefrontSchedule(tile=(24, 24), block=(8, 8), height=4))
        results["big"] = big
        rows.append(["WTB 24x24 h=4 (too big)", big.memory_fetches,
                     f"{spatial.memory_fetches / big.memory_fetches:.2f}x"])
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["schedule", "memory fetches", "reduction vs spatial"],
        [["spatial 8x8", spatial.memory_fetches, "1.00x"]] + rows,
        title=f"Simulated LRU hierarchy, acoustic so=4, {GEOM.nx}x{GEOM.ny}x{GEOM.nz} pencil-granular",
    )
    report("cachesim_acoustic", table)

    assert results[4].memory_fetches < spatial.memory_fetches * 0.75, (
        "a fitting wavefront tile must cut last-level misses by >25%"
    )
    assert results[2].memory_fetches < spatial.memory_fetches
    assert results["big"].memory_fetches > results[4].memory_fetches, (
        "an oversized tile must lose its reuse (capacity cliff)"
    )
