"""Kernel-engine trajectory bench: fused three-address engine vs the seed
per-equation kernels vs the tree-walking interpreter.

Times the small-grid acoustic workload (the wall-clock corroboration setup of
``bench_realexec_smallgrid``) under naive / spatially blocked / wavefront
schedules with each execution engine, prints a table, and writes the
machine-readable ``BENCH_engine.json`` at the repo root so later PRs can
track the perf trajectory.

Two baselines are reported:

* ``kernel`` — the per-equation kernel engine *at HEAD*: an engine-only
  ablation that still benefits from the shared fast paths this engine
  brought along (indexed+memoised sparse lookups, process-wide kernel
  caches, precomputed wavefront step plans).
* ``seed`` — the seed's per-equation kernel path, reconstructed: per-eq
  kernels with unindexed, unmemoised sparse lookups
  (``SourceMasks.indexed = False``) and cold kernel caches per apply, i.e.
  recompilation inside every ``forward`` exactly as the seed paid it.  This
  is the baseline of the headline speedup (validated against a checkout of
  the actual seed commit: reconstruction and seed agree within noise).

Run directly::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --guards

or through pytest (slow-marked)::

    pytest benchmarks/bench_engine.py -m slow

``--guards`` times the fused engine with the runtime health guard attached
at its default cadence (NaN/Inf scan of the written views every
``DEFAULT_CHECK_EVERY`` sweep instances) against unguarded runs, plus a
paired on/off series of the ABFT silent-corruption guard (growth proof,
per-tile amplitude scans, entry micro-snapshots — median-of-ratios
estimator), and merges the per-schedule overhead into
``BENCH_engine.json`` under ``"guards"`` (ABFT under ``"guards"/"abft"``).

``--verify`` times the schedule-legality prover (cold ``prove_schedule``
plus the cached ``certificate_for`` replay every wavefront ``apply`` hits)
and merges the wall-clock into ``BENCH_engine.json`` under ``"verify"``.

``--telemetry`` times the fused engine with a phase-detail
:class:`~repro.telemetry.Telemetry` buffer attached against bare runs,
records the per-phase breakdown / coverage / counters / achieved GPts/s of
the fastest instrumented round, checks receiver bit-identity between the
two series, and merges everything into ``BENCH_engine.json`` under
``"telemetry"``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule
from repro.propagators import point_source, receiver_line

from paper_setup import build_propagator

NT = 16
SHAPE = (36, 36, 36)
SPACE_ORDER = 8
ENGINES = ("fused", "kernel", "interp")
REPEATS = 15
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def schedules():
    return {
        "naive": NaiveSchedule(),
        "spatial": SpatialBlockSchedule(block=(12, 12)),
        "wavefront": WavefrontSchedule(tile=(9, 9), block=(9, 9), height=4),
    }


def build(so=SPACE_ORDER):
    prop = build_propagator("acoustic", so, shape=SHAPE, nbl=4)
    dt = prop.critical_dt()
    prop.source = point_source(
        "src", prop.grid, NT + 2, [prop.model.domain_center], f0=0.02, dt=dt
    )
    prop.receivers = receiver_line("rec", prop.grid, NT + 2, npoint=8, depth=40.0)
    prop._op = None  # rebuild with the sparse operators attached
    return prop, dt


def _plan_masks(plan):
    """All SourceMasks reachable from a plan's sparse operators (raw
    off-the-grid operators, used by unblocked schedules, carry none)."""
    ops = [op for lst in plan.injections.values() for op in lst]
    ops += [op for lst in plan.receivers.values() for op in lst]
    return [op.masks for op in ops if hasattr(op, "masks")]


def time_engines(prop, dt, schedule, repeats=REPEATS):
    """Min-of-N steady-state wall-clock per engine, plus the seed baseline.

    All series are timed in *interleaved rounds* — one measurement per series
    per round, round after round — rather than consecutive per-engine blocks.
    On a shared single-vCPU container, noisy-neighbour interference arrives
    in multi-second waves; consecutive blocks can land one engine entirely
    inside a wave and another entirely outside it, skewing ratios either
    way.  Interleaving makes every series sample the same noise landscape,
    so min-of-rounds converges to each series' quiet-state time and the
    ratios are stable.

    Within each round the fused and kernel engines get an untimed warm run
    first: the seed measurement clears the process-wide kernel caches, and
    the warm run absorbs the one-off recompile so the timed run sees the
    steady state.  The interpreter compiles nothing and needs no warm-up.

    The ``seed`` series reconstructs the seed's per-equation kernel path:
    the kernel engine with ``SourceMasks.indexed = False`` (linear sparse
    scans, no memoisation), the kernel caches cleared before every run so
    each apply recompiles its kernels exactly as the seed did, and — for
    wavefront schedules — ``precompute_steps=False`` so tile geometry is
    rebuilt per time tile, matching the seed's inline-geometry traversal
    (validated against a checkout of the actual seed commit: reconstruction
    and seed agree within noise).
    """
    import dataclasses

    from repro.ir.pycodegen import clear_kernel_caches

    rec, plan = prop.forward(nt=NT, dt=dt, schedule=schedule, engine="kernel")
    assert np.isfinite(rec).all()  # physics sanity before timing anything
    rec, _ = prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")
    assert np.isfinite(rec).all()
    masks = _plan_masks(plan)
    seed_schedule = schedule
    if hasattr(schedule, "precompute_steps"):
        seed_schedule = dataclasses.replace(schedule, precompute_steps=False)

    def timed(engine, sched):
        t0 = time.perf_counter()
        prop.forward(nt=NT, dt=dt, schedule=sched, engine=engine)
        return time.perf_counter() - t0

    series = {name: [] for name in (*ENGINES, "seed")}
    try:
        for _ in range(repeats):
            for engine in ENGINES:
                if engine != "interp":  # absorb recompiles after cache clears
                    prop.forward(nt=NT, dt=dt, schedule=schedule, engine=engine)
                series[engine].append(timed(engine, schedule))
            for m in masks:
                m.indexed = False
            clear_kernel_caches()  # the seed recompiled inside every apply
            series["seed"].append(timed("kernel", seed_schedule))
            for m in masks:
                m.indexed = True
            clear_kernel_caches()
    finally:
        for m in masks:
            m.indexed = True
        clear_kernel_caches()
    return {name: min(vals) for name, vals in series.items()}


def run_bench(repeats=REPEATS):
    prop, dt = build()
    results = {}
    for sched_name, sched in schedules().items():
        results[sched_name] = time_engines(prop, dt, sched, repeats=repeats)
    report = {
        "bench": "engine",
        "workload": {
            "kind": "acoustic",
            "space_order": SPACE_ORDER,
            "shape": list(SHAPE),
            "nbl": 4,
            "nt": NT,
            "repeats": repeats,
            "timing": "min over N interleaved rounds, warm runs before timed",
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "seconds": results,
        "speedup_fused_over_kernel": {
            s: results[s]["kernel"] / results[s]["fused"] for s in results
        },
        "speedup_fused_over_interp": {
            s: results[s]["interp"] / results[s]["fused"] for s in results
        },
        "speedup_fused_over_seed": {
            s: results[s]["seed"] / results[s]["fused"] for s in results
        },
    }
    return report


def write_report(report, path=RESULT_PATH):
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def print_report(report):
    print(f"# engine bench — acoustic so={SPACE_ORDER} {SHAPE}, nt={NT}")
    print(
        f"{'schedule':<12} {'fused':>10} {'kernel':>10} {'interp':>10} "
        f"{'seed':>10} {'fused/seed':>12}"
    )
    for sched, row in report["seconds"].items():
        sp = report["speedup_fused_over_seed"][sched]
        print(
            f"{sched:<12} {row['fused']*1e3:>8.2f}ms {row['kernel']*1e3:>8.2f}ms "
            f"{row['interp']*1e3:>8.2f}ms {row['seed']*1e3:>8.2f}ms {sp:>11.2f}x"
        )


def time_guards(prop, dt, schedule, repeats=REPEATS):
    """Min-of-N fused wall-clock with and without the default health guard.

    Interleaved rounds for the same reason as :func:`time_engines`: both
    series must sample the same noise landscape for the overhead ratio to be
    meaningful.  A fresh :class:`HealthGuard` per round keeps the cadence
    phase identical across rounds.
    """
    from repro.runtime import HealthGuard

    prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")  # warm
    series = {"unguarded": [], "guarded": []}
    for _ in range(repeats):
        t0 = time.perf_counter()
        prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")
        series["unguarded"].append(time.perf_counter() - t0)
        guard = HealthGuard()  # DEFAULT_CHECK_EVERY cadence
        t0 = time.perf_counter()
        prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused", health=guard)
        series["guarded"].append(time.perf_counter() - t0)
    out = {name: min(vals) for name, vals in series.items()}
    out["overhead"] = out["guarded"] / out["unguarded"] - 1.0
    return out


def time_abft(prop, dt, schedule, repeats=REPEATS):
    """Paired on/off wall-clock of the ABFT silent-corruption guard.

    Same interleaved-round discipline, but the estimator is the *median of
    paired on/off ratios* (each round's guarded run divided by its own
    unguarded partner) — on a shared vCPU that isolates the detection cost
    from the multi-second noise waves far better than an unpaired
    min-over-min.  A fresh :class:`ABFTGuard` per round pays the whole cost
    honestly: growth-certificate proof, per-tile amplitude scans and
    entry micro-snapshots included.
    """
    from repro.runtime import ABFTGuard

    prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")  # warm
    series = {"off": [], "on": []}
    for _ in range(repeats):
        t0 = time.perf_counter()
        prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")
        series["off"].append(time.perf_counter() - t0)
        guard = ABFTGuard()
        t0 = time.perf_counter()
        prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused", abft=guard)
        series["on"].append(time.perf_counter() - t0)
    ratios = [on / off for off, on in zip(series["off"], series["on"])]
    return {
        "off": min(series["off"]),
        "on": min(series["on"]),
        "overhead": float(np.median(ratios)) - 1.0,
        "checks": int(guard.stats["checks"]),
        "micro_snapshot_bytes": int(guard.stats["micro_snapshot_bytes"]),
    }


def run_guards_bench(repeats=REPEATS):
    from repro.runtime.health import DEFAULT_CHECK_EVERY

    prop, dt = build()
    results = {}
    abft = {}
    for sched_name, sched in schedules().items():
        results[sched_name] = time_guards(prop, dt, sched, repeats=repeats)
        abft[sched_name] = time_abft(prop, dt, sched, repeats=repeats)
    return {
        "check_every": DEFAULT_CHECK_EVERY,
        "timing": "min over N interleaved rounds, fused engine",
        "seconds": {
            s: {k: row[k] for k in ("unguarded", "guarded")}
            for s, row in results.items()
        },
        "overhead": {s: row["overhead"] for s, row in results.items()},
        "abft": {
            "timing": "median of paired on/off ratios over N interleaved rounds",
            "seconds": {
                s: {k: row[k] for k in ("off", "on")} for s, row in abft.items()
            },
            "overhead": {s: row["overhead"] for s, row in abft.items()},
            "checks": {s: row["checks"] for s, row in abft.items()},
            "micro_snapshot_bytes": {
                s: row["micro_snapshot_bytes"] for s, row in abft.items()
            },
        },
    }


def merge_guards_report(guards, path=RESULT_PATH):
    """Fold the guard-overhead section into the existing trajectory artefact
    (or a fresh skeleton when the engine bench has not run yet)."""
    report = json.loads(path.read_text()) if path.exists() else {"bench": "engine"}
    report["guards"] = guards
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def print_guards_report(guards):
    print(
        f"# health-guard overhead — fused engine, cadence "
        f"check_every={guards['check_every']}"
    )
    print(f"{'schedule':<12} {'unguarded':>12} {'guarded':>12} {'overhead':>10}")
    for sched, row in guards["seconds"].items():
        ov = guards["overhead"][sched]
        print(
            f"{sched:<12} {row['unguarded']*1e3:>10.2f}ms "
            f"{row['guarded']*1e3:>10.2f}ms {ov:>9.2%}"
        )
    abft = guards.get("abft")
    if abft:
        print("# abft guard overhead — paired on/off, fused engine")
        print(
            f"{'schedule':<12} {'off':>12} {'on':>12} {'overhead':>10} "
            f"{'checks':>8} {'snap MB':>9}"
        )
        for sched, row in abft["seconds"].items():
            print(
                f"{sched:<12} {row['off']*1e3:>10.2f}ms {row['on']*1e3:>10.2f}ms "
                f"{abft['overhead'][sched]:>9.2%} {abft['checks'][sched]:>8} "
                f"{abft['micro_snapshot_bytes'][sched]/1e6:>8.2f}M"
            )


def run_verify_bench(repeats=REPEATS):
    """Wall-clock of the static analyses on the bench operator.

    Times, per schedule, a cold :func:`repro.verify.prove_schedule`
    (dependence extraction + per-edge inequalities) and the cached
    :meth:`Operator.certificate_for` replay — the cost every wavefront
    ``apply`` pays at most once per (schedule, sparse-mode) pair — plus the
    abstract-interpretation analyzer alongside it: a cold
    :func:`repro.verify.prove_bounds` (parametric halo-safety proof) and the
    cached :meth:`Operator.bounds_certificate_for` replay.  A one-shot
    ``scratch`` section records the whole-program liveness/coloring verdict
    and the pool shrink it licenses (slots -> slabs).
    """
    from repro.verify import lint_operator, prove_bounds, prove_schedule

    prop, _dt = build()
    op = prop.op
    results = {}
    for sched_name, sched in schedules().items():
        cold = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            cert = prove_schedule(op, sched)
            cold.append(time.perf_counter() - t0)
        op.certificates.clear()
        op.certificate_for(sched)  # populate
        t0 = time.perf_counter()
        op.certificate_for(sched)  # cached replay
        cached = time.perf_counter() - t0
        cold_bounds = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            bcert = prove_bounds(op, sched)
            cold_bounds.append(time.perf_counter() - t0)
        op.bounds_certificates.clear()
        op.bounds_certificate_for(sched)  # populate
        t0 = time.perf_counter()
        op.bounds_certificate_for(sched)  # cached replay
        cached_bounds = time.perf_counter() - t0
        results[sched_name] = {
            "prove": min(cold),
            "cached": cached,
            "edges": len(cert.dependences),
            "legal": bool(cert.check()),
            "absint": min(cold_bounds),
            "absint_cached": cached_bounds,
            "checks": len(bcert.checks),
            "safe": bool(bcert.check()),
        }
    t0 = time.perf_counter()
    lint = lint_operator(op)
    lint_seconds = time.perf_counter() - t0
    live = lint.scratch
    scratch = {
        "analyzer_seconds": lint_seconds,
        "safe_for_slab": bool(live.safe_for_slab) if live is not None else None,
        "slots": live.total_slots if live is not None else None,
        "slabs": live.total_colors if live is not None else None,
    }
    return {
        "timing": (
            "min over N rounds: cold prove_schedule/prove_bounds vs cached "
            "certificate replays"
        ),
        "schedules": results,
        "scratch": scratch,
    }


def merge_verify_report(verify, path=RESULT_PATH):
    report = json.loads(path.read_text()) if path.exists() else {"bench": "engine"}
    report["verify"] = verify
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def print_verify_report(verify):
    print("# schedule-legality prover + abstract-interpretation wall-clock")
    print(
        f"{'schedule':<12} {'prove':>12} {'cached':>12} {'edges':>7} {'legal':>6} "
        f"{'absint':>12} {'checks':>7} {'safe':>6}"
    )
    for sched, row in verify["schedules"].items():
        print(
            f"{sched:<12} {row['prove']*1e3:>10.2f}ms {row['cached']*1e6:>10.2f}us "
            f"{row['edges']:>7} {str(row['legal']):>6} "
            f"{row['absint']*1e3:>10.2f}ms {row['checks']:>7} {str(row['safe']):>6}"
        )
    scratch = verify.get("scratch")
    if scratch:
        print(
            f"scratch: lint+liveness {scratch['analyzer_seconds']*1e3:.2f}ms, "
            f"slab-safe={scratch['safe_for_slab']}, "
            f"{scratch['slots']} slots -> {scratch['slabs']} slabs"
        )


def time_telemetry(prop, dt, schedule, repeats=REPEATS):
    """Min-of-N fused wall-clock with and without a phase-detail telemetry
    buffer, plus the phase breakdown of the fastest instrumented round.

    Interleaved rounds, as everywhere in this bench, so both series sample
    the same noise landscape.  A fresh :class:`Telemetry` per round keeps
    the buffer small and the round self-contained; the buffer belonging to
    the fastest "on" round is the one whose phases/counters are reported —
    its phase sum is the coverage claim, so it must come from the same run
    as the minimum wall-clock, not from an arbitrary round.  Receiver data
    from the two series is compared bit-for-bit: telemetry must observe the
    run, never perturb it.

    The overhead estimator is the *median over rounds of the paired on/off
    ratio*, not ``min(on)/min(off)``: on a shared vCPU, noise arrives in
    multi-second waves, and the two unpaired minima can land in different
    wave states, swinging the unpaired ratio by several percent in either
    direction.  Each round's pair runs back-to-back inside one wave state,
    so its ratio isolates the instrumentation cost, and the median over
    rounds is robust to the rounds where a wave boundary splits a pair.
    ``min(on)/min(off)`` is reported alongside (``overhead_minmin``) for
    comparison with the other sections of this bench.
    """
    from repro.analysis import achieved_gpoints_per_s
    from repro.telemetry import Telemetry

    series = {"off": [], "on": []}
    best = None  # (seconds, telemetry) of the fastest instrumented round
    rec_off = rec_on = None
    prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")  # warm
    # warm instrumented run: populates the persistent instrumentation
    # counts cached on the operator's step cache
    prop.forward(
        nt=NT, dt=dt, schedule=schedule, engine="fused", telemetry=Telemetry()
    )
    for _ in range(repeats):
        t0 = time.perf_counter()
        rec_off, _ = prop.forward(nt=NT, dt=dt, schedule=schedule, engine="fused")
        series["off"].append(time.perf_counter() - t0)
        tel = Telemetry()
        t0 = time.perf_counter()
        rec_on, _ = prop.forward(
            nt=NT, dt=dt, schedule=schedule, engine="fused", telemetry=tel
        )
        elapsed = time.perf_counter() - t0
        series["on"].append(elapsed)
        if best is None or elapsed < best[0]:
            best = (elapsed, tel)
    assert np.array_equal(rec_off, rec_on), "telemetry perturbed the numerics"
    tel = best[1]
    out = {name: min(vals) for name, vals in series.items()}
    ratios = [on / off for off, on in zip(series["off"], series["on"])]
    out["overhead"] = float(np.median(ratios)) - 1.0
    out["overhead_minmin"] = out["on"] / out["off"] - 1.0
    out["coverage"] = tel.coverage()
    out["phases"] = tel.phase_totals()
    out["counters"] = tel.counters.to_dict()
    out["gpoints_per_s"] = achieved_gpoints_per_s(tel)
    return out


def run_telemetry_bench(repeats=25):
    # more rounds than the engine bench: the measurand (a few-percent
    # overhead ratio) is smaller than single-round noise on a shared vCPU,
    # so min-of-N needs a larger N to converge
    prop, dt = build()
    results = {}
    for sched_name, sched in schedules().items():
        results[sched_name] = time_telemetry(prop, dt, sched, repeats=repeats)
    return {
        "detail": "phase",
        "timing": "min over N interleaved rounds, fused engine; "
        "phases/counters from the fastest instrumented round",
        "seconds": {
            s: {k: row[k] for k in ("off", "on")} for s, row in results.items()
        },
        "overhead": {s: row["overhead"] for s, row in results.items()},
        "overhead_minmin": {s: row["overhead_minmin"] for s, row in results.items()},
        "coverage": {s: row["coverage"] for s, row in results.items()},
        "phases": {s: row["phases"] for s, row in results.items()},
        "counters": {s: row["counters"] for s, row in results.items()},
        "gpoints_per_s": {s: row["gpoints_per_s"] for s, row in results.items()},
    }


def merge_telemetry_report(telemetry, path=RESULT_PATH):
    report = json.loads(path.read_text()) if path.exists() else {"bench": "engine"}
    report["telemetry"] = telemetry
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def print_telemetry_report(telemetry):
    print("# telemetry overhead + phase breakdown — fused engine, detail=phase")
    print(
        f"{'schedule':<12} {'off':>10} {'on':>10} {'overhead':>9} "
        f"{'(minmin)':>9} {'coverage':>9} {'GPts/s':>8}"
    )
    for sched, row in telemetry["seconds"].items():
        ov = telemetry["overhead"][sched]
        ovm = telemetry["overhead_minmin"][sched]
        cov = telemetry["coverage"][sched]
        gp = telemetry["gpoints_per_s"][sched]
        print(
            f"{sched:<12} {row['off']*1e3:>8.2f}ms {row['on']*1e3:>8.2f}ms "
            f"{ov:>8.2%} {ovm:>8.2%} {cov:>8.1%} {gp:>8.3f}"
        )
    for sched, phases in telemetry["phases"].items():
        parts = ", ".join(
            f"{k} {v*1e3:.2f}ms" for k, v in phases.items() if v > 0
        )
        print(f"  {sched}: {parts}")


@pytest.mark.slow
def test_guard_overhead_within_budget():
    """Acceptance: the default-cadence health guard *and* the ABFT
    silent-corruption guard each cost < 5% wall-clock on the wavefront
    (WTB) acoustic so=8 workload."""
    guards = run_guards_bench()
    merge_guards_report(guards)
    assert guards["overhead"]["wavefront"] < 0.05
    assert guards["abft"]["overhead"]["wavefront"] < 0.05


@pytest.mark.slow
def test_telemetry_overhead_and_coverage():
    """Acceptance: phase-detail telemetry on the WTB acoustic so=8 workload
    attributes >= 95% of run wall-time to named phases, costs <= 3%
    wall-clock, and is bit-identical to uninstrumented runs (asserted inside
    :func:`time_telemetry`)."""
    telemetry = run_telemetry_bench()
    merge_telemetry_report(telemetry)
    assert telemetry["coverage"]["wavefront"] >= 0.95
    assert telemetry["overhead"]["wavefront"] <= 0.03
    for sched, counters in telemetry["counters"].items():
        assert counters["points_updated"] > 0
        assert counters["src_points_injected"] > 0


@pytest.mark.slow
def test_fused_engine_speedup_and_report():
    """Acceptance: >= 2x over the seed per-equation kernels on the WTB
    workload, and the JSON trajectory artefact lands at the repo root."""
    report = run_bench()
    path = write_report(report)
    assert path.exists()
    assert report["speedup_fused_over_seed"]["wavefront"] >= 2.0
    for sched, row in report["seconds"].items():
        assert row["fused"] < row["interp"]
        assert row["fused"] < row["kernel"]


if __name__ == "__main__":
    if "--telemetry" in sys.argv[1:]:
        telemetry = run_telemetry_bench()
        print_telemetry_report(telemetry)
        out = merge_telemetry_report(telemetry)
    elif "--verify" in sys.argv[1:]:
        verify = run_verify_bench()
        print_verify_report(verify)
        out = merge_verify_report(verify)
    elif "--guards" in sys.argv[1:]:
        guards = run_guards_bench()
        print_guards_report(guards)
        out = merge_guards_report(guards)
    else:
        report = run_bench()
        print_report(report)
        out = write_report(report)
    print(f"\nwrote {out}")
