"""Table I — optimal tile/block shapes after autotuning WTB.

Sweeps the full (tile_x, tile_y, block_x, block_y, height) space for every
(kernel, space order, machine) pair, exactly as §IV-C, and reports the
best-performing configuration.  The pytest-benchmark timing measures the
tuner itself (the paper notes the search space is extensive; our model makes
it tractable).
"""

from __future__ import annotations

import pytest

from paper_setup import KINDS, MACHINES, SPACE_ORDERS, kernel_spec, paper_geometry, single_source_load
from repro.analysis import render_table
from repro.autotuning import tune_spatial, tune_wavefront
from repro.machine import PerformanceModel


def _tune_all():
    rows = []
    best = {}
    for machine in MACHINES:
        for kind in KINDS:
            for so in SPACE_ORDERS:
                pm = PerformanceModel(
                    kernel_spec(kind, so), machine, paper_geometry(kind), single_source_load()
                )
                result = tune_wavefront(pm)
                s = result.schedule
                best[(machine.name, kind, so)] = result
                rows.append(
                    [
                        f"{kind} O({2 if kind != 'elastic' else 1},{so})",
                        machine.name,
                        f"{s.tile[0]}, {s.tile[1]}, {s.block[0]}, {s.block[1]}",
                        s.height,
                        f"{result.best.gpoints_s:.2f}",
                        result.best.bound,
                    ]
                )
    return rows, best


@pytest.mark.benchmark(group="table1")
def test_table1_autotune(benchmark, report):
    rows, best = benchmark.pedantic(_tune_all, rounds=1, iterations=1)
    table = render_table(
        ["Problem", "Machine", "tile_x, tile_y, block_x, block_y", "height", "GPts/s", "bound"],
        rows,
        title="TABLE I analogue: optimal tile-block shapes after tuning WTB",
    )
    report("table1_autotune", table)

    # Table I trend: space order 12 tunes to larger tiles than space order 4
    for machine in MACHINES:
        for kind in KINDS:
            t4 = best[(machine.name, kind, 4)].schedule.tile
            t12 = best[(machine.name, kind, 12)].schedule.tile
            assert t12[0] * t12[1] >= t4[0] * t4[1] * 0.5, (
                f"{machine.name}/{kind}: so12 tile {t12} unexpectedly much "
                f"smaller than so4 tile {t4}"
            )
