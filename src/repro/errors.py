"""Structured error taxonomy for the execution stack.

A multi-thousand-timestep run must not die with a bare ``ValueError`` deep
inside a tile loop: every failure the runtime can attribute carries its
execution context — the logical timestep ``t``, the space(-time) ``tile``
(a box of ``(lo, hi)`` pairs per dimension) and the ``field`` involved — so
operators, logs and tests can reason about *where* a run went wrong.

The hierarchy deliberately multiple-inherits from the builtin exception the
pre-resilience code raised (``ValueError`` for validation failures,
``RuntimeError`` for codegen failures), so existing ``except ValueError``
call sites and tests keep working unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "ReproError",
    "NumericalBlowup",
    "CoordinateOutOfDomain",
    "StabilityViolation",
    "EngineCompilationError",
    "KernelLintError",
    "BoundsProofError",
    "ScheduleLegalityError",
    "InvalidTimeRange",
    "PlanValidationError",
    "InjectedFault",
    "SilentCorruptionError",
    "CheckpointCorruptError",
    "StorageExhaustedError",
    "JobError",
    "QueueSaturatedError",
    "JobTimeoutError",
    "WorkerCrashError",
    "RetryExhaustedError",
    "JournalCorruptError",
    "JournalSchemaError",
    "PoisonJobError",
    "StreamAdmissionError",
    "StabilityWarning",
    "EngineFallbackWarning",
]

Box = Tuple[Tuple[int, int], ...]


def _rebuild_error(cls, message, t, tile, field, context):
    """Unpickling trampoline: re-invokes the keyword-only constructor."""
    return cls(message, t=t, tile=tile, field=field, **context)


class ReproError(Exception):
    """Base class of all structured runtime errors.

    Parameters beyond *message* are keyword-only context: ``t`` (logical
    timestep), ``tile`` (the box being executed) and ``field`` (the grid
    function involved).  Any further keyword argument is stored as an
    attribute and kept in ``context`` for structured logging.

    Instances pickle with all structured context intact (``__reduce__``
    replays the original constructor arguments, not the rendered message) —
    the batch-execution workers rely on this to surface failures across the
    process boundary.
    """

    def __init__(
        self,
        message: str,
        *,
        t: Optional[int] = None,
        tile: Optional[Box] = None,
        field: Optional[str] = None,
        **context,
    ):
        self._message = message
        self.t = t
        self.tile = tuple(tuple(b) for b in tile) if tile is not None else None
        self.field = field
        self.context = dict(context)
        for key, value in context.items():
            setattr(self, key, value)
        super().__init__(self._render(message))

    def __reduce__(self):
        return (
            _rebuild_error,
            (type(self), self._message, self.t, self.tile, self.field, self.context),
        )

    def _render(self, message: str) -> str:
        parts = []
        if self.t is not None:
            parts.append(f"t={self.t}")
        if self.tile is not None:
            parts.append(f"tile={self.tile}")
        if self.field is not None:
            parts.append(f"field={self.field!r}")
        return f"{message} [{', '.join(parts)}]" if parts else message


class NumericalBlowup(ReproError):
    """A wavefield buffer holds NaN/Inf (or exceeded an amplitude bound).

    Raised by the health guards with the first offending ``(t, tile)``;
    ``point`` (absolute grid index) and ``count`` (non-finite values found in
    the tile) arrive as extra context.
    """


class CoordinateOutOfDomain(ReproError, ValueError):
    """Sparse point(s) fall outside the grid's physical domain.

    Carries ``indices`` (offending point indices into the sparse function)
    and ``coordinates`` (their physical positions) so the error names exactly
    which sources/receivers are misplaced.
    """


class StabilityViolation(ReproError, ValueError):
    """The requested ``dt`` exceeds the CFL-critical timestep.

    Carries ``dt``, ``critical`` and the scheme ``kind``.
    """


class EngineCompilationError(ReproError, RuntimeError):
    """An execution engine failed to compile its kernels.

    Carries ``engine`` (the rung that failed).  The engine-selection ladder
    catches this to degrade fused -> kernel -> interp; in strict mode it
    propagates to the caller.
    """


class KernelLintError(EngineCompilationError):
    """The kernel-IR linter rejected a compiled sweep.

    Raised on the fused rung of the engine ladder when static analysis of the
    bound sweeps finds an error-severity defect (out-of-halo footprint, stale
    scratch read, aliasing write, ...).  Carries ``diagnostics`` (the list of
    :class:`repro.verify.linter.Diagnostic` that failed the bind) so strict
    mode surfaces the exact lint findings; non-strict mode degrades down the
    ladder like any other compilation failure.
    """


class BoundsProofError(KernelLintError):
    """The parametric bounds analysis refuted halo safety.

    Raised when :func:`repro.verify.absint.prove_bounds` finds an access that
    escapes its field's padded storage for some member of the admissible
    parameter family.  Carries ``counterexample`` (a concrete
    :class:`repro.verify.certificate.BoundsCounterexample` naming the exact
    ``(schedule, t, tile, index)`` instance) and ``certificate`` (the full
    :class:`repro.verify.certificate.BoundsCertificate` with every violated
    margin).  Subclasses :class:`KernelLintError` so the fused-rung gate
    rides the same engine-degradation ladder as any lint rejection.
    """


class ScheduleLegalityError(ReproError, ValueError):
    """A schedule fails the dependence-legality proof.

    Carries ``counterexample`` (a :class:`repro.verify.certificate.Counterexample`
    naming two conflicting instances ``(t, tile, point)``) and, when a partial
    proof exists, ``certificate``.  Subclasses ``ValueError`` because the
    pre-prover code raised bare ``ValueError`` for illegal schedule/sparse-mode
    combinations and call sites match on that.
    """


class InvalidTimeRange(ReproError, ValueError):
    """``time_m``/``time_M`` do not describe a valid iteration range."""


class PlanValidationError(ReproError, ValueError):
    """An execution plan or its precomputed sparse structures are inconsistent
    (SM/SID/``src_dcmp`` shape mismatches, bad block/tile ranks, ...)."""


class InjectedFault(ReproError):
    """Raised by the fault-injection harness at its programmed ``(t, tile)``."""


class SilentCorruptionError(NumericalBlowup):
    """An ABFT invariant caught finite-valued silent data corruption.

    Raised by :class:`repro.runtime.abft.ABFTGuard` when the amplitude at a
    containment-unit boundary (a time tile under wavefront blocking, a
    timestep otherwise) exceeds the certified growth bound — values that are
    perfectly finite and therefore invisible to the NaN/Inf scan.  Carries
    ``bound`` (the certified admissible amplitude), ``observed`` (the
    amplitude actually measured) and ``detector`` (``"growth"`` for the
    amplitude invariant, ``"checksum"`` for a shared-memory block-checksum
    mismatch).  Subclasses :class:`NumericalBlowup` so existing blow-up
    handling (retry classification, forensics) applies; the executors
    additionally catch it for tile-granular re-execution from the entry
    micro-snapshot before letting it escape.
    """


class CheckpointCorruptError(ReproError, RuntimeError):
    """A persisted checkpoint is truncated, unreadable or inconsistent.

    Raised by :class:`repro.runtime.checkpoint.FileCheckpointStore` when the
    newest snapshot on disk fails validation — instead of a raw ``zipfile``
    or numpy exception escaping from deep inside ``np.load``.  Carries
    ``path`` (the offending file) and ``reason``.  The batch-execution
    workers catch this, discard the store and restart the job from scratch
    rather than wedging a retry loop on a poisoned snapshot.
    """


class StorageExhaustedError(ReproError, RuntimeError):
    """Persistent storage ran out of space mid-run (``ENOSPC``).

    Raised instead of a raw ``OSError`` by the write paths that must not
    crash a batch: :meth:`repro.jobs.journal.BatchJournal.append` and
    :meth:`repro.runtime.checkpoint.FileCheckpointStore.save`.  Carries
    ``path`` (the file being written) and ``op`` (``"journal_append"`` or
    ``"checkpoint_save"``).  The runtime monitor reacts by suspending the
    checkpoint cadence (execution continues without snapshots); the pool
    journals a best-effort ``storage_degraded`` record, stops journaling and
    drains the batch cleanly instead of dying in the supervisor loop.
    """


class JobError(ReproError):
    """Base class of batch-execution (``repro.jobs``) failures.

    Carries ``job_id`` when the failure is attributable to one job.
    """


class QueueSaturatedError(JobError):
    """The bounded admission queue refused a new job (backpressure).

    Carries ``capacity`` and ``pending`` so callers can implement their own
    shedding or wait-and-retry policy instead of growing memory unboundedly.
    """


class JobTimeoutError(JobError):
    """A job exceeded its deadline and was terminated.

    Carries ``job_id``, ``deadline`` (seconds) and ``elapsed`` (seconds the
    job had consumed across all attempts when it was killed).
    """


class WorkerCrashError(JobError):
    """A worker process died without reporting a result (SIGKILL, hard crash).

    Carries ``job_id``, ``exitcode`` (negative = killed by that signal) and
    ``attempt``.  Synthesised by the pool supervisor — the dead worker, by
    definition, could not report anything itself.
    """


class RetryExhaustedError(JobError):
    """A job failed on every attempt of its retry budget.

    Carries ``job_id`` and ``attempts`` — the full attempt history as a list
    of dicts (start/end times, outcome, error summary, engine, resume step)
    so the caller can reconstruct exactly what the pool tried.
    """


class JournalCorruptError(JobError, RuntimeError):
    """A write-ahead batch journal record failed its integrity check.

    Raised by :mod:`repro.jobs.journal` when a record's SHA-256 trailer does
    not match its payload, the record sequence is discontinuous, or the file
    cannot be parsed at all.  Carries ``path``, ``line`` (1-based line number
    of the offending record) and ``reason``.  Resume recovers from the
    longest verified prefix instead of trusting a torn tail — this error is
    only *fatal* when no usable prefix exists (e.g. the batch header itself
    is corrupt).
    """


class JournalSchemaError(JobError, RuntimeError):
    """The journal record-kind tables have drifted out of sync.

    Raised by :func:`repro.jobs.journal.verify_journal_schema` when a record
    ``kind`` emitted by :mod:`repro.jobs.pool` is missing from the declared
    :data:`~repro.jobs.journal.JOURNAL_KINDS` table, a declared kind is
    never emitted, or the set of kinds the resume replay consumes disagrees
    with the kinds declared ``replayed``.  This is a static self-check over
    the *source* of ``pool.py`` — it fires at pool construction in the
    development tree, before any batch runs against a skewed schema.
    Carries ``missing`` / ``unused`` / ``detail`` naming the drifted kinds.
    """


class PoisonJobError(JobError):
    """A job was quarantined: it repeatedly crashed the daemons serving it.

    A spec that kills every fresh worker it lands on (a poison job) would
    otherwise burn the pool's replacement budget — each crash costs a
    prefork — without ever completing.  After ``poison_threshold``
    *consecutive* crash outcomes the supervisor stops retrying and
    quarantines the job with forensics attached: ``job_id``, ``crashes``
    (the consecutive-crash count), ``attempts`` (the full attempt history as
    dicts) and ``job_dir`` (where the per-attempt forensics files live).
    """


class StreamAdmissionError(JobError):
    """A user-supplied spec stream raised while being pulled.

    The streaming admission front-end pulls specs lazily from caller-owned
    iterators; an exception from ``next()`` is the caller's bug, not the
    batch's.  Instead of propagating out of ``JobPool.run()`` and abandoning
    in-flight jobs, the pool drops the broken stream, records this error on
    the report, and drains every already-admitted job to a terminal state —
    only the jobs the stream never yielded are lost.  Carries ``admitted``
    (specs successfully admitted from the stream before it broke) and
    ``reason`` (the underlying exception, rendered).
    """


class StabilityWarning(UserWarning):
    """Non-fatal counterpart of :class:`StabilityViolation` (warn-only CFL
    policy, the default in :meth:`repro.propagators.base.Propagator.forward`)."""


class EngineFallbackWarning(RuntimeWarning):
    """An engine failed to compile and execution degraded to the next rung."""
