"""Analytical performance model: schedules → per-level traffic → time.

The model is a cache-aware roofline (Ilic et al., the formulation the paper's
Fig. 11 uses) fed by working-set/layer-condition traffic analysis:

* **Per-level traffic.**  Each sweep reads a set of distinct data slices; a
  slice read with stencil radius *r* suffers reload multipliers at every
  cache level too small to retain its reuse layers (the classic layer
  conditions for an x-outer/z-inner traversal: retaining ``(2r+1)`` y-z
  slabs gives full reuse, retaining only ``(2r+1)`` z-pencils still leaves
  ``2r`` x-reloads, below that ``4r`` reloads).  Writes cost
  ``1 + write_allocate`` below L1.
* **Spatial blocking** streams every slice from DRAM once per timestep
  (plus block-halo overhead at the block-resident level).
* **Wavefront temporal blocking** divides DRAM traffic by the tile height
  ``TT`` and adds the skew overhead of re-reading the wavefront margins,
  ``angle*(TT-1)*(1/tile_x + 1/tile_y)``; it is feasible only while the
  skewed tile working set fits in the (effective) shared cache.
* **Sparse-operator overhead.**  Off-the-grid injection costs scatter
  traffic per source; the precomputed scheme costs the ``nnz``-mask stream
  plus per-affected-point updates (Listing 5) — this is what Fig. 10 sweeps.

Execution time per point per step is the max over {compute, L1, L2, L3,
DRAM} occupancies; the binding level is reported (and drives the roofline
plot of Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.scheduler import NaiveSchedule, Schedule, SpatialBlockSchedule, WavefrontSchedule
from .kernels import KernelSpec, SweepSpec
from .spec import MachineSpec

__all__ = ["GridGeometry", "SourceLoad", "PerfResult", "PerformanceModel"]


@dataclass(frozen=True)
class GridGeometry:
    """Problem geometry the model is evaluated at (paper scale: 512^3)."""

    shape: Tuple[int, ...]
    nsteps: int

    @property
    def points(self) -> float:
        return float(np.prod(self.shape))

    @property
    def nz(self) -> int:
        return int(self.shape[-1])


@dataclass(frozen=True)
class SourceLoad:
    """Sparse-operator load: number of sources and affected grid points."""

    nsources: int = 1
    npts: int = 8  # affected (grid-aligned) points after decomposition
    corners: int = 8  # support size per source (2^d)
    occupied_pencils: int = 4  # innermost pencils with nnz > 0

    @classmethod
    def from_masks(cls, masks, nsources: int) -> "SourceLoad":
        return cls(
            nsources=nsources,
            npts=masks.npts,
            corners=2 ** masks.grid.ndim,
            occupied_pencils=int(np.count_nonzero(masks.nnz)),
        )


@dataclass
class PerfResult:
    """Modelled execution of one (kernel, schedule, machine, geometry)."""

    time_s: float
    gpoints_s: float
    gflops: float
    bound: str
    traffic_bytes_ppt: Dict[str, float]  # per point per step, by level
    occupancy_ns_ppt: Dict[str, float]
    feasible: bool = True
    note: str = ""

    def arithmetic_intensity(self, level: str, flops_ppt: float) -> float:
        b = self.traffic_bytes_ppt[level]
        return flops_ppt / b if b > 0 else float("inf")


def _stencil_multiplier(radius: int, cap: float, x_layer: float, y_layer: float) -> float:
    """Reload multiplier for a radius-r slice at a level of capacity *cap*."""
    if radius == 0:
        return 1.0
    m = 1.0
    if x_layer > cap:
        m += 2.0 * radius * (1.0 - min(1.0, cap / x_layer))
    if y_layer > cap:
        m += 2.0 * radius * (1.0 - min(1.0, cap / y_layer))
    return m


class PerformanceModel:
    """Evaluate schedules for one kernel on one machine and geometry."""

    def __init__(
        self,
        kernel: KernelSpec,
        machine: MachineSpec,
        geometry: GridGeometry,
        sources: Optional[SourceLoad] = None,
    ):
        self.kernel = kernel
        self.machine = machine
        self.geometry = geometry
        self.sources = sources

    # -- traffic ------------------------------------------------------------------
    def _sweep_level_traffic(self, sweep: SweepSpec, cap: float, block_y: int, halo_factor: float) -> float:
        """Bytes per point per step moved into the level below capacity *cap*."""
        dtype = self.kernel.dtype_bytes
        nz = self.geometry.nz
        wa = 1.0 + (1.0 if self.machine.write_allocate else 0.0)
        concurrency = max(1, sweep.concurrency)
        total = 0.0
        for sl in sweep.reads:
            x_layer = (2 * sl.radius + 1) * block_y * nz * dtype * concurrency
            y_layer = (2 * sl.radius + 1) * nz * dtype * concurrency
            mult = _stencil_multiplier(sl.radius, cap, x_layer, y_layer)
            halo = halo_factor if sl.radius > 0 else 0.0
            total += dtype * mult * (1.0 + halo * sl.radius)
        total += dtype * sweep.writes * wa
        return total

    def _block_halo(self, block: Tuple[int, ...]) -> float:
        """Per-unit-radius fractional halo overhead of a space block."""
        return sum(2.0 / b for b in block)

    def _base_traffic(self, block: Tuple[int, ...]) -> Dict[str, float]:
        """Per-level traffic (bytes/point/step) for one full timestep, before
        any temporal reuse."""
        m = self.machine
        dtype = self.kernel.dtype_bytes
        block_y = block[-1] if block else 8
        halo_l2 = self._block_halo(block) if block else 0.0
        out = {"L1": 0.0, "L2": 0.0, "L3": 0.0, "DRAM": 0.0}
        for sweep in self.kernel.sweeps:
            out["L1"] += dtype * sweep.accesses
            out["L2"] += self._sweep_level_traffic(sweep, m.l1.effective_bytes, block_y, 0.0)
            out["L3"] += self._sweep_level_traffic(sweep, m.l2.effective_bytes, block_y, halo_l2)
            out["DRAM"] += self._sweep_level_traffic(sweep, m.l3.effective_bytes, block_y, 0.0)
        return out

    # -- sparse-operator overhead ----------------------------------------------------
    def _sparse_overhead(self, schedule: Schedule) -> Tuple[float, float]:
        """(bytes, flops) per point per step added by the sparse operators."""
        if self.sources is None:
            return (0.0, 0.0)
        src = self.sources
        dtype = self.kernel.dtype_bytes
        points = self.geometry.points
        nz = self.geometry.nz
        if isinstance(schedule, WavefrontSchedule):
            # Listing 5: stream nnz_mask over all pencils, then per affected
            # point read Sp_SID + src_dcmp and read-modify-write the field;
            # the compressed loop is scalar (no SIMD), so charge extra flops
            pencil_bytes = points / nz * 4.0  # int32 nnz mask
            per_point = src.npts * (4.0 + dtype * 3.0)
            bytes_ppt = (pencil_bytes + per_point) / points
            flops_ppt = 8.0 * src.npts / points
        else:
            # Listing 1: read each source's wavelet sample, recompute its
            # interpolation weights, scatter to its 2^d support corners.  The
            # *unique* support cells (npts) bound the extra DRAM traffic —
            # repeat touches of shared corners hit cache
            bytes_ppt = (src.npts * 2.0 * dtype + src.nsources * dtype) / points
            flops_ppt = 8.0 * src.nsources * src.corners / points
        return (bytes_ppt, flops_ppt)

    # -- schedules ----------------------------------------------------------------
    def wavefront_working_set(self, schedule: WavefrontSchedule) -> float:
        """Bytes the skewed space-time tile keeps live in the shared cache."""
        # the live wavefront band: per tile pass, the slices that must survive
        # until the next instance revisits them.  The skew margins are shared
        # with neighbouring tiles and stream through; what must be *retained*
        # is the tile's own area times the forward time slices + model fields.
        footprint = 1.0
        for t in schedule.tile:
            footprint *= t
        retained = self.kernel.retained_bytes_per_point or self.kernel.state_bytes_per_point
        return footprint * self.geometry.nz * retained

    def max_feasible_height(self, tile: Tuple[int, ...], cap_fraction: float = 1.0, limit: int = 64) -> int:
        """Largest tile height whose working set fits the shared cache."""
        best = 1
        for h in range(2, limit + 1):
            ws = self.wavefront_working_set(
                WavefrontSchedule(tile=tile, block=tuple(min(8, t) for t in tile), height=h)
            )
            if ws <= self.machine.l3.effective_bytes * cap_fraction:
                best = h
            else:
                break
        return best

    def evaluate(self, schedule: Schedule) -> PerfResult:
        m = self.machine
        geo = self.geometry
        kernel = self.kernel

        if isinstance(schedule, WavefrontSchedule):
            block = schedule.block
        elif isinstance(schedule, SpatialBlockSchedule):
            block = schedule.block
        else:
            block = tuple()  # naive: no blocking, whole rows stream

        traffic = self._base_traffic(block)

        note = ""
        feasible = True
        if isinstance(schedule, NaiveSchedule):
            # no blocking: mid-level layer conditions evaluated with a huge
            # effective slab (approximate with block_y = full extent)
            traffic = self._base_traffic((geo.shape[0], geo.shape[1] if len(geo.shape) > 1 else 1))
        elif isinstance(schedule, WavefrontSchedule):
            ws = self.wavefront_working_set(schedule)
            if ws > m.l3.effective_bytes:
                feasible = False
                note = (
                    f"tile working set {ws / 2**20:.1f} MiB exceeds effective "
                    f"L3 {m.l3.effective_bytes / 2**20:.1f} MiB"
                )
            height = schedule.height
            # a height-1 "tile" has no temporal reuse to protect: the code
            # degenerates to plain spatial blocking, with no skew
            span = kernel.lag_span(height) if height > 1 else 0
            skew = span * sum(1.0 / t for t in schedule.tile)
            traffic["DRAM"] = traffic["DRAM"] * (1.0 + skew) / height
            traffic["L3"] = traffic["L3"] * (1.0 + 0.5 * skew)

        sparse_bytes, sparse_flops = self._sparse_overhead(schedule)
        traffic["DRAM"] += sparse_bytes
        traffic["L3"] += sparse_bytes
        traffic["L1"] += sparse_bytes

        flops_ppt = kernel.flops_per_point_step + sparse_flops

        occupancy = {
            "compute": flops_ppt / m.sustained_gflops,  # ns per point
            "L1": traffic["L1"] / m.l1.bandwidth_gbs,
            "L2": traffic["L2"] / m.l2.bandwidth_gbs,
            "L3": traffic["L3"] / m.l3.bandwidth_gbs,
            "DRAM": traffic["DRAM"] / m.dram_bandwidth_gbs,
        }
        bound = max(occupancy, key=occupancy.get)
        t_ppt_ns = occupancy[bound]
        total_s = t_ppt_ns * 1e-9 * geo.points * geo.nsteps
        if not feasible:
            # an infeasible tile thrashes: charge DRAM the un-tiled price plus
            # the skew overhead it still pays
            occupancy["DRAM"] = (
                self._base_traffic(block)["DRAM"] + sparse_bytes
            ) / m.dram_bandwidth_gbs * 1.15
            bound = max(occupancy, key=occupancy.get)
            t_ppt_ns = occupancy[bound]
            total_s = t_ppt_ns * 1e-9 * geo.points * geo.nsteps

        return PerfResult(
            time_s=total_s,
            gpoints_s=geo.points * geo.nsteps / total_s / 1e9,
            gflops=flops_ppt * geo.points * geo.nsteps / total_s / 1e9,
            bound=bound,
            traffic_bytes_ppt=traffic,
            occupancy_ns_ppt=occupancy,
            feasible=feasible,
            note=note,
        )

    def speedup(self, schedule: Schedule, baseline: Optional[Schedule] = None) -> float:
        """Throughput ratio of *schedule* over the spatially-blocked baseline."""
        baseline = baseline or SpatialBlockSchedule(block=(8, 8))
        return self.evaluate(baseline).time_s / self.evaluate(schedule).time_s
