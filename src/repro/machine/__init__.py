"""Machine models: specs, cache simulation, traffic analysis, roofline."""
from .cache import CacheHierarchy, HierarchyStats, LRUCache, SetAssociativeCache
from .kernels import KernelSpec, SliceAccess, SliceRead, SweepSpec
from .perfmodel import GridGeometry, PerfResult, PerformanceModel, SourceLoad
from .roofline import RooflinePoint, render_roofline, roofline_points
from .spec import BROADWELL, MACHINES, SKYLAKE, CacheLevel, MachineSpec

__all__ = [
    "CacheLevel",
    "MachineSpec",
    "BROADWELL",
    "SKYLAKE",
    "MACHINES",
    "KernelSpec",
    "SweepSpec",
    "SliceAccess",
    "SliceRead",
    "GridGeometry",
    "SourceLoad",
    "PerformanceModel",
    "PerfResult",
    "LRUCache",
    "SetAssociativeCache",
    "CacheHierarchy",
    "HierarchyStats",
    "RooflinePoint",
    "roofline_points",
    "render_roofline",
]
