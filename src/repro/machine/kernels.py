"""Kernel characterisation for the performance model.

A :class:`KernelSpec` captures, per sweep, everything the traffic/roofline
model and the cache-trace generator need: distinct data slices read (with
each slice's stencil radius, time offset and buffer count), slices written,
total per-point accesses and flops, plus the per-point bytes of live state.
:meth:`KernelSpec.from_operator` derives all of it from the *actual symbolic
operator*, so the model and the executed code can never drift apart; the
paper-scale (512^3) predictions then reuse the spec with a different grid
geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import eq_flops
from ..dsl.functions import Function, TimeFunction
from ..dsl.symbols import Indexed
from ..ir.dependencies import Sweep, read_accesses, written_access

__all__ = ["SliceAccess", "SweepSpec", "KernelSpec"]


@dataclass(frozen=True)
class SliceAccess:
    """One distinct data slice touched by a sweep.

    ``time_offset`` is ``None`` for time-invariant model fields; ``buffers``
    is the circular-buffer depth of the owning field (1 for model fields) —
    the trace generator uses it to map logical timesteps onto physical
    storage.
    """

    name: str
    radius: int
    time_offset: Optional[int] = None
    buffers: int = 1

    @property
    def is_time_slice(self) -> bool:
        return self.time_offset is not None


#: backwards-compatible alias (earlier revisions called this SliceRead)
SliceRead = SliceAccess


@dataclass(frozen=True)
class SweepSpec:
    """Per-point accounting of one spatial sweep."""

    name: str
    radius: int  # wavefront lag contribution (external time-field reads)
    reads: Tuple[SliceAccess, ...]  # distinct slices read (time + model fields)
    writes_detail: Tuple[SliceAccess, ...]  # distinct slices written
    accesses: int  # total array accesses per point (reads incl. duplicates + writes)
    flops: float
    #: stencil slices live together during one traversal (max per equation);
    #: sets the footprint the layer conditions must retain
    concurrency: int = 1

    @property
    def read_count(self) -> int:
        return len(self.reads)

    @property
    def writes(self) -> int:
        return len(self.writes_detail)


@dataclass(frozen=True)
class KernelSpec:
    """A full timestep: ordered sweeps plus the live state footprint."""

    name: str
    sweeps: Tuple[SweepSpec, ...]
    state_bytes_per_point: float
    #: bytes per point that must *stay* cached between consecutive timesteps
    #: for temporal reuse: the forward time slices (time_order per field) plus
    #: the time-invariant model fields
    retained_bytes_per_point: float = 0.0
    dtype_bytes: int = 4

    @property
    def angle(self) -> int:
        """Wavefront skew per timestep."""
        return sum(s.radius for s in self.sweeps)

    def lag_span(self, height: int) -> int:
        """Maximal wavefront lag across a tile of *height* timesteps.

        Equals the sum of the lag increments of all sweep instances after the
        first: ``angle*height - radius(first sweep)`` (multi-sweep kernels
        skew *within* a timestep too, Fig. 8b).
        """
        if not self.sweeps:
            return 0
        return max(self.angle * height - self.sweeps[0].radius, 0)

    @property
    def flops_per_point_step(self) -> float:
        return sum(s.flops for s in self.sweeps)

    @property
    def read_slices_per_step(self) -> int:
        return sum(s.read_count for s in self.sweeps)

    @property
    def write_slices_per_step(self) -> int:
        return sum(s.writes for s in self.sweeps)

    @property
    def accesses_per_step(self) -> int:
        return sum(s.accesses for s in self.sweeps)

    @classmethod
    def from_operator(cls, op, name: str | None = None) -> "KernelSpec":
        """Derive the spec from a :class:`repro.ir.Operator`."""
        sweeps: List[SweepSpec] = []
        functions: Dict[str, object] = {}

        def buffers_of(func) -> int:
            return func.buffers if isinstance(func, TimeFunction) else 1

        for sweep in op.sweeps:
            slice_radius: Dict[Tuple[str, Optional[int]], int] = {}
            accesses = 0
            flops = 0.0
            writes: Dict[Tuple[str, Optional[int]], SliceAccess] = {}
            concurrency = 1
            for eq in sweep.eqs:
                w = written_access(eq)
                wkey = (w.function.name, w.time_offset)
                writes[wkey] = SliceAccess(
                    name=f"{w.function.name}@{w.time_offset}",
                    radius=0,
                    time_offset=w.time_offset,
                    buffers=buffers_of(w.function),
                )
                functions[w.function.name] = w.function
                reads = list(eq.rhs.atoms(Indexed))
                accesses += len(reads) + 1
                flops += eq_flops(eq)
                eq_stencil_slices = set()
                for a in read_accesses(eq):
                    functions[a.function.name] = a.function
                    t_off = a.time_offset if isinstance(a.function, TimeFunction) else None
                    key = (a.function.name, t_off)
                    slice_radius[key] = max(slice_radius.get(key, 0), a.radius)
                    if a.radius > 0:
                        eq_stencil_slices.add(key)
                concurrency = max(concurrency, len(eq_stencil_slices))
            # slices produced by this sweep and read back pointwise are served
            # by registers/store-forwarding; drop them from the read set
            reads_out = []
            for (fname, toff), r in sorted(
                slice_radius.items(), key=lambda kv: (kv[0][0], kv[0][1] if kv[0][1] is not None else 0)
            ):
                if (fname, toff) in writes and r == 0:
                    continue
                func = functions[fname]
                reads_out.append(
                    SliceAccess(
                        name=f"{fname}@{toff}" if toff is not None else fname,
                        radius=r,
                        time_offset=toff,
                        buffers=buffers_of(func),
                    )
                )
            sweeps.append(
                SweepSpec(
                    name="+".join(sorted({e.write_function.name for e in sweep.eqs})),
                    radius=sweep.read_radius(),
                    reads=tuple(reads_out),
                    writes_detail=tuple(writes.values()),
                    accesses=accesses,
                    flops=flops,
                    concurrency=concurrency,
                )
            )
        dtype_bytes = op.grid.dtype.itemsize
        state = 0.0
        retained = 0.0
        for func in functions.values():
            if isinstance(func, TimeFunction):
                state += func.buffers * dtype_bytes
                retained += func.time_order * dtype_bytes
            elif isinstance(func, Function):
                state += dtype_bytes
                retained += dtype_bytes
        return cls(
            name=name or op.name,
            sweeps=tuple(sweeps),
            state_bytes_per_point=state,
            retained_bytes_per_point=retained,
            dtype_bytes=dtype_bytes,
        )
