"""Cache-hierarchy simulator (LRU) for schedule traces.

Complements the analytical traffic model with a *measured* (simulated)
account of cache behaviour: the trace generator in
:mod:`repro.execution.trace` replays the exact chunk-touch sequence of a
schedule, and this simulator counts hits and misses per level.  It is used
by the validation tests (wavefront blocking must cut last-level misses
versus spatial blocking on a cache it fits in) and by the small-scale
corroboration bench.

Simulation granularity is up to the caller: line-level, pencil-level (one
chunk = one innermost-dimension pencil — the natural unit for z-vectorised
stencils), or anything else; capacities are given in the same units.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LRUCache", "SetAssociativeCache", "CacheHierarchy", "HierarchyStats"]


class LRUCache:
    """Fully-associative LRU cache over opaque integer chunk ids."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._store: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, chunk: int) -> bool:
        """Touch *chunk*; returns True on hit."""
        store = self._store
        if chunk in store:
            store.move_to_end(chunk)
            self.hits += 1
            return True
        self.misses += 1
        store[chunk] = None
        if len(store) > self.capacity:
            store.popitem(last=False)
            self.evictions += 1
        return False

    def contains(self, chunk: int) -> bool:
        return chunk in self._store

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)


class SetAssociativeCache:
    """Set-associative LRU cache (sets indexed by ``chunk % nsets``)."""

    def __init__(self, capacity: int, ways: int):
        if ways < 1 or capacity < ways:
            raise ValueError("need capacity >= ways >= 1")
        self.ways = int(ways)
        self.nsets = max(int(capacity) // int(ways), 1)
        self.capacity = self.nsets * self.ways
        self._sets: List["OrderedDict[int, None]"] = [OrderedDict() for _ in range(self.nsets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, chunk: int) -> bool:
        s = self._sets[chunk % self.nsets]
        if chunk in s:
            s.move_to_end(chunk)
            self.hits += 1
            return True
        self.misses += 1
        s[chunk] = None
        if len(s) > self.ways:
            s.popitem(last=False)
            self.evictions += 1
        return False

    def contains(self, chunk: int) -> bool:
        return chunk in self._sets[chunk % self.nsets]

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0


@dataclass
class HierarchyStats:
    """Per-level access/hit counters plus the resulting traffic estimate."""

    accesses: int
    level_hits: Dict[str, int]
    memory_fetches: int
    chunk_bytes: float

    def traffic_bytes(self, level: str) -> float:
        """Bytes moved *into* the given level (misses of the level above)."""
        if level == "memory":
            return self.memory_fetches * self.chunk_bytes
        return self.level_hits[level] * self.chunk_bytes

    def miss_ratio(self) -> float:
        return self.memory_fetches / max(self.accesses, 1)


class CacheHierarchy:
    """An inclusive multi-level LRU hierarchy.

    ``levels`` is a sequence of (name, capacity_chunks) from innermost to
    outermost.  An access probes levels in order; a miss at every level is a
    memory fetch, and the chunk is installed everywhere (inclusive).
    """

    def __init__(self, levels: Sequence[Tuple[str, int]], chunk_bytes: float = 64.0, ways: Optional[int] = None):
        if not levels:
            raise ValueError("need at least one cache level")
        self.names = [n for n, _ in levels]
        if ways is None:
            self.caches = [LRUCache(c) for _, c in levels]
        else:
            self.caches = [SetAssociativeCache(c, ways) for _, c in levels]
        self.chunk_bytes = float(chunk_bytes)
        self.accesses = 0
        self.memory_fetches = 0
        self._level_hits = {n: 0 for n in self.names}

    def access(self, chunk: int) -> str:
        """Touch *chunk*; returns the name of the level that hit ('memory'
        when all missed)."""
        self.accesses += 1
        hit_level = "memory"
        for name, cache in zip(self.names, self.caches):
            if cache.contains(cache_key(chunk)):
                hit_level = name
                break
        # install/update everywhere (inclusive, true LRU update per level)
        for cache in self.caches:
            cache.access(cache_key(chunk))
        if hit_level == "memory":
            self.memory_fetches += 1
        else:
            self._level_hits[hit_level] += 1
        return hit_level

    def access_many(self, chunks: Iterable[int]) -> None:
        for c in chunks:
            self.access(int(c))

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            accesses=self.accesses,
            level_hits=dict(self._level_hits),
            memory_fetches=self.memory_fetches,
            chunk_bytes=self.chunk_bytes,
        )

    def reset(self) -> None:
        self.accesses = 0
        self.memory_fetches = 0
        self._level_hits = {n: 0 for n in self.names}
        for c in self.caches:
            c.reset_counters()


def cache_key(chunk: int) -> int:
    return int(chunk)
