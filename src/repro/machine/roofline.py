"""Cache-aware roofline model — Fig. 11.

Implements the cumulative-traffic cache-aware roofline (Ilic et al., the
formulation of Intel Advisor's integrated roofline the paper uses): for each
memory level, the kernel has an arithmetic intensity ``AI_l = flops /
bytes_l`` and the level imposes the ceiling ``BW_l * AI_l``; achieved
performance is plotted against the ceilings.  The paper's Fig. 11 shows the
spatially blocked acoustic kernels pinned under the L3/DRAM ceilings and the
temporally blocked ones breaking through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.scheduler import Schedule
from .kernels import KernelSpec
from .perfmodel import PerformanceModel

__all__ = ["RooflinePoint", "roofline_points", "render_roofline"]

LEVELS = ("L1", "L2", "L3", "DRAM")


@dataclass
class RooflinePoint:
    """One kernel/schedule point in the cache-aware roofline plane."""

    label: str
    gflops: float
    ai: Dict[str, float]  # arithmetic intensity per level (flops/byte)
    bound: str
    ceilings: Dict[str, float]  # BW_l * AI_l per level, + "peak"

    def limiting_ceiling(self) -> Tuple[str, float]:
        name = min(self.ceilings, key=self.ceilings.get)
        return name, self.ceilings[name]


def roofline_points(
    model: PerformanceModel,
    schedules: Dict[str, Schedule],
) -> List[RooflinePoint]:
    """Evaluate each named schedule into a roofline point."""
    m = model.machine
    out: List[RooflinePoint] = []
    bw = {"L1": m.l1.bandwidth_gbs, "L2": m.l2.bandwidth_gbs,
          "L3": m.l3.bandwidth_gbs, "DRAM": m.dram_bandwidth_gbs}
    for label, sched in schedules.items():
        res = model.evaluate(sched)
        flops = model.kernel.flops_per_point_step
        ai = {
            lvl: (flops / res.traffic_bytes_ppt[lvl] if res.traffic_bytes_ppt[lvl] > 0 else float("inf"))
            for lvl in LEVELS
        }
        ceilings = {lvl: bw[lvl] * ai[lvl] for lvl in LEVELS}
        ceilings["peak"] = m.sustained_gflops
        out.append(
            RooflinePoint(
                label=label,
                gflops=res.gflops,
                ai=ai,
                bound=res.bound,
                ceilings=ceilings,
            )
        )
    return out


def render_roofline(points: Sequence[RooflinePoint], machine_name: str = "") -> str:
    """ASCII rendering of the cache-aware roofline table (Fig. 11 analogue)."""
    lines = [f"cache-aware roofline{' — ' + machine_name if machine_name else ''}"]
    header = f"{'kernel/schedule':<28} {'GFLOP/s':>8} {'bound':>8} " + " ".join(
        f"{'AI@' + l:>9}" for l in LEVELS
    ) + f" {'ceiling':>16}"
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        name, ceil = p.limiting_ceiling()
        lines.append(
            f"{p.label:<28} {p.gflops:>8.1f} {p.bound:>8} "
            + " ".join(f"{p.ai[l]:>9.2f}" for l in LEVELS)
            + f" {name + ' ' + format(ceil, '.0f'):>16}"
        )
    return "\n".join(lines)
