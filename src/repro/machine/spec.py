"""Machine descriptions for the performance model — §IV-A.

Parameterised analogues of the two Azure VM types the paper benchmarks on.
Cache sizes come straight from §IV-A; sustained bandwidths and frequencies
are calibrated to public STREAM/likwid measurements of those parts (the
absolute numbers only set the scale — the reproduction's claims are about
*ratios* between schedules on a fixed machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["CacheLevel", "MachineSpec", "BROADWELL", "SKYLAKE", "MACHINES"]


@dataclass(frozen=True)
class CacheLevel:
    """One cache level: capacity and sustained aggregate bandwidth."""

    name: str
    size_bytes: int
    bandwidth_gbs: float  # aggregate sustained GB/s (all cores)
    line_bytes: int = 64
    #: fraction of the capacity usable by one kernel's working set before
    #: conflict/sharing effects evict it (effective-capacity factor)
    effective_fraction: float = 0.8

    @property
    def effective_bytes(self) -> float:
        return self.size_bytes * self.effective_fraction

    def __post_init__(self):
        if self.size_bytes <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError(f"invalid cache level {self}")


@dataclass(frozen=True)
class MachineSpec:
    """A socket: core count, SIMD width, frequency and memory hierarchy."""

    name: str
    cores: int
    freq_ghz: float
    simd_lanes_sp: int  # single-precision SIMD lanes (AVX2: 8, AVX-512: 16)
    fma_flops_per_lane: int  # 2 FMA units x 2 flops
    l1: CacheLevel
    l2: CacheLevel
    l3: CacheLevel
    dram_bandwidth_gbs: float
    write_allocate: bool = True
    #: SIMD efficiency of real stencil code vs theoretical peak
    simd_efficiency: float = 0.45

    @property
    def peak_gflops(self) -> float:
        """Theoretical single-precision peak (all cores)."""
        return self.cores * self.freq_ghz * self.simd_lanes_sp * self.fma_flops_per_lane

    @property
    def sustained_gflops(self) -> float:
        """Peak derated by the stencil SIMD efficiency."""
        return self.peak_gflops * self.simd_efficiency

    def levels(self) -> Tuple[Tuple[str, float], ...]:
        """(name, bandwidth GB/s) from registers outwards, DRAM last."""
        return (
            (self.l1.name, self.l1.bandwidth_gbs),
            (self.l2.name, self.l2.bandwidth_gbs),
            (self.l3.name, self.l3.bandwidth_gbs),
            ("DRAM", self.dram_bandwidth_gbs),
        )


#: Azure Standard_E16s_v3: single-socket 8-core Broadwell E5-2673 v4, AVX2.
#: L1 32 KB + L2 256 KB private, 50 MB shared L3 (paper §IV-A).
BROADWELL = MachineSpec(
    name="broadwell",
    cores=8,
    freq_ghz=2.3,
    simd_lanes_sp=8,
    fma_flops_per_lane=4,
    l1=CacheLevel("L1", 32 * 1024, 1100.0),
    l2=CacheLevel("L2", 256 * 1024, 440.0),
    l3=CacheLevel("L3", 50 * 1024 * 1024, 80.0, effective_fraction=0.65),
    dram_bandwidth_gbs=42.0,
)

#: Azure Standard_E32s_v3: single-socket 16-core Skylake Platinum 8171M,
#: AVX-512.  L1 32 KB + L2 1 MB private, 35.75 MB shared L3 (paper §IV-A).
SKYLAKE = MachineSpec(
    name="skylake",
    cores=16,
    freq_ghz=2.1,
    simd_lanes_sp=16,
    fma_flops_per_lane=4,
    l1=CacheLevel("L1", 32 * 1024, 3200.0),
    l2=CacheLevel("L2", 1024 * 1024, 1300.0),
    l3=CacheLevel("L3", int(35.75 * 1024 * 1024), 120.0, effective_fraction=0.65),
    dram_bandwidth_gbs=72.0,
    simd_efficiency=0.35,
)

MACHINES: Dict[str, MachineSpec] = {m.name: m for m in (BROADWELL, SKYLAKE)}
