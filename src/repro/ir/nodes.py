"""Loop-nest intermediate representation.

A small tree IR used for code generation and for structural tests on the
transformed loop nests (the paper presents its scheme as loop-nest
transformations, Listings 1-6).  The NumPy executors do not interpret this
tree (they use the schedule descriptions directly, for speed); the IR exists
so the *generated code* can be inspected, compared against the paper's
listings, and exported as C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Node",
    "Block",
    "Iteration",
    "Statement",
    "Comment",
    "Pragma",
    "FindResult",
    "TAOperand",
    "TAInstr",
    "TAProgram",
]


class Node:
    """Base IR node."""

    def children(self) -> Tuple["Node", ...]:
        return ()

    def walk(self) -> Iterator["Node"]:
        yield self
        for c in self.children():
            yield from c.walk()

    def find(self, cls) -> List["Node"]:
        return [n for n in self.walk() if isinstance(n, cls)]


class Block(Node):
    """A sequence of nodes."""

    def __init__(self, *body: Node):
        self.body: Tuple[Node, ...] = tuple(body)

    def children(self) -> Tuple[Node, ...]:
        return self.body


class Iteration(Node):
    """``for index = lo to hi step s`` over *body*.

    ``lo``/``hi`` are strings (symbolic bounds like ``"nx"`` or
    ``"t0 + tile_t"``); ``properties`` tags the loop's role
    (``"time"``, ``"tile"``, ``"block"``, ``"space"``, ``"sparse"``,
    ``"vectorized"``) so tests can assert the structure of a transformed
    nest without string-matching generated code.
    """

    def __init__(
        self,
        index: str,
        lo: str,
        hi: str,
        body: Sequence[Node],
        step: str = "1",
        properties: Tuple[str, ...] = (),
    ):
        self.index = index
        self.lo = str(lo)
        self.hi = str(hi)
        self.step = str(step)
        self.body: Tuple[Node, ...] = tuple(body)
        self.properties = tuple(properties)

    def children(self) -> Tuple[Node, ...]:
        return self.body

    def is_(self, prop: str) -> bool:
        return prop in self.properties

    def __repr__(self) -> str:
        return f"Iteration({self.index}: {self.lo}..{self.hi} {self.properties})"


class Statement(Node):
    """A C statement, plus an optional role tag ("stencil", "injection",
    "interpolation", "indirection")."""

    def __init__(self, text: str, role: str = "stencil"):
        self.text = str(text)
        self.role = role

    def __repr__(self) -> str:
        return f"Statement[{self.role}]({self.text[:40]}...)"


class Comment(Node):
    def __init__(self, text: str):
        self.text = str(text)


class Pragma(Node):
    """e.g. ``#pragma omp parallel for`` or ``#pragma omp simd``."""

    def __init__(self, text: str):
        self.text = str(text)


class FindResult(Node):
    pass


# -- three-address kernel IR ------------------------------------------------------
#
# The fused engine (ir/pycodegen.compile_sweep) lowers every sweep into a
# linear program of ``np.ufunc(a, b, out)`` instructions.  Besides the
# executable source text (``kernel.__source__``), the compiler attaches the
# same program in structured form (``kernel.__program__``) so static analyses
# (repro.verify.absint) operate on typed operands instead of re-parsing
# generated text.


@dataclass(frozen=True)
class TAOperand:
    """One operand of a three-address instruction.

    ``kind`` is one of:

    * ``"view"``  — a read view ``vN`` (box-shaped array of a field read)
    * ``"out"``   — an output view ``oN`` (box-shaped array of a field write)
    * ``"slot"``  — a scratch slot ``sN`` from the :class:`ScratchPool`
    * ``"const"`` — a prebound 0-d constant ``_cN``
    * ``"scalar"``— a Python numeric literal (weak promotion semantics)

    ``dtype`` is the NumPy dtype name for array operands and ``None`` for raw
    scalars (whose promotion is *weak*: they adapt to the partner operand).
    """

    kind: str
    name: str
    dtype: Optional[str] = None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TAInstr:
    """One instruction: a ufunc call ``np.op(args..., out)`` or a ``store``
    (``out[...] = value``, with the single value in ``args``)."""

    op: str
    args: Tuple[TAOperand, ...]
    out: TAOperand

    def render(self) -> str:
        if self.op == "store":
            return f"{self.out.name}[...] = {self.args[0].name}"
        args = ", ".join(a.name for a in self.args)
        return f"np.{self.op}({args}, {self.out.name})"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class TAProgram:
    """The complete three-address program of one fused sweep kernel.

    ``slots``/``views``/``outs``/``consts`` map operand names to NumPy dtype
    names, in declaration order (slot order matches ``kernel.__slotspec__``).
    """

    instrs: Tuple[TAInstr, ...]
    slots: Tuple[Tuple[str, str], ...]
    views: Tuple[Tuple[str, str], ...]
    outs: Tuple[Tuple[str, str], ...]
    consts: Tuple[Tuple[str, str], ...] = ()

    def dtype_of(self, name: str) -> Optional[str]:
        for table in (self.slots, self.views, self.outs, self.consts):
            for n, dt in table:
                if n == name:
                    return dt
        return None

    def render(self) -> str:
        return "\n".join(i.render() for i in self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)
