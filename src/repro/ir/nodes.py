"""Loop-nest intermediate representation.

A small tree IR used for code generation and for structural tests on the
transformed loop nests (the paper presents its scheme as loop-nest
transformations, Listings 1-6).  The NumPy executors do not interpret this
tree (they use the schedule descriptions directly, for speed); the IR exists
so the *generated code* can be inspected, compared against the paper's
listings, and exported as C.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Node",
    "Block",
    "Iteration",
    "Statement",
    "Comment",
    "Pragma",
    "FindResult",
]


class Node:
    """Base IR node."""

    def children(self) -> Tuple["Node", ...]:
        return ()

    def walk(self) -> Iterator["Node"]:
        yield self
        for c in self.children():
            yield from c.walk()

    def find(self, cls) -> List["Node"]:
        return [n for n in self.walk() if isinstance(n, cls)]


class Block(Node):
    """A sequence of nodes."""

    def __init__(self, *body: Node):
        self.body: Tuple[Node, ...] = tuple(body)

    def children(self) -> Tuple[Node, ...]:
        return self.body


class Iteration(Node):
    """``for index = lo to hi step s`` over *body*.

    ``lo``/``hi`` are strings (symbolic bounds like ``"nx"`` or
    ``"t0 + tile_t"``); ``properties`` tags the loop's role
    (``"time"``, ``"tile"``, ``"block"``, ``"space"``, ``"sparse"``,
    ``"vectorized"``) so tests can assert the structure of a transformed
    nest without string-matching generated code.
    """

    def __init__(
        self,
        index: str,
        lo: str,
        hi: str,
        body: Sequence[Node],
        step: str = "1",
        properties: Tuple[str, ...] = (),
    ):
        self.index = index
        self.lo = str(lo)
        self.hi = str(hi)
        self.step = str(step)
        self.body: Tuple[Node, ...] = tuple(body)
        self.properties = tuple(properties)

    def children(self) -> Tuple[Node, ...]:
        return self.body

    def is_(self, prop: str) -> bool:
        return prop in self.properties

    def __repr__(self) -> str:
        return f"Iteration({self.index}: {self.lo}..{self.hi} {self.properties})"


class Statement(Node):
    """A C statement, plus an optional role tag ("stencil", "injection",
    "interpolation", "indirection")."""

    def __init__(self, text: str, role: str = "stencil"):
        self.text = str(text)
        self.role = role

    def __repr__(self) -> str:
        return f"Statement[{self.role}]({self.text[:40]}...)"


class Comment(Node):
    def __init__(self, text: str):
        self.text = str(text)


class Pragma(Node):
    """e.g. ``#pragma omp parallel for`` or ``#pragma omp simd``."""

    def __init__(self, text: str):
        self.text = str(text)


class FindResult(Node):
    pass
