"""The ``Operator``: from symbolic equations + sparse operators to execution.

This is the user-facing entry point, mirroring Devito's ``Operator``::

    op = Operator([update], sparse=[src.inject(u, expr=dt**2/m),
                                    rec.interpolate(u)])
    op.apply(time_M=nt, dt=dt)                               # naive
    op.apply(time_M=nt, dt=dt, schedule=WavefrontSchedule()) # time-tiled

``apply`` binds numeric ``dt``/spacings into the equations, attaches the
sparse operators (raw off-the-grid for untiled schedules; precomputed
grid-aligned -- the paper's scheme -- for wavefront schedules), and runs the
requested traversal.  ``ccode`` emits the C-like loop nests of Listings 1-6
for inspection.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.aligned import AlignedInjection, AlignedReceiver
from ..core.decompose import decompose_receiver, decompose_source
from ..core.masks import build_masks
from ..core.scheduler import (
    NaiveSchedule,
    Schedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
)
from ..dsl.equation import Eq
from ..dsl.functions import Injection, Interpolation
from ..dsl.grid import Grid
from ..dsl.symbols import Number, Symbol
from ..errors import (
    EngineCompilationError,
    EngineFallbackWarning,
    InvalidTimeRange,
)
from ..execution.evalbox import ENGINES, BoundSweep
from ..execution.executors import ExecutionPlan, run_schedule
from ..execution.sparse import RawInjection, RawInterpolation
from .dependencies import Sweep, build_sweeps, wavefront_angle

__all__ = ["Operator"]

SparseOp = Union[Injection, Interpolation]


def _view_cache_totals(plan: ExecutionPlan) -> Tuple[int, int]:
    """Summed (hits, misses) of the fused sweeps' memoised view bindings;
    (0, 0) for engines without a view cache."""
    hits = sum(getattr(s, "view_hits", 0) for s in plan.sweeps)
    misses = sum(getattr(s, "view_misses", 0) for s in plan.sweeps)
    return hits, misses


class Operator:
    """An executable stencil operator with optional off-the-grid operators."""

    def __init__(
        self,
        eqs: Sequence[Eq],
        sparse: Sequence[SparseOp] = (),
        name: str = "Kernel",
    ):
        eqs = list(eqs)
        if not eqs:
            raise ValueError("operator needs at least one equation")
        self.name = str(name)
        self.eqs = eqs
        self.sparse_ops: List[SparseOp] = list(sparse)
        self.grid = self._infer_grid()
        self.sweeps: List[Sweep] = build_sweeps(eqs)
        self._mask_cache: Dict[int, object] = {}
        self._decomp_cache: Dict[Tuple[int, float], object] = {}
        # fused bound sweeps depend only on dt: equations are immutable and
        # Function buffers are written in place, never reallocated, so the
        # sweeps -- and with them the fused engine's per-(t, box) view
        # caches -- are safely reusable across apply() calls.  The kernel and
        # interp engines bind per apply, exactly as the seed engine did: they
        # exist as ablation baselines and carry no reusable state.
        self._sweep_cache: Dict[float, List[BoundSweep]] = {}
        # legality certificates from the schedule prover, keyed by
        # (schedule.key(), resolved sparse mode); apply() proves each
        # wavefront schedule once and replays the cached verdict after
        self.certificates: Dict = {}
        # parametric bounds certificates (halo safety for whole schedule
        # families), keyed like legality certificates; the schedule-free
        # "any" family proved on the fused bind is cached separately since
        # equations are immutable
        self.bounds_certificates: Dict = {}
        self._bounds_cert = None
        # cumulative wall-time of the abstract-interpretation analyses
        # (bounds proofs + scratch liveness), reported by the verify bench
        self.analyzer_seconds = 0.0
        # precomputed wavefront step plans, persisted across apply() calls;
        # keyed (tile, height) -- the only schedule knobs geometry depends on
        # (grid and sweep radii are fixed per operator)
        self._step_cache: Dict = {}
        self._static_costs = None  # telemetry: per-sweep (flops, accesses)
        # one scratch pool per operator, shared by all fused sweeps across
        # apply() calls -- buffers are keyed by (shape, dtype, slot) so reuse
        # is automatic and steady-state execution allocates nothing
        from ..ir.pycodegen import ScratchPool

        self._pool = ScratchPool()

    # -- introspection -------------------------------------------------------------
    def _infer_grid(self) -> Grid:
        grids = {e.write_function.grid for e in self.eqs}
        for s in self.sparse_ops:
            grids.add(s.field.grid)
        if len(grids) != 1:
            raise ValueError("all equations/operators must share one grid")
        return grids.pop()

    @property
    def wavefront_angle(self) -> int:
        """Skew per timestep needed by wavefront blocking (Figs. 7/8)."""
        return wavefront_angle(self.sweeps)

    @property
    def sweep_radii(self) -> List[int]:
        return [s.read_radius() for s in self.sweeps]

    def injections(self) -> List[Injection]:
        return [s for s in self.sparse_ops if isinstance(s, Injection)]

    def interpolations(self) -> List[Interpolation]:
        return [s for s in self.sparse_ops if isinstance(s, Interpolation)]

    # -- legality --------------------------------------------------------------------
    def certificate_for(
        self, schedule: Optional[Schedule] = None, sparse_mode: str = "auto"
    ):
        """Prove (once, then cache) the legality of *schedule* for this
        operator, returning the
        :class:`~repro.verify.certificate.LegalityCertificate`; raises
        :class:`~repro.errors.ScheduleLegalityError` with a concrete
        counterexample when the schedule is illegal.  ``apply`` calls this as
        its wavefront preflight."""
        from ..verify.prover import prove_schedule, resolve_sparse_mode

        schedule = schedule or NaiveSchedule()
        key = (schedule.key(), resolve_sparse_mode(sparse_mode, schedule))
        cert = self.certificates.get(key)
        if cert is None:
            cert = prove_schedule(self, schedule, sparse_mode=sparse_mode)
            self.certificates[key] = cert
        return cert

    def bounds_certificate_for(
        self, schedule: Optional[Schedule] = None, sparse_mode: str = "auto"
    ):
        """Prove (once, then cache) parametric halo safety of every access
        under *schedule*'s parameter family, returning the
        :class:`~repro.verify.certificate.BoundsCertificate`.  Unlike
        :meth:`certificate_for` this never raises — callers inspect
        ``cert.check()`` / ``cert.counterexample`` and decide (the fused bind
        gate and the wavefront preflight raise
        :class:`~repro.errors.BoundsProofError`)."""
        import time as _time

        from ..verify.absint import prove_bounds
        from ..verify.prover import resolve_sparse_mode

        if schedule is None:
            # the schedule-free "any" family: one proof covers every
            # schedule kind (executors clip all windows to the interior)
            if self._bounds_cert is None:
                t0 = _time.perf_counter()
                self._bounds_cert = prove_bounds(self)
                self.analyzer_seconds += _time.perf_counter() - t0
            return self._bounds_cert
        key = (schedule.key(), resolve_sparse_mode(sparse_mode, schedule))
        cert = self.bounds_certificates.get(key)
        if cert is None:
            t0 = _time.perf_counter()
            cert = prove_bounds(self, schedule, sparse_mode=sparse_mode)
            self.analyzer_seconds += _time.perf_counter() - t0
            self.bounds_certificates[key] = cert
        return cert

    def growth_certificate_for(self, plan, dt: float = 1.0):
        """Prove (once per *dt*, then cache) the per-step amplitude-growth
        bound of this operator's bound sweeps, returning the
        :class:`~repro.verify.certificate.GrowthCertificate` the ABFT guard
        and the derived :class:`~repro.runtime.health.HealthGuard` ceiling
        share.  The bound depends on the model data and the hoisted *dt*
        constants, both fixed per (operator, dt), so caching by dt is sound."""
        import time as _time

        certs = self.__dict__.setdefault("_growth_certs", {})
        key = float(dt)
        cert = certs.get(key)
        if cert is None:
            from ..verify.absint.growth import prove_growth

            t0 = _time.perf_counter()
            cert = certs[key] = prove_growth(
                plan.sweeps, operator=self.name, dt=dt
            )
            self.analyzer_seconds += _time.perf_counter() - t0
        return cert

    # -- sweep attachment ------------------------------------------------------------
    def _sweep_index_for(self, field_name: str, time_offset: int) -> int:
        for j, sweep in enumerate(self.sweeps):
            if (field_name, time_offset) in sweep.written_keys:
                return j
        raise ValueError(
            f"no equation writes ({field_name}, t+{time_offset}); cannot "
            "attach the sparse operator to a sweep"
        )

    # -- precomputation (the paper's pipeline, cached) -------------------------------
    def _masks_for(self, sparse_fn, method: str = "analytic"):
        key = id(sparse_fn)
        if key not in self._mask_cache:
            self._mask_cache[key] = build_masks(sparse_fn, method=method)
        return self._mask_cache[key]

    def _aligned_injection(self, inj: Injection, dt: float) -> AlignedInjection:
        key = (id(inj), float(dt))
        if key not in self._decomp_cache:
            masks = self._masks_for(inj.sparse)
            self._decomp_cache[key] = decompose_source(inj, dt, masks=masks)
        return AlignedInjection(self._decomp_cache[key], inj.field)

    def _aligned_receiver(self, itp: Interpolation) -> AlignedReceiver:
        key = (id(itp), 0.0)
        if key not in self._decomp_cache:
            masks = self._masks_for(itp.sparse)
            self._decomp_cache[key] = decompose_receiver(itp, masks=masks)
        return AlignedReceiver(self._decomp_cache[key], itp.field, itp.sparse.data)

    # -- binding ------------------------------------------------------------------
    #: graceful-degradation ladder: when an engine's codegen fails, execution
    #: falls to the next rung (structured warning) instead of aborting
    _ENGINE_LADDER = {
        "fused": ("fused", "kernel", "interp"),
        "kernel": ("kernel", "interp"),
        "interp": ("interp",),
    }

    def _build_sweeps(
        self, dt: float, engine: str, strict: bool, telemetry=None, breaker=None
    ) -> Tuple[str, List[BoundSweep]]:
        """Bind sweeps under *engine*, degrading down the ladder on
        :class:`EngineCompilationError` unless *strict*.  Returns the engine
        that actually compiled plus its bound sweeps.

        *breaker* is an optional circuit breaker (an object with
        ``allow(engine)`` / ``record_success(engine)`` /
        ``record_failure(engine, exc)``, e.g.
        :class:`repro.jobs.CircuitBreaker`): a rung the breaker holds open is
        skipped outright — the ladder degrades without paying the failure
        cost again — and every attempted rung reports its outcome back so
        the breaker can trip or recover.  The breaker must always allow the
        terminal ``interp`` rung (:class:`repro.jobs.CircuitBreaker` only
        ever tracks a compiled engine)."""
        subs = {Symbol("dt"): Number(float(dt))}
        for sym, val in self.grid.spacing_map().items():
            subs[sym] = Number(float(val))
        sweep_eqs = [[e.subs(subs) for e in s.eqs] for s in self.sweeps]
        rungs = self._ENGINE_LADDER[engine]
        for i, eng in enumerate(rungs):
            if breaker is not None and not breaker.allow(eng):
                if telemetry is not None:
                    telemetry.counters.add("engine_breaker_skips")
                    telemetry.event(
                        "engine.breaker_skip", phase="precompute", skipped=eng
                    )
                continue
            try:
                bound = [
                    BoundSweep(eqs, self.grid, engine=eng, pool=self._pool)
                    for eqs in sweep_eqs
                ]
                if eng == "fused":
                    # kernel-IR lint gate: error findings reject the fused
                    # bind; the KernelLintError rides the same ladder as any
                    # compilation failure (degrade unless strict)
                    import time as _time

                    from ..errors import BoundsProofError, KernelLintError
                    from ..verify.linter import lint_bound_sweeps

                    t0 = _time.perf_counter()
                    report = lint_bound_sweeps(bound, name=self.name)
                    self.analyzer_seconds += _time.perf_counter() - t0
                    if not report.ok:
                        raise KernelLintError(
                            f"{self.name}: kernel-IR linter rejected the "
                            "fused bind: "
                            + "; ".join(d.render() for d in report.errors),
                            engine="fused",
                            diagnostics=report.diagnostics,
                        )
                    # parametric bounds gate: every access must be proven
                    # in-bounds for the whole schedule family before any
                    # timestep runs; a violation carries the concrete
                    # (schedule, t, tile, index) counterexample and rides
                    # the same ladder
                    cert = self.bounds_certificate_for(None)
                    if not cert.check():
                        ce = cert.counterexample
                        raise BoundsProofError(
                            f"{self.name}: parametric bounds analysis "
                            "refuted halo safety: "
                            + (ce.describe() if ce is not None else
                               "; ".join(
                                   c.vc for c in cert.violations()[:3]
                               )),
                            engine="fused",
                            diagnostics=[],
                            counterexample=ce,
                            certificate=cert,
                        )
                    # scratch-pool slab plan: the whole-program liveness
                    # proof (already computed by the lint gate) licenses
                    # collapsing the per-(shape, dtype, slot) pool into
                    # per-(dtype, color) slabs, bit-identically
                    live = report.scratch
                    if (
                        live is not None
                        and live.safe_for_slab
                        and len(live.colors) == len(bound)
                    ):
                        for sw, colors in zip(bound, live.colors):
                            sw.apply_slot_plan(colors)
                if breaker is not None:
                    breaker.record_success(eng)
                return eng, bound
            except EngineCompilationError as exc:
                if breaker is not None:
                    breaker.record_failure(eng, exc)
                if strict or i == len(rungs) - 1:
                    raise
                if telemetry is not None:
                    telemetry.counters.add("engine_fallbacks")
                    telemetry.event(
                        "engine.fallback",
                        phase="precompute",
                        failed=eng,
                        degraded_to=rungs[i + 1],
                    )
                warnings.warn(
                    EngineFallbackWarning(
                        f"{self.name}: engine {eng!r} failed to compile "
                        f"({exc}); degrading to {rungs[i + 1]!r}"
                    ),
                    stacklevel=3,
                )
        raise AssertionError("unreachable: ladder ends at the interpreter")

    def _bind(
        self,
        dt: float,
        schedule: Schedule,
        sparse_mode: str,
        compiled: bool = True,
        engine: Optional[str] = None,
        strict_engine: bool = False,
        telemetry=None,
        breaker=None,
    ) -> ExecutionPlan:
        if engine is None:
            engine = "fused" if compiled else "interp"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        # a cached fused bind is a known-good compile: reusing it costs (and
        # risks) nothing, so it bypasses any open circuit breaker
        bound_sweeps = self._sweep_cache.get(float(dt)) if engine == "fused" else None
        if bound_sweeps is not None:
            for sw in bound_sweeps:
                sw.invalidate_invariants()
        else:
            effective, bound_sweeps = self._build_sweeps(
                dt, engine, strict_engine, telemetry=telemetry, breaker=breaker
            )
            # only a successful *fused* bind is reusable across applies; a
            # degraded bind must retry the full ladder next time
            if effective == "fused":
                if len(self._sweep_cache) >= 8:  # many distinct dt values: bound
                    self._sweep_cache.clear()
                self._sweep_cache[float(dt)] = bound_sweeps

        if sparse_mode == "auto":
            sparse_mode = (
                "precomputed" if isinstance(schedule, WavefrontSchedule) else "offgrid"
            )
        if sparse_mode not in ("offgrid", "precomputed"):
            raise ValueError(f"unknown sparse mode {sparse_mode!r}")
        if sparse_mode == "offgrid" and isinstance(schedule, WavefrontSchedule):
            # backstop for callers that bind without the apply() preflight;
            # carries the same concrete counterexample the prover builds
            from ..errors import ScheduleLegalityError
            from ..verify.prover import offgrid_counterexample

            sparse = self.sparse_ops
            ce = offgrid_counterexample(self, schedule, sparse[0]) if sparse else None
            raise ScheduleLegalityError(
                "wavefront temporal blocking requires grid-aligned sparse "
                "operators (sparse_mode='precomputed'): off-the-grid "
                "injection inside space-time tiles violates data dependencies"
                + (f" — {ce.describe()}" if ce is not None else ""),
                counterexample=ce,
                schedule=schedule.describe(),
            )

        plan = ExecutionPlan(
            grid=self.grid,
            sweeps=bound_sweeps,
            radii=self.sweep_radii,
        )
        for inj in self.injections():
            j = self._sweep_index_for(inj.field.name, inj.time_offset)
            if sparse_mode == "precomputed":
                executor = self._aligned_injection(inj, dt)
            else:
                executor = RawInjection(inj, dt)
            plan.injections.setdefault(j, []).append(executor)
        for itp in self.interpolations():
            j = self._sweep_index_for(itp.field.name, itp.time_offset)
            if sparse_mode == "precomputed":
                executor = self._aligned_receiver(itp)
            else:
                executor = RawInterpolation(itp)
            plan.receivers.setdefault(j, []).append(executor)
        return plan

    # -- execution -----------------------------------------------------------------
    def apply(
        self,
        time_M: int,
        time_m: int = 0,
        dt: float = 1.0,
        schedule: Optional[Schedule] = None,
        sparse_mode: str = "auto",
        compiled: bool = True,
        engine: Optional[str] = None,
        health=None,
        checkpoint=None,
        faults=None,
        abft=None,
        preflight: bool = True,
        strict_engine: bool = False,
        telemetry=None,
        breaker=None,
        step_cache=None,
    ) -> ExecutionPlan:
        """Run iterations ``t in [time_m, time_M)`` under *schedule*.

        ``engine`` selects how sweeps execute: ``"fused"`` (default when
        compiled) runs each sweep as one fused three-address kernel fed from
        a scratch pool, ``"kernel"`` uses one compiled expression kernel per
        equation, ``"interp"`` the tree-walking interpreter.  All three are
        bit-identical.  ``compiled=False`` is shorthand for
        ``engine="interp"`` (kept for the ablation bench and as a debugging
        aid).  Returns the execution plan (useful for inspection in tests).

        Resilience (all optional, all off by default): a failing engine
        degrades down the fused -> kernel -> interp ladder with an
        :class:`~repro.errors.EngineFallbackWarning` unless ``strict_engine``;
        ``preflight`` validates the precomputed sparse structures before
        timestep 0; ``health``/``checkpoint``/``faults`` attach a
        :class:`~repro.runtime.health.HealthGuard`, a
        :class:`~repro.runtime.checkpoint.CheckpointConfig` (periodic
        snapshots, bit-identical resume) and a
        :class:`~repro.runtime.faults.FaultInjector`; ``abft`` attaches an
        :class:`~repro.runtime.abft.ABFTGuard` (silent-corruption detection
        at containment-unit boundaries with tile-granular micro-snapshot
        recovery; configured here against the bound plan unless it already
        carries a growth certificate); ``breaker`` hooks a
        :class:`~repro.jobs.CircuitBreaker` onto the engine ladder so
        repeatedly failing rungs are skipped instead of re-attempted.

        A :class:`~repro.runtime.health.HealthGuard` passed without an
        explicit ``max_abs`` gets one derived from the operator's certified
        CFL amplification bound and the plan's total source amplitude — the
        guard then catches runaway-but-finite states, not just NaN/Inf.

        ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry` buffer:
        binding/preflight/prover time lands in the ``precompute`` phase, the
        executors account stencil/injection/receiver/monitor time per phase
        (plus per-instance spans at ``detail="trace"``), and the static
        per-sweep flop/access counts are registered so achieved GPts/s and
        arithmetic intensity can be derived from measured sweep time.
        Telemetry never changes numerics — a telemetry-on run is
        bit-identical to a telemetry-off run.

        ``step_cache`` substitutes a caller-owned dict for the operator's
        private step-plan cache, letting wavefront tile geometry persist
        beyond this operator's lifetime (the warm-worker pool shares one
        per problem family).  Step plans depend only on grid, sweep radii
        and schedule, so sharing across identically-shaped operators is
        sound — numerics are untouched either way.
        """
        if time_M <= time_m:
            raise InvalidTimeRange(
                f"time_M must exceed time_m, got [{time_m}, {time_M})"
            )
        schedule = schedule or NaiveSchedule()
        tel = telemetry
        if tel is not None:
            aspan = tel.begin(
                "apply",
                operator=self.name,
                schedule=schedule.kind,
                time_m=time_m,
                time_M=time_M,
            )
            last = aspan.start
        if isinstance(schedule, WavefrontSchedule):
            # dependence-legality preflight: a certificate per (schedule,
            # sparse-mode) pair, or a ScheduleLegalityError naming two
            # conflicting statement instances
            self.certificate_for(schedule, sparse_mode)
            # parametric bounds preflight: under wavefront blocking every
            # engine executes the same clipped windows, so a refuted halo
            # proof is a hard error before timestep 0 — unlike the fused
            # bind gate there is no sound rung to degrade to
            bcert = self.bounds_certificate_for(schedule, sparse_mode)
            if not bcert.check():
                from ..errors import BoundsProofError

                ce = bcert.counterexample
                raise BoundsProofError(
                    f"{self.name}: parametric bounds analysis refuted halo "
                    "safety under the wavefront schedule: "
                    + (ce.describe() if ce is not None else "margin violated"),
                    engine="fused",
                    diagnostics=[],
                    counterexample=ce,
                    certificate=bcert,
                )
        if tel is not None:
            from .pycodegen import kernel_cache_stats

            kc_base = kernel_cache_stats()
        plan = self._bind(
            dt,
            schedule,
            sparse_mode,
            compiled=compiled,
            engine=engine,
            strict_engine=strict_engine,
            telemetry=tel,
            breaker=breaker,
        )
        if tel is not None:
            # prove + bind (mask/decompose precomputation included) so far
            now = tel.now()
            tel.add_phase("precompute", now - last)
            last = now
            self._register_static_costs(tel, schedule, plan)
            view_base = _view_cache_totals(plan)
            # process-wide kernel-cache activity of this bind: a warm
            # process binds by hit, a cold one by miss — the observable
            # the warm-worker pool's per-worker counters aggregate
            kc = kernel_cache_stats()
            tel.counters.add(
                "kernel_cache_hits",
                (kc["rhs_hits"] - kc_base["rhs_hits"])
                + (kc["sweep_hits"] - kc_base["sweep_hits"]),
            )
            tel.counters.add(
                "kernel_cache_misses",
                (kc["rhs_misses"] - kc_base["rhs_misses"])
                + (kc["sweep_misses"] - kc_base["sweep_misses"]),
            )
        if preflight:
            plan.validate()
            if tel is not None:
                now = tel.now()
                tel.add_phase("precompute", now - last)
                last = now
        if abft is not None or (
            health is not None and getattr(health, "max_abs_derived", False)
        ):
            if abft is not None:
                if abft.certificate is None:
                    abft.certificate = self.growth_certificate_for(plan, dt)
                abft.configure(plan, operator=self.name, dt=dt)
            if health is not None and getattr(health, "max_abs_derived", False):
                from ..runtime.abft import amplitude_ceiling

                health.max_abs = amplitude_ceiling(
                    plan,
                    time_M - time_m,
                    step_gain=self.growth_certificate_for(plan, dt).step_gain,
                )
            if tel is not None:
                now = tel.now()
                tel.add_phase("precompute", now - last)
                last = now
        run_schedule(
            plan,
            time_m,
            time_M,
            schedule,
            step_cache=step_cache if step_cache is not None else self._step_cache,
            health=health,
            checkpoint=checkpoint,
            faults=faults,
            abft=abft,
            telemetry=tel,
        )
        if tel is not None:
            hits, misses = _view_cache_totals(plan)
            tel.counters.add("view_cache_hits", hits - view_base[0])
            tel.counters.add("view_cache_misses", misses - view_base[1])
            tel.end(aspan)
        return plan

    def _register_static_costs(self, tel, schedule: Schedule, plan: ExecutionPlan) -> None:
        """Static per-sweep flop/access counts joined with measured counters
        by :func:`repro.telemetry.derived_metrics` (achieved GPts/s, GFLOP/s,
        arithmetic intensity)."""
        from ..analysis.metrics import access_count, eq_flops

        if self._static_costs is None:
            # expression-tree walks; the sweeps are immutable, so pay once
            self._static_costs = (
                [float(sum(eq_flops(e) for e in s.eqs)) for s in self.sweeps],
                [int(sum(access_count(e) for e in s.eqs)) for s in self.sweeps],
            )
        tel.meta["operator"] = self.name
        tel.meta["schedule"] = schedule.describe()
        tel.meta["engine"] = plan.sweeps[0].engine
        tel.meta["grid_shape"] = list(self.grid.shape)
        tel.meta["sweep_flops"] = list(self._static_costs[0])
        tel.meta["sweep_accesses"] = list(self._static_costs[1])
        tel.meta["dtype_bytes"] = int(
            plan.sweeps[0].beqs[0].lhs.function.dtype.itemsize
        )

    # -- code generation ------------------------------------------------------------
    def ccode(self, mode: str = "naive", schedule: Optional[Schedule] = None) -> str:
        """Emit C-like loop nests: 'naive' (Listing 1), 'fused' (Listing 4),
        'compressed' (Listing 5) or 'wavefront' (Listing 6)."""
        from .codegen import generate_code

        return generate_code(self, mode=mode, schedule=schedule)

    def __repr__(self) -> str:
        return (
            f"Operator({self.name}, sweeps={len(self.sweeps)}, "
            f"angle={self.wavefront_angle}, sparse={len(self.sparse_ops)})"
        )
