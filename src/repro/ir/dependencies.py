"""Data-dependence analysis for stencil update systems.

The wavefront temporal-blocking transformation is legal only if every flow
dependence points backwards along the skewed coordinate.  This module
extracts, from a list of symbolic update equations:

* the per-equation written access and read accesses,
* *sweeps* -- maximal groups of consecutive equations that may share one
  spatial traversal (no intra-group flow dependence of nonzero radius),
* each sweep's **read radius** (the largest spatial offset with which it reads
  any time-stepped field), which determines the extra wavefront *lag* the
  sweep contributes (Fig. 7/8 of the paper: the wavefront angle is the sum of
  the per-sweep radii, and steepens with the stencil radius),
* the cumulative lag table for a sequence of timesteps, used by both the
  wavefront executor and the performance model.

The legality argument implemented by :func:`validate_wavefront` is: order the
sweep *instances* of a time tile lexicographically by (timestep, sweep); give
instance ``i`` the lag ``L[i] = L[i-1] + read_radius(i)``.  Then for any
instance ``A`` reading data written by an earlier instance ``B``,
``L[A] - L[B] >= read_radius(A)``, hence executing each instance on the
window ``[X0 - L, X1 - L)`` of a tile ``[X0, X1)``, tiles ascending, never
reads a point that has not yet been written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..dsl.equation import Eq
from ..dsl.functions import TimeFunction
from ..dsl.symbols import Indexed

__all__ = [
    "Access",
    "Sweep",
    "read_accesses",
    "written_access",
    "build_sweeps",
    "sweep_read_radius",
    "wavefront_lags",
    "wavefront_angle",
    "validate_wavefront",
    "spatial_read_radius",
]


@dataclass(frozen=True)
class Access:
    """One field access: function, time offset and per-dimension space offsets."""

    function: object
    time_offset: int
    space_offsets: Tuple[Tuple[str, int], ...]

    @property
    def radius(self) -> int:
        """Largest absolute spatial offset (Chebyshev radius)."""
        if not self.space_offsets:
            return 0
        return max(abs(s) for _, s in self.space_offsets)

    def radius_along(self, dim_name: str) -> int:
        for d, s in self.space_offsets:
            if d == dim_name:
                return abs(s)
        return 0


def _classify(indexed: Indexed) -> Access:
    func = indexed.function
    offsets = indexed.offset_map()
    t_off = 0
    space = []
    for name, shift in offsets.items():
        if name == "t":
            t_off = shift
        else:
            space.append((name, shift))
    return Access(func, t_off, tuple(sorted(space)))


def written_access(eq: Eq) -> Access:
    return _classify(eq.lhs)


def read_accesses(eq: Eq) -> List[Access]:
    return [_classify(ix) for ix in eq.rhs.atoms(Indexed)]


def spatial_read_radius(eq: Eq) -> int:
    """Largest spatial offset among the equation's reads."""
    reads = read_accesses(eq)
    return max((a.radius for a in reads), default=0)


@dataclass
class Sweep:
    """A group of equations sharing one spatial traversal of the grid.

    All equations in a sweep are evaluated, in order, for every point of a
    box before the executor moves to the next box.
    """

    eqs: List[Eq] = field(default_factory=list)

    @property
    def writes(self) -> List[Access]:
        return [written_access(e) for e in self.eqs]

    @property
    def written_keys(self) -> set:
        return {(w.function.name, w.time_offset) for w in self.writes}

    def time_reads(self) -> List[Access]:
        """Reads of time-stepped fields not produced inside this sweep."""
        produced = self.written_keys
        out = []
        for e in self.eqs:
            for a in read_accesses(e):
                if not isinstance(a.function, TimeFunction):
                    continue
                if (a.function.name, a.time_offset) in produced:
                    continue
                out.append(a)
        return out

    def read_radius(self) -> int:
        """Maximal spatial radius of external time-field reads: the lag this
        sweep adds to the wavefront."""
        return max((a.radius for a in self.time_reads()), default=0)

    def write_radius(self) -> int:
        return 0  # all writes are pointwise in explicit FD schemes

    def __repr__(self) -> str:
        names = ",".join(e.write_function.name for e in self.eqs)
        return f"Sweep([{names}], r={self.read_radius()})"


def _blocks_merge(candidate: Eq, sweep: Sweep) -> bool:
    """True if *candidate* cannot join *sweep*.

    Merging is illegal when the candidate reads, at nonzero spatial radius,
    a value written earlier in the same sweep (the read would cross the box
    boundary into not-yet-computed data).  Radius-0 intra-sweep reads are
    fine: equations run in order over each box.
    """
    produced = sweep.written_keys
    for a in read_accesses(candidate):
        key = (a.function.name, a.time_offset)
        if key in produced and a.radius > 0:
            return True
    # a sweep may write each (field, time) slot only once
    w = written_access(candidate)
    if (w.function.name, w.time_offset) in produced:
        return True
    return False


def build_sweeps(eqs: Sequence[Eq]) -> List[Sweep]:
    """Greedily group consecutive equations into sweeps (program order kept)."""
    sweeps: List[Sweep] = []
    for eq in eqs:
        if sweeps and not _blocks_merge(eq, sweeps[-1]):
            sweeps[-1].eqs.append(eq)
        else:
            sweeps.append(Sweep([eq]))
    return sweeps


def sweep_read_radius(sweep: Sweep) -> int:
    """Module-level form of :meth:`Sweep.read_radius`: the largest spatial
    radius at which *sweep* reads time-stepped data it does not itself
    produce — i.e. the wavefront lag the sweep contributes.

    Zero-radius sweeps (pointwise updates, e.g. damping-only corrections) and
    multi-field sweeps (elastic: one sweep reads several staggered fields)
    are both covered: the maximum runs over every external time-field read,
    and an empty read set yields 0.
    """
    return sweep.read_radius()


def wavefront_angle(sweeps: Sequence[Sweep]) -> int:
    """Wavefront skew per timestep: the sum of the per-sweep read radii.

    For single-sweep kernels this is the stencil radius (Fig. 7); for the
    staggered/coupled kernels it is the sum over the sweeps (Fig. 8b).
    """
    return sum(s.read_radius() for s in sweeps)


def wavefront_lags(sweeps: Sequence[Sweep], nsteps: int) -> List[int]:
    """Cumulative lag for each sweep instance of an *nsteps*-high time tile.

    Instance order is ``(t0, sweep0), (t0, sweep1), ..., (t1, sweep0), ...``;
    ``lags[i]`` is subtracted from the tile window when executing instance i.
    """
    from ..core.scheduler import instance_lags

    return instance_lags(tuple(s.read_radius() for s in sweeps), nsteps)


def validate_wavefront(sweeps: Sequence[Sweep], nsteps: int) -> None:
    """Check the pairwise lag condition ``L[A] - L[B] >= read_radius(A)``.

    With lags built by :func:`wavefront_lags` the condition holds by
    construction whenever every external read refers to data written by an
    earlier instance; this routine verifies that assumption by locating, for
    every read, the most recent producing instance, and raises ``ValueError``
    on violation (e.g. an equation reading a future timestep).
    """
    lags = wavefront_lags(sweeps, nsteps)
    k = len(sweeps)
    # Reads of data produced *before* the tile are always legal (earlier tiles
    # complete fully); intra-tile producers are covered by the constructive
    # lag property.  What remains to reject is a read of the future relative
    # to the write -- a system no causal schedule can execute:
    for sweep in sweeps:
        for eq in sweep.eqs:
            w = written_access(eq)
            for a in read_accesses(eq):
                if not isinstance(a.function, TimeFunction):
                    continue
                if (a.function.name, a.time_offset) in sweep.written_keys and a.radius == 0:
                    continue  # intra-sweep pointwise read, executes in order
                if a.time_offset > w.time_offset:
                    raise ValueError(
                        f"equation {eq} reads future time offset {a.time_offset} "
                        f"while writing offset {w.time_offset}; wavefront "
                        "blocking is not legal for this system"
                    )
    # the constructive property: each instance's lag increment equals its
    # read radius, so L[A] - L[B] >= read_radius(A) for every earlier B
    for i in range(1, len(lags)):
        j = i % k
        if lags[i] - lags[i - 1] != sweeps[j].read_radius():
            raise AssertionError("lag table violates constructive property")
