"""Compiler intermediate representation: dependence analysis, loop-nest IR,
transformation passes and code generation."""
from .dependencies import (
    Access,
    Sweep,
    build_sweeps,
    read_accesses,
    spatial_read_radius,
    validate_wavefront,
    wavefront_angle,
    wavefront_lags,
    written_access,
)
from .operator import Operator

__all__ = [
    "Operator",
    "Access",
    "Sweep",
    "build_sweeps",
    "read_accesses",
    "written_access",
    "spatial_read_radius",
    "wavefront_angle",
    "wavefront_lags",
    "validate_wavefront",
]
