"""Compiler intermediate representation: dependence analysis, loop-nest IR,
transformation passes and code generation."""
from .dependencies import (
    Access,
    Sweep,
    build_sweeps,
    read_accesses,
    spatial_read_radius,
    validate_wavefront,
    wavefront_angle,
    wavefront_lags,
    written_access,
)
from .operator import Operator
from .passes import CSEResult, cse_sweep
from .pycodegen import (
    ScratchPool,
    clear_kernel_caches,
    compile_rhs,
    compile_sweep,
    kernel_cache_stats,
)

__all__ = [
    "Operator",
    "CSEResult",
    "cse_sweep",
    "ScratchPool",
    "compile_rhs",
    "compile_sweep",
    "kernel_cache_stats",
    "clear_kernel_caches",
    "Access",
    "Sweep",
    "build_sweeps",
    "read_accesses",
    "written_access",
    "spatial_read_radius",
    "wavefront_angle",
    "wavefront_lags",
    "validate_wavefront",
]
