"""NumPy kernel generation: compile symbolic expressions to Python closures.

Devito's key trick is generating low-level code from the symbolic problem
definition; our executor applies the same idea at the NumPy level.  Two
generations of kernel live here:

* :func:`compile_rhs` — the original per-equation kernel: each equation's
  right-hand side is rendered once into a single Python/NumPy expression over
  named array views and compiled; every binary operation materialises a full
  temporary (NumPy's normal evaluation).  Kept as the ``engine="kernel"``
  execution mode and as the reference the fused engine is measured against.

* :func:`compile_sweep` — the fused three-address engine (``engine="fused"``,
  the default): all equations of a sweep are lowered, after the
  common-subexpression-elimination pass of :func:`repro.ir.passes.cse_sweep`,
  into a single linear program of ``np.add(a, b, out=s)``-style instructions
  writing into a shape/dtype-keyed :class:`ScratchPool` — no temporaries are
  allocated on the hot path, repeated subexpressions are evaluated once, and
  scratch slots are recycled by liveness so the pool stays small.

Both paths are bit-identical to the tree-walking interpreter (the tests
assert this; the interpreter remains available as ``engine="interp"`` /
``BoundEq(..., compiled=False)``): instruction order follows the
interpreter's left-associative evaluation exactly, and every intermediate is
computed in the dtype NumPy promotion would naturally give (determined at
compile time by probing the ufuncs with zero-size specimen arrays).

Compiled kernels are cached process-wide, keyed by the canonical (hashable)
expression structure plus operand dtypes, so autotuner sweeps and repeated
operator builds compile each distinct kernel once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dsl.symbols import Add, Call, Expr, Indexed, Mul, Number, Pow, Symbol
from .nodes import TAInstr, TAOperand, TAProgram

__all__ = [
    "render_numpy_expression",
    "compile_rhs",
    "compile_sweep",
    "ScratchPool",
    "kernel_cache_stats",
    "clear_kernel_caches",
]

_ALLOWED_CALLS = {"sin", "cos", "tan", "sqrt", "exp"}


def render_numpy_expression(expr: Expr, names: Dict[Indexed, str]) -> str:
    """Render *expr* as a Python/NumPy source expression.

    ``names`` maps every Indexed access to the local variable holding its
    array view.  Raises on unbound symbols (the caller must substitute dt and
    spacings first).
    """

    def rec(e: Expr) -> str:
        if isinstance(e, Number):
            return repr(float(e.value)) if isinstance(e.value, float) else repr(e.value)
        if isinstance(e, Indexed):
            return names[e]
        if isinstance(e, Symbol):
            raise ValueError(f"unbound symbol {e.name!r} in expression")
        if isinstance(e, Add):
            return "(" + " + ".join(rec(a) for a in e.args) + ")"
        if isinstance(e, Mul):
            return "(" + "*".join(rec(a) for a in e.args) + ")"
        if isinstance(e, Pow):
            exp = e.exponent
            if isinstance(exp, Number):
                v = exp.value
                if v == -1:
                    return f"(1.0/{rec(e.base)})"
                if isinstance(v, int) and 0 < v <= 4:
                    return "(" + "*".join([rec(e.base)] * v) + ")"
                return f"({rec(e.base)}**{v!r})"
            return f"({rec(e.base)}**{rec(exp)})"
        if isinstance(e, Call):
            if e.name not in _ALLOWED_CALLS:
                raise ValueError(f"unsupported call {e.name!r} in generated kernel")
            return f"np.{e.name}({rec(e.argument)})"
        raise TypeError(f"cannot render node {type(e).__name__}")

    return rec(expr)


# -- kernel caches ---------------------------------------------------------------

_RHS_CACHE: Dict[object, Tuple[Callable, List[Indexed]]] = {}
_SWEEP_CACHE: Dict[object, Callable] = {}
_CACHE_STATS = {"rhs_hits": 0, "rhs_misses": 0, "sweep_hits": 0, "sweep_misses": 0}


def kernel_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide kernel caches (for tests/benches)."""
    stats = dict(_CACHE_STATS)
    stats["rhs_entries"] = len(_RHS_CACHE)
    stats["sweep_entries"] = len(_SWEEP_CACHE)
    return stats


def clear_kernel_caches() -> None:
    _RHS_CACHE.clear()
    _SWEEP_CACHE.clear()
    for k in _CACHE_STATS:
        _CACHE_STATS[k] = 0


def compile_rhs(rhs: Expr, reads: Sequence[Indexed]) -> Tuple[Callable, List[Indexed]]:
    """Compile ``rhs`` into ``kernel(out, v0, v1, ...)`` writing in place.

    Returns the compiled callable and the read order its positional view
    arguments follow.  The store uses ``out[...] = expr`` so dtype and layout
    follow the output view exactly as the interpreter's assignment does.
    Kernels are cached by canonical expression structure: compiling the same
    bound equation twice returns the same callable.
    """
    reads = list(reads)
    key = (rhs, tuple(reads))
    hit = _RHS_CACHE.get(key)
    if hit is not None:
        _CACHE_STATS["rhs_hits"] += 1
        # return the *caller's* reads, not the cached ones: Indexed equality
        # is structural, so a hit may come from an equation over different
        # (same-named) Function objects and the cached accesses would bind
        # views to stale arrays
        return hit[0], reads
    _CACHE_STATS["rhs_misses"] += 1
    names = {access: f"v{i}" for i, access in enumerate(reads)}
    body = render_numpy_expression(rhs, names)
    args = ", ".join(["out"] + [names[a] for a in reads])
    source = f"def _kernel({args}):\n    out[...] = {body}\n"
    namespace: Dict[str, object] = {"np": np}
    code = compile(source, filename="<repro-kernel>", mode="exec")
    exec(code, namespace)
    kernel = namespace["_kernel"]
    kernel.__source__ = source  # for inspection/tests
    _RHS_CACHE[key] = (kernel, list(reads))
    return kernel, reads


# -- the fused three-address engine ----------------------------------------------


class ScratchPool:
    """Shape/dtype-keyed pool of scratch buffers for generated kernels.

    A fused kernel's scratch slots are checked out with
    ``pool.get(shape, dtype, slot)`` when a ``(t, box)`` instance is first
    bound (the kernel's ``__slotspec__`` lists the required dtypes); the
    arrays persist on the pool, so steady-state execution performs **zero**
    allocations.  Distinct slot
    indices of equal shape and dtype map to distinct arrays (a kernel may
    need several same-typed scratch registers live at once), and the pool is
    shared freely across sweeps and operator rebuilds — buffers are keyed
    only by what they are, not by who uses them.

    **Slab mode** (``slab_view``): when the whole-program scratch-liveness
    proof holds (every slot written before read in every kernel — see
    :mod:`repro.verify.absint.liveness`), slots no longer need per-*shape*
    buffers: one growable 1-D slab per ``(dtype, color)`` backs every box
    shape via reshaped prefix views.  Wavefront execution touches many
    distinct clipped box shapes, so this collapses ``shapes x slots``
    buffers into ``ncolors`` slabs; the coloring plan is computed by
    :func:`repro.ir.passes.plan_scratch_slots` and applied per sweep.
    """

    __slots__ = ("_bufs", "_slabs")

    def __init__(self) -> None:
        self._bufs: Dict[Tuple, np.ndarray] = {}
        self._slabs: Dict[Tuple, np.ndarray] = {}

    def get(self, shape: Tuple[int, ...], dtype: np.dtype, slot: int) -> np.ndarray:
        key = (shape, dtype, slot)
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf

    def slab_view(self, shape: Tuple[int, ...], dtype: np.dtype, color: int) -> np.ndarray:
        """A *shape*-shaped scratch view backed by the ``(dtype, color)`` slab.

        Sound only for slots proven write-before-read (the slab is shared
        across every sweep and box shape, so its prior contents are
        arbitrary).  A slab grows geometrically when a larger box arrives;
        earlier views keep the old storage, which is harmless — aliasing
        between *distinct* colors (the only aliasing that could corrupt a
        kernel call) never occurs, as each color owns its own slab.
        """
        key = (np.dtype(dtype).str, int(color))
        n = 1
        for s in shape:
            n *= int(s)
        slab = self._slabs.get(key)
        if slab is None or slab.size < n:
            cap = n if slab is None else max(n, 2 * slab.size)
            slab = np.empty(cap, dtype=dtype)
            self._slabs[key] = slab
        return slab[:n].reshape(shape)

    @property
    def buffer_count(self) -> int:
        """Legacy per-(shape, dtype, slot) buffers currently allocated."""
        return len(self._bufs)

    @property
    def slab_count(self) -> int:
        """(dtype, color) slabs currently allocated."""
        return len(self._slabs)

    def __len__(self) -> int:
        return len(self._bufs) + len(self._slabs)

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values()) + sum(
            b.nbytes for b in self._slabs.values()
        )

    def clear(self) -> None:
        self._bufs.clear()
        self._slabs.clear()


class _Operand:
    """A value in the three-address program: scalar, view or scratch slot."""

    __slots__ = ("kind", "text", "spec")

    def __init__(self, kind: str, text: str, spec):
        self.kind = kind  # 'scalar' | 'view' | 'slot'
        self.text = text  # source fragment (repr of the scalar / local name)
        self.spec = spec  # zero-size specimen array (None for scalars)


class _Emitter:
    """Lower rewritten expressions to three-address NumPy instructions.

    Intermediate dtypes are established by executing every instruction once,
    at compile time, on zero-size specimen arrays — so each scratch slot gets
    exactly the dtype NumPy promotion gives the interpreter, including weak
    scalar promotion.  Slots are recycled with exact liveness accounting
    (``_remaining`` tracks future operand consumptions per slot), which keeps
    the checkout list short regardless of expression size.
    """

    def __init__(self, view_names: Dict[Indexed, str], view_specs: Dict[str, np.ndarray]):
        self.view_names = view_names
        self.view_specs = view_specs
        self.lines: List[str] = []
        #: structured mirror of ``lines`` (same order, peepholes applied)
        self.instrs: List[TAInstr] = []
        self.slots: Dict[str, np.dtype] = {}  # slot name -> dtype
        self.consts: Dict[str, np.ndarray] = {}  # const name -> 0-d array
        self._const_names: Dict[Tuple[str, str], str] = {}
        self._free: Dict[np.dtype, List[str]] = {}
        self._remaining: Dict[str, int] = {}
        self._temps: Dict[Symbol, _Operand] = {}
        self._nslots = 0

    def _ta(self, op: _Operand) -> TAOperand:
        """The structured-IR operand mirroring *op*."""
        if op.kind == "scalar":
            return TAOperand("scalar", op.text, None)
        if op.kind == "const":
            return TAOperand("const", op.text, self.consts[op.text].dtype.name)
        kind = "view" if op.kind == "view" else "slot"
        return TAOperand(kind, op.text, op.spec.dtype.name)

    # -- slot lifecycle ---------------------------------------------------------
    def _alloc(self, spec: np.ndarray) -> _Operand:
        free = self._free.get(spec.dtype)
        if free:
            name = free.pop()
        else:
            name = f"s{self._nslots}"
            self._nslots += 1
            self.slots[name] = spec.dtype
        self._remaining[name] = 1
        return _Operand("slot", name, spec)

    def _consume(self, op: _Operand) -> None:
        if op.kind != "slot":
            return
        self._remaining[op.text] -= 1
        if self._remaining[op.text] == 0:
            self._free.setdefault(op.spec.dtype, []).append(op.text)

    def _retain(self, op: _Operand, extra: int) -> None:
        if op.kind == "slot" and extra:
            self._remaining[op.text] += extra

    # -- instruction emission ---------------------------------------------------
    def _emit(self, ufunc: str, operands: List[_Operand]) -> _Operand:
        # peephole: negating the result of the immediately preceding subtract
        # reverses it instead: fl(-(a-b)) == fl(b-a) for every IEEE input
        # (round-to-nearest is sign-symmetric; only zero signs can differ,
        # which array equality treats as equal) — one whole-box op saved
        if ufunc == "negative" and len(operands) == 1:
            o = operands[0]
            tail = f", {o.text})"
            if (
                o.kind == "slot"
                and self._remaining.get(o.text, 0) == 1
                and self.lines
                and self.lines[-1].startswith("np.subtract(")
                and self.lines[-1].endswith(tail)
            ):
                a, b, out = [
                    p.strip()
                    for p in self.lines[-1][len("np.subtract(") : -1].split(",")
                ]
                self.lines[-1] = f"np.subtract({b}, {a}, {out})"
                prev = self.instrs[-1]
                self.instrs[-1] = TAInstr(
                    "subtract", (prev.args[1], prev.args[0]), prev.out
                )
                return o
        # peephole: multiply by the literal -1 is an exact IEEE sign flip, so
        # emit np.negative instead (guarded on identical result dtype, which
        # rules out e.g. -1.0 * int_array promoting to float64)
        if ufunc == "multiply" and len(operands) == 2:
            for i, o in enumerate(operands):
                if o.kind == "scalar" and eval(o.text) == -1:
                    other = operands[1 - i]
                    if other.spec is not None:
                        mul = np.multiply(eval(o.text), other.spec)
                        if np.negative(other.spec).dtype == mul.dtype:
                            return self._emit("negative", [other])
                    break
        spec = getattr(np, ufunc)(
            *[o.spec if o.spec is not None else eval(o.text) for o in operands]
        )
        # bind scalar literals as 0-d arrays of the partner operand's dtype:
        # NumPy's weak scalar promotion casts the Python scalar to exactly
        # that dtype anyway (guarded by the result-dtype check, which rules
        # out genuinely promoting cases like float * int_array), and the
        # prebound constant skips the per-call scalar conversion — a large
        # share of ufunc dispatch cost on small tiles
        if len(operands) == 2:
            for i, o in enumerate(operands):
                other = operands[1 - i]
                if (
                    o.kind == "scalar"
                    and other.spec is not None
                    and spec.dtype == other.spec.dtype
                ):
                    operands[i] = self._const(o.text, other.spec.dtype)
        for o in operands:
            self._consume(o)
        out = self._alloc(spec)
        args = ", ".join(o.text for o in operands)
        # positional out: skips the ufunc kwarg-parsing path, which is
        # measurable at wavefront tile sizes
        self.lines.append(f"np.{ufunc}({args}, {out.text})")
        self.instrs.append(
            TAInstr(ufunc, tuple(self._ta(o) for o in operands), self._ta(out))
        )
        return out

    def _const(self, text: str, dtype: np.dtype) -> _Operand:
        key = (text, np.dtype(dtype).str)
        name = self._const_names.get(key)
        if name is None:
            name = f"_c{len(self.consts)}"
            self._const_names[key] = name
            self.consts[name] = np.asarray(eval(text), dtype=dtype)
        return _Operand("const", name, None)

    def _chain(self, ufunc: str, first: _Operand, rest: Sequence[Expr]) -> _Operand:
        acc = first
        for term in rest:
            if ufunc == "add":
                negated = self._negated_factor(term)
                if negated is not None:
                    # acc + ((-1*r1)*r2*...) == acc - (r1*r2*...) exactly:
                    # the -1 factor only ever flips the sign bit, and IEEE
                    # defines a - b as a + (-b) with identical rounding
                    rop = self.lower(negated)
                    acc = self._emit("subtract", [acc, rop])
                    continue
            acc = self._emit(ufunc, [acc, self.lower(term)])
        return acc

    @staticmethod
    def _negated_factor(term: Expr) -> Optional[Expr]:
        """``rest`` if *term* is ``Mul(-1, *rest)`` with float-safe dtypes."""
        if not (isinstance(term, Mul) and isinstance(term.args[0], Number)):
            return None
        c = term.args[0].value
        if c != -1 or not isinstance(c, int):
            # -1.0 * int_array would promote to float64; only the exact
            # integer literal is dtype-neutral under weak scalar promotion
            return None
        rest = term.args[1:]
        return rest[0] if len(rest) == 1 else Mul(*rest)

    # -- lowering ---------------------------------------------------------------
    def bind_temp(self, sym: Symbol, expr: Expr, uses: int) -> None:
        """Lower a CSE assignment ``sym = expr`` with *uses* future reads."""
        op = self.lower(expr)
        if op.kind == "slot":
            self._remaining[op.text] = uses
        self._temps[sym] = op

    def store(self, out_name: str, expr: Expr, out_dtype: Optional[np.dtype] = None) -> None:
        """Emit the final per-equation assignment ``out[...] = value``.

        When the value was just produced by the preceding instruction, is not
        read again, and already has the output dtype, the instruction is
        retargeted to write the output view directly — saving one full
        box-sized copy per equation.  (NumPy ufuncs handle out-aliases-input
        overlap correctly, so this is safe even for radius-0 self reads.)
        """
        op = self.lower(expr)
        out_ta = TAOperand(
            "out", out_name, np.dtype(out_dtype).name if out_dtype is not None else None
        )
        producer_tail = f", {op.text})"
        if (
            op.kind == "slot"
            and out_dtype is not None
            and op.spec.dtype == out_dtype
            and self._remaining.get(op.text, 0) == 1
            and self.lines
            and self.lines[-1].endswith(producer_tail)
        ):
            self.lines[-1] = self.lines[-1][: -len(producer_tail)] + f", {out_name})"
            prev = self.instrs[-1]
            self.instrs[-1] = TAInstr(prev.op, prev.args, out_ta)
            self._consume(op)
            return
        self.lines.append(f"{out_name}[...] = {op.text}")
        self.instrs.append(TAInstr("store", (self._ta(op),), out_ta))
        self._consume(op)

    def lower(self, e: Expr) -> _Operand:
        if isinstance(e, Number):
            text = repr(float(e.value)) if isinstance(e.value, float) else repr(e.value)
            return _Operand("scalar", text, None)
        if isinstance(e, Indexed):
            name = self.view_names[e]
            return _Operand("view", name, self.view_specs[name])
        if isinstance(e, Symbol):
            try:
                return self._temps[e]
            except KeyError:
                raise ValueError(f"unbound symbol {e.name!r} in expression") from None
        if isinstance(e, Add):
            return self._chain("add", self.lower(e.args[0]), e.args[1:])
        if isinstance(e, Mul):
            return self._chain("multiply", self.lower(e.args[0]), e.args[1:])
        if isinstance(e, Pow):
            return self._lower_pow(e)
        if isinstance(e, Call):
            if e.name not in _ALLOWED_CALLS:
                raise ValueError(f"unsupported call {e.name!r} in generated kernel")
            return self._emit(e.name, [self.lower(e.argument)])
        raise TypeError(f"cannot lower node {type(e).__name__}")

    def _lower_pow(self, e: Pow) -> _Operand:
        exp = e.exponent
        if isinstance(exp, Number):
            v = exp.value
            if v == -1:
                return self._emit("divide", [_Operand("scalar", "1.0", None), self.lower(e.base)])
            if isinstance(v, int) and 0 < v <= 4:
                # repeated multiply, exactly as the single-expression kernels
                base = self.lower(e.base)
                self._retain(base, v - 1)
                acc = base
                for _ in range(v - 1):
                    acc = self._emit("multiply", [acc, base])
                return acc
            text = repr(float(v)) if isinstance(v, float) else repr(v)
            return self._emit("power", [self.lower(e.base), _Operand("scalar", text, None)])
        return self._emit("power", [self.lower(e.base), self.lower(exp)])


def _count_symbol_uses(exprs: Sequence[Expr]) -> Dict[Symbol, int]:
    uses: Dict[Symbol, int] = {}
    for expr in exprs:
        for node in expr.preorder():
            if isinstance(node, Symbol):
                uses[node] = uses.get(node, 0) + 1
    return uses


def compile_sweep(
    lhss: Sequence[Indexed],
    rhss: Sequence[Expr],
    reads: Sequence[Indexed],
    read_dtypes: Sequence[np.dtype],
    out_dtypes: Sequence[np.dtype],
) -> Callable:
    """Compile all equations of a sweep into one fused three-address kernel.

    The kernel has signature ``kernel(pool, outs, views)`` where *outs* and
    *views* are tuples of box-shaped array views in the order of *lhss* and
    *reads*, and *pool* is a :class:`ScratchPool`.  Equations execute in
    order, each ending in a plain ``out[...] = value`` store, so intra-sweep
    radius-0 reads of earlier writes observe updated data exactly as the
    sequential per-equation paths do.

    Kernels are cached by the canonical expression structure of the whole
    sweep plus every operand dtype; the generated source is shape-agnostic.
    """
    lhss = list(lhss)
    rhss = list(rhss)
    reads = list(reads)
    read_dtypes = [np.dtype(d) for d in read_dtypes]
    out_dtypes = [np.dtype(d) for d in out_dtypes]
    key = (
        tuple(lhss),
        tuple(rhss),
        tuple(reads),
        tuple(d.str for d in read_dtypes),
        tuple(d.str for d in out_dtypes),
    )
    hit = _SWEEP_CACHE.get(key)
    if hit is not None:
        _CACHE_STATS["sweep_hits"] += 1
        return hit
    _CACHE_STATS["sweep_misses"] += 1

    from .passes import cse_sweep

    written = frozenset((l.function.name, l.offset_map().get("t", 0)) for l in lhss)
    cse = cse_sweep(rhss, protected_keys=written)
    uses = _count_symbol_uses(
        [expr for sink in cse.assignments for _, expr in sink] + cse.rhss
    )

    view_names = {access: f"v{i}" for i, access in enumerate(reads)}
    view_specs = {
        f"v{i}": np.empty(0, dtype=dt) for i, dt in enumerate(read_dtypes)
    }
    em = _Emitter(view_names, view_specs)
    for i, rhs in enumerate(cse.rhss):
        for sym, expr in cse.assignments[i]:
            em.bind_temp(sym, expr, uses.get(sym, 1))
        em.store(f"o{i}", rhs, out_dtypes[i])

    # assemble: unpack the prebound scratch slots and view tuples, then the
    # instruction body.  Slot checkout (pool lookups) happens once per cached
    # (t, box) binding in BoundSweep.evaluate, not per kernel call.
    onames = [f"o{i}" for i in range(len(lhss))]
    lines = ["def _kernel(slots, outs, views):"]
    if em.slots:
        lines.append(f"    ({', '.join(em.slots)},) = slots")
    lines.append(f"    ({', '.join(onames)},) = outs")
    if reads:
        vnames = [f"v{i}" for i in range(len(reads))]
        lines.append(f"    ({', '.join(vnames)},) = views")
    namespace: Dict[str, object] = {"np": np}
    namespace.update(em.consts)
    lines.extend(f"    {line}" for line in em.lines)
    source = "\n".join(lines) + "\n"

    code = compile(source, filename="<repro-fused-kernel>", mode="exec")
    exec(code, namespace)
    kernel = namespace["_kernel"]
    kernel.__source__ = source  # for inspection/tests
    kernel.__nslots__ = len(em.slots)
    kernel.__ntemps__ = cse.ntemps
    # structured three-address program: the typed mirror of __source__ the
    # abstract-interpretation passes (repro.verify.absint) operate on
    kernel.__program__ = TAProgram(
        instrs=tuple(em.instrs),
        slots=tuple((n, d.name) for n, d in em.slots.items()),
        views=tuple((f"v{i}", d.name) for i, d in enumerate(read_dtypes)),
        outs=tuple((f"o{i}", d.name) for i, d in enumerate(out_dtypes)),
        consts=tuple((n, a.dtype.name) for n, a in em.consts.items()),
    )
    # (dtype, per-dtype index) per slot, in s0..sN order: the caller checks
    # the actual buffers out of its ScratchPool with this spec
    per_dtype_index: Dict[np.dtype, int] = {}
    slotspec = []
    for dt in em.slots.values():
        idx = per_dtype_index.get(dt, 0)
        per_dtype_index[dt] = idx + 1
        slotspec.append((dt, idx))
    kernel.__slotspec__ = tuple(slotspec)
    _SWEEP_CACHE[key] = kernel
    return kernel
