"""NumPy kernel generation: compile symbolic expressions to Python closures.

Devito's key trick is generating low-level code from the symbolic problem
definition; our executor applies the same idea at the NumPy level.  Instead
of walking the expression tree for every (timestep, box) evaluation, each
equation is rendered once into a Python source string over named array views
and compiled with :func:`compile` — typically several times faster for wide
stencils, and bit-identical to the tree-walking interpreter (the tests assert
this; the interpreter remains available as ``BoundEq(..., compiled=False)``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..dsl.symbols import Add, Call, Expr, Indexed, Mul, Number, Pow, Symbol

__all__ = ["render_numpy_expression", "compile_rhs"]

_ALLOWED_CALLS = {"sin", "cos", "tan", "sqrt", "exp"}


def render_numpy_expression(expr: Expr, names: Dict[Indexed, str]) -> str:
    """Render *expr* as a Python/NumPy source expression.

    ``names`` maps every Indexed access to the local variable holding its
    array view.  Raises on unbound symbols (the caller must substitute dt and
    spacings first).
    """

    def rec(e: Expr) -> str:
        if isinstance(e, Number):
            return repr(float(e.value)) if isinstance(e.value, float) else repr(e.value)
        if isinstance(e, Indexed):
            return names[e]
        if isinstance(e, Symbol):
            raise ValueError(f"unbound symbol {e.name!r} in expression")
        if isinstance(e, Add):
            return "(" + " + ".join(rec(a) for a in e.args) + ")"
        if isinstance(e, Mul):
            return "(" + "*".join(rec(a) for a in e.args) + ")"
        if isinstance(e, Pow):
            exp = e.exponent
            if isinstance(exp, Number):
                v = exp.value
                if v == -1:
                    return f"(1.0/{rec(e.base)})"
                if isinstance(v, int) and 0 < v <= 4:
                    return "(" + "*".join([rec(e.base)] * v) + ")"
                return f"({rec(e.base)}**{v!r})"
            return f"({rec(e.base)}**{rec(exp)})"
        if isinstance(e, Call):
            if e.name not in _ALLOWED_CALLS:
                raise ValueError(f"unsupported call {e.name!r} in generated kernel")
            return f"np.{e.name}({rec(e.argument)})"
        raise TypeError(f"cannot render node {type(e).__name__}")

    return rec(expr)


def compile_rhs(rhs: Expr, reads: Sequence[Indexed]) -> Tuple[Callable, List[Indexed]]:
    """Compile ``rhs`` into ``kernel(out, v0, v1, ...)`` writing in place.

    Returns the compiled callable and the read order its positional view
    arguments follow.  The store uses ``out[...] = expr`` so dtype and layout
    follow the output view exactly as the interpreter's assignment does.
    """
    reads = list(reads)
    names = {access: f"v{i}" for i, access in enumerate(reads)}
    body = render_numpy_expression(rhs, names)
    args = ", ".join(["out"] + [names[a] for a in reads])
    source = f"def _kernel({args}):\n    out[...] = {body}\n"
    namespace: Dict[str, object] = {"np": np}
    code = compile(source, filename=f"<repro-kernel>", mode="exec")
    exec(code, namespace)
    kernel = namespace["_kernel"]
    kernel.__source__ = source  # for inspection/tests
    return kernel, reads
