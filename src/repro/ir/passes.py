"""Loop-nest construction and transformation passes (Listings 1-6).

Each pass builds the IR tree for one stage of the paper's pipeline:

* :func:`build_naive`        — Listing 1: stencil nest + off-the-grid source
  loop with non-affine indirection.
* :func:`build_fused`        — Listing 4: grid-aligned injection fused at the
  ``z``-loop level through the ``SM``/``SID`` masks.
* :func:`build_compressed`   — Listing 5: iteration-space reduction with
  ``nnz_mask``/``Sp_SID``.
* :func:`build_wavefront`    — Listing 6: skewed space-time tiles + blocks
  around the compressed fused nest.

The trees are consumed by :mod:`repro.ir.codegen` (C emission) and by the
structural unit tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.scheduler import WavefrontSchedule
from ..dsl.symbols import Indexed
from .dependencies import Sweep
from .nodes import Block, Comment, Iteration, Node, Pragma, Statement

__all__ = ["build_naive", "build_fused", "build_compressed", "build_wavefront", "c_expr"]


def c_expr(expr, time_index: str = "t", buffers: dict | None = None) -> str:
    """Render a symbolic expression as C."""
    from ..dsl.symbols import Add, Call, Mul, Number, Pow, Symbol

    buffers = buffers or {}

    def idx(access: Indexed) -> str:
        func = access.function
        offs = access.offset_map()
        parts = []
        t_off = offs.pop("t", None)
        if t_off is not None:
            nb = buffers.get(func.name, getattr(func, "buffers", 1))
            t_expr = time_index if t_off == 0 else f"{time_index}{t_off:+d}"
            parts.append(f"({t_expr})%{nb}" if nb > 1 else t_expr)
        for name in sorted(offs):
            o = offs[name]
            parts.append(name if o == 0 else f"{name}{o:+d}")
        return f"{func.name}[" + "][".join(parts) + "]"

    def rec(e) -> str:
        if isinstance(e, Number):
            v = e.value
            if isinstance(v, float):
                return f"{v!r}F"
            return str(v)
        if isinstance(e, Symbol):
            return e.name
        if isinstance(e, Indexed):
            return idx(e)
        if isinstance(e, Add):
            return "(" + " + ".join(rec(a) for a in e.args) + ")"
        if isinstance(e, Mul):
            return "*".join(rec(a) for a in e.args)
        if isinstance(e, Pow):
            exp = e.exponent
            if isinstance(exp, Number) and exp.value == -1:
                return f"(1.0F/{rec(e.base)})"
            if isinstance(exp, Number) and isinstance(exp.value, int) and exp.value > 0:
                return "(" + "*".join([rec(e.base)] * exp.value) + ")"
            return f"powf({rec(e.base)}, {rec(exp)})"
        if isinstance(e, Call):
            return f"{e.name}f({rec(e.argument)})"
        raise TypeError(f"cannot render {type(e).__name__}")

    return rec(expr)


def _stencil_statements(sweep: Sweep) -> List[Statement]:
    out = []
    for eq in sweep.eqs:
        out.append(Statement(f"{c_expr(eq.lhs)} = {c_expr(eq.rhs)};", role="stencil"))
    return out


def _space_nest(dims: Sequence[str], inner: Sequence[Node], blocked: bool = False) -> Node:
    """Build x(y(z(...))) with the innermost loop tagged vectorised."""
    node: Sequence[Node] = list(inner)
    for i, d in enumerate(reversed(dims)):
        props: Tuple[str, ...] = ("space",)
        if i == 0:
            props = ("space", "vectorized")
            node = [Pragma("#pragma omp simd"), Iteration(d, "0", f"n{d}", node, properties=props)]
        else:
            node = [Iteration(d, "0", f"n{d}", node, properties=props)]
    return Block(*node) if len(node) > 1 else node[0]


def _offgrid_injection_nest(inj, ndim: int) -> Node:
    """Listing 1 lines 6-9: the non-affine sparse scatter."""
    coords = ", ".join(f"{d}s" for d in "xyz"[:ndim])
    body = [
        Statement(f"{coords} = map(s, i);", role="indirection"),
        Statement(
            f"{inj.field.name}[(t+{inj.time_offset})%{inj.field.buffers}]"
            f"[{coords.replace(', ', '][')}] += f({inj.sparse.name}[t][s]);",
            role="injection",
        ),
    ]
    loop_i = Iteration("i", "0", "np", body, properties=("sparse",))
    return Iteration("s", "0", f"len({inj.sparse.name}_points)", [loop_i], properties=("sparse",))


def _offgrid_interp_nest(itp, ndim: int) -> Node:
    coords = ", ".join(f"{d}r" for d in "xyz"[:ndim])
    body = [
        Statement(f"{coords} = map(r, i);", role="indirection"),
        Statement(
            f"{itp.sparse.name}[t+{itp.time_offset}][r] += "
            f"w(r, i) * {itp.field.name}[(t+{itp.time_offset})%{itp.field.buffers}]"
            f"[{coords.replace(', ', '][')}];",
            role="interpolation",
        ),
    ]
    loop_i = Iteration("i", "0", "np", body, properties=("sparse",))
    return Iteration("r", "0", f"len({itp.sparse.name}_points)", [loop_i], properties=("sparse",))


def build_naive(op) -> Node:
    """Listing 1: time loop { stencil nest; off-the-grid sparse loops }."""
    dims = [d.name for d in op.grid.dimensions]
    body: List[Node] = []
    for sweep in op.sweeps:
        body.append(Pragma("#pragma omp parallel for schedule(dynamic)"))
        body.append(_space_nest(dims, _stencil_statements(sweep)))
    for inj in op.injections():
        body.append(Comment("off-the-grid source injection (non-affine)"))
        body.append(_offgrid_injection_nest(inj, op.grid.ndim))
    for itp in op.interpolations():
        body.append(Comment("off-the-grid receiver interpolation (non-affine)"))
        body.append(_offgrid_interp_nest(itp, op.grid.ndim))
    return Iteration("t", "time_m", "time_M", body, properties=("time",))


def _fused_injection(inj, compressed: bool, tagged_dims: Sequence[str]) -> List[Node]:
    """The grid-aligned injection loop fused at the innermost-loop level.

    ``tagged_dims`` are the operator's spatial dimensions; the innermost one
    is replaced by the ``z2`` (or ``zind``) index of Listings 4/5.
    """
    f = inj.field.name
    nb = inj.field.buffers
    outer = list(tagged_dims)[:-1] or [tagged_dims[0]]
    pencil = "][".join(outer)  # e.g. "x][y"
    if compressed:
        body = [
            Statement(f"zind = Sp_SID[{pencil}][z2];", role="indirection"),
            Statement(
                f"{f}[(t+{inj.time_offset})%{nb}][{pencil}][zind] += "
                f"src_dcmp[t][SID[{pencil}][zind]];",
                role="injection",
            ),
        ]
        return [
            Iteration("z2", "0", f"nnz_mask[{pencil}]", body, properties=("sparse", "compressed")),
        ]
    body = [
        Statement(
            f"{f}[(t+{inj.time_offset})%{nb}][{pencil}][z2] += "
            f"SM[{pencil}][z2] * src_dcmp[t][SID[{pencil}][z2]];",
            role="injection",
        ),
    ]
    return [Pragma("#pragma omp simd"), Iteration("z2", "0", "nz", body, properties=("sparse", "fused"))]


def _fused_space_nest(op, compressed: bool, x: str = "x", y: str = "y") -> List[Node]:
    """x { y { z stencil; z2 injection } } for every sweep (Listings 4/5)."""
    dims = [d.name for d in op.grid.dimensions]
    nests: List[Node] = []
    for j, sweep in enumerate(op.sweeps):
        inner: List[Node] = [
            Pragma("#pragma omp simd"),
            Iteration(dims[-1], "0", f"n{dims[-1]}", _stencil_statements(sweep),
                      properties=("space", "vectorized")),
        ]
        for inj in op.injections():
            if (inj.field.name, inj.time_offset) in sweep.written_keys:
                inner.extend(_fused_injection(inj, compressed, dims))
        node: List[Node] = inner
        for d in reversed(dims[:-1]):
            node = [Iteration(d, "0", f"n{d}", node, properties=("space",))]
        nests.append(Pragma("#pragma omp parallel for schedule(dynamic)"))
        nests.append(node[0])
    return nests


def build_fused(op) -> Node:
    """Listing 4: grid-aligned injection fused at the z-loop level (SM/SID)."""
    if not op.injections():
        raise ValueError("nothing to fuse: the operator has no injections")
    return Iteration("t", "time_m", "time_M", _fused_space_nest(op, compressed=False),
                     properties=("time",))


def build_compressed(op) -> Node:
    """Listing 5: fused injection with the reduced (nnz_mask/Sp_SID) space."""
    if not op.injections():
        raise ValueError("nothing to compress: the operator has no injections")
    return Iteration("t", "time_m", "time_M", _fused_space_nest(op, compressed=True),
                     properties=("time",))


def build_wavefront(op, schedule: Optional[WavefrontSchedule] = None) -> Node:
    """Listing 6: wave-front temporal blocking around the fused/compressed nest.

    Structure: time tiles { skewed space tiles { sweep instances at
    decreasing offsets { space blocks { vectorised z + fused injection } } } }.
    """
    schedule = schedule or WavefrontSchedule()
    dims = [d.name for d in op.grid.dimensions]
    skewed = dims[: len(schedule.tile)]
    angle = op.wavefront_angle

    # innermost: blocked traversal of the instance window
    inner: List[Node] = []
    for j, sweep in enumerate(op.sweeps):
        z_nest: List[Node] = [
            Pragma("#pragma omp simd"),
            Iteration(dims[-1], "0", f"n{dims[-1]}", _stencil_statements(sweep),
                      properties=("space", "vectorized")),
        ]
        for inj in op.injections():
            if (inj.field.name, inj.time_offset) in sweep.written_keys:
                z_nest.extend(_fused_injection(inj, compressed=True, tagged_dims=skewed))
        node: List[Node] = z_nest
        for d in reversed(skewed):
            node = [
                Iteration(d, f"max(0, {d}b)", f"min(n{d}, {d}b + block_{d})",
                          node, properties=("space", "block-inner"))
            ]
        for d in reversed(skewed):
            node = [
                Iteration(f"{d}b", f"{d}t - lag", f"{d}t - lag + tile_{d}",
                          node, step=f"block_{d}", properties=("block",))
            ]
        inner.append(Comment(f"sweep {j}: lag advances by {sweep.read_radius()} per instance"))
        inner.extend(node)

    instance_loop = Iteration(
        "t", "tt", "min(tt + tile_t, time_M)",
        [Statement("lag = lag_table[t - tt];", role="indirection")] + inner,
        properties=("time", "instance"),
    )
    tile_nest: List[Node] = [instance_loop]
    for d in reversed(skewed):
        tile_nest = [
            Iteration(f"{d}t", "0", f"n{d} + max_lag", tile_nest,
                      step=f"tile_{d}", properties=("tile", "skewed"))
        ]
    return Iteration("tt", "time_m", "time_M", tile_nest, step="tile_t",
                     properties=("time", "tile"))
