"""Loop-nest construction and transformation passes (Listings 1-6) plus the
expression-level common-subexpression-elimination pass of the kernel engine.

Each loop pass builds the IR tree for one stage of the paper's pipeline:

* :func:`build_naive`        — Listing 1: stencil nest + off-the-grid source
  loop with non-affine indirection.
* :func:`build_fused`        — Listing 4: grid-aligned injection fused at the
  ``z``-loop level through the ``SM``/``SID`` masks.
* :func:`build_compressed`   — Listing 5: iteration-space reduction with
  ``nnz_mask``/``Sp_SID``.
* :func:`build_wavefront`    — Listing 6: skewed space-time tiles + blocks
  around the compressed fused nest.

The trees are consumed by :mod:`repro.ir.codegen` (C emission) and by the
structural unit tests.

:func:`cse_sweep` operates one level below the loop nests, on *bound*
right-hand sides (only :class:`~repro.dsl.symbols.Indexed` and numeric
leaves): it names every composite subexpression that occurs more than once
across the equations of a sweep, so the generated three-address kernels of
:mod:`repro.ir.pycodegen` evaluate it exactly once.  Because the expression
substrate canonicalises on construction, structural equality is hash
equality and the pass is a single counting walk plus a rebuilding walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.scheduler import WavefrontSchedule
from ..dsl.functions import TimeFunction
from ..dsl.symbols import Add, Call, Expr, Indexed, Mul, Pow, Symbol
from .dependencies import Sweep
from .nodes import Block, Comment, Iteration, Node, Pragma, Statement

__all__ = [
    "build_naive",
    "build_fused",
    "build_compressed",
    "build_wavefront",
    "c_expr",
    "CSEResult",
    "cse_sweep",
    "HoistedField",
    "HoistResult",
    "hoist_invariants",
    "plan_scratch_slots",
]


_COMPOSITE = (Add, Mul, Pow, Call)


@dataclass
class CSEResult:
    """Outcome of :func:`cse_sweep`.

    ``assignments[i]`` lists ``(temp, expr)`` bindings to evaluate, in order,
    immediately before equation *i*'s (rewritten) right-hand side ``rhss[i]``;
    every ``expr`` references only leaves and previously assigned temps, so
    the program ``assignments[0]; rhss[0]; assignments[1]; rhss[1]; ...`` is
    in dependency order.  ``origin`` maps each temp back to the original
    (fully expanded) subexpression it names.
    """

    assignments: List[List[Tuple[Symbol, Expr]]]
    rhss: List[Expr]
    origin: Dict[Symbol, Expr] = field(default_factory=dict)

    @property
    def ntemps(self) -> int:
        return len(self.origin)


def _reads_protected(expr: Expr, protected: FrozenSet[Tuple[str, int]]) -> bool:
    """True if *expr* reads any ``(function name, time offset)`` in *protected*."""
    for node in expr.preorder():
        if isinstance(node, Indexed):
            key = (node.function.name, node.offset_map().get("t", 0))
            if key in protected:
                return True
    return False


def cse_sweep(
    rhss: Sequence[Expr],
    protected_keys: FrozenSet[Tuple[str, int]] = frozenset(),
    min_uses: int = 2,
    prefix: str = "cse",
) -> CSEResult:
    """Eliminate common subexpressions across the equations of one sweep.

    A composite subexpression occurring at least *min_uses* times (counted
    structurally over all right-hand sides) is bound to a fresh temp
    :class:`~repro.dsl.symbols.Symbol` and every occurrence is replaced by it.

    ``protected_keys`` are the ``(field name, time offset)`` slots *written*
    by the sweep's own equations.  A subexpression that reads a protected
    slot observes different values before and after the producing equation
    runs, so such subexpressions are only ever shared *within* a single
    equation, never hoisted across equations.  Subexpressions free of
    protected reads are loop-invariant over the sweep's equation sequence and
    are assigned once, at the first equation that uses them.
    """
    rhss = list(rhss)

    # counting walk: structural occurrences of every composite node, globally
    # and per equation (the per-equation counts drive protected sharing)
    counts: Dict[Expr, int] = {}
    eq_counts: List[Dict[Expr, int]] = []
    for rhs in rhss:
        local: Dict[Expr, int] = {}
        for node in rhs.preorder():
            if isinstance(node, _COMPOSITE):
                counts[node] = counts.get(node, 0) + 1
                local[node] = local.get(node, 0) + 1
        eq_counts.append(local)

    protected_memo: Dict[Expr, bool] = {}

    def is_protected(node: Expr) -> bool:
        got = protected_memo.get(node)
        if got is None:
            got = _reads_protected(node, protected_keys)
            protected_memo[node] = got
        return got

    result = CSEResult(assignments=[[] for _ in rhss], rhss=[])
    global_map: Dict[Expr, Symbol] = {}
    counter = 0

    def fresh(rewritten: Expr, original: Expr, sink: List[Tuple[Symbol, Expr]]) -> Symbol:
        nonlocal counter
        sym = Symbol(f"{prefix}{counter}")
        counter += 1
        sink.append((sym, rewritten))
        result.origin[sym] = original
        return sym

    def rebuild(node: Expr, parts: List[Expr]) -> Expr:
        if isinstance(node, Add):
            return Add(*parts)
        if isinstance(node, Mul):
            return Mul(*parts)
        if isinstance(node, Pow):
            return Pow(parts[0], parts[1])
        return Call(node.name, parts[0])

    for i, rhs in enumerate(rhss):
        local_map: Dict[Expr, Symbol] = {}
        sink = result.assignments[i]

        def walk(node: Expr) -> Expr:
            if not isinstance(node, _COMPOSITE):
                return node
            hit = global_map.get(node) or local_map.get(node)
            if hit is not None:
                return hit
            rewritten = rebuild(node, [walk(c) for c in node.children()])
            if counts[node] >= min_uses and not is_protected(node):
                return global_map.setdefault(node, fresh(rewritten, node, sink))
            if eq_counts[i].get(node, 0) >= min_uses and is_protected(node):
                return local_map.setdefault(node, fresh(rewritten, node, sink))
            return rewritten

        result.rhss.append(walk(rhs))
    return result


# -- time-invariant hoisting -------------------------------------------------------


class HoistedField:
    """A time-invariant subexpression materialised as a precomputed grid array.

    Quacks like a (non-time) :class:`~repro.dsl.functions.Function` just
    enough for :func:`~repro.execution.evalbox.box_view`: it exposes ``name``,
    ``halo``, ``dtype`` and ``data_with_halo``.  The buffer is evaluated
    lazily (and refreshed in place when :meth:`materialise` is called again,
    so array views handed out earlier stay valid) by running the defining
    expression pointwise over the full padded buffers of its constituent
    functions — the same elementwise operations the kernel would have issued
    per box, so the values read back are bit-identical to inline evaluation.
    """

    __slots__ = ("name", "expr", "halo", "dtype", "_data", "_reads", "_kernel", "_snap")

    def __init__(self, name: str, expr: Expr, halo: int):
        self.name = name
        self.expr = expr
        self.halo = halo
        # dtype is established at construction from zero-size specimens so
        # kernels can be compiled before the buffer is first materialised
        specimens = {
            leaf: np.empty(0, dtype=leaf.function.dtype)
            for leaf in expr.atoms(Indexed)
        }
        with np.errstate(all="ignore"):
            self.dtype = np.asarray(expr.evaluate(specimens)).dtype
        self._data = None
        self._snap = None
        # per-apply refreshes run a compiled whole-buffer kernel (bit-identical
        # to the interpreter) instead of walking the tree each time
        from .pycodegen import compile_rhs

        self._reads = sorted(expr.atoms(Indexed), key=str)
        self._kernel, self._reads = compile_rhs(expr, self._reads)

    @property
    def data_with_halo(self) -> np.ndarray:
        if self._data is None:
            raise RuntimeError(f"hoisted field {self.name!r} not materialised")
        return self._data

    def materialise(self) -> None:
        """(Re)compute the buffer from the current constituent data.

        Halo points may evaluate to inf/nan (e.g. ``1/m`` over a zero-filled
        halo); they are never read — interior boxes only ever view the buffer
        where the original expression would have read its operands.

        Refreshes compare the constituent buffers against a snapshot of the
        values last evaluated and skip the recomputation when nothing changed
        (the overwhelmingly common case between applies); an equality scan is
        cheaper than re-running the division/trig-heavy defining expression.
        A NaN anywhere defeats the comparison and forces a recompute, which
        errs on the side of correctness.
        """
        views = [leaf.function.data_with_halo for leaf in self._reads]
        if self._snap is not None and all(
            np.array_equal(s, v) for s, v in zip(self._snap, views)
        ):
            return
        shapes = {buf.shape for buf in views}
        if len(shapes) != 1:
            raise ValueError(
                f"hoisted field {self.name!r} mixes padded shapes {shapes}"
            )
        if self._data is None:
            self._data = np.empty(shapes.pop(), dtype=self.dtype)
        with np.errstate(all="ignore"):
            self._kernel(self._data, *views)
        if self._snap is None or any(
            s.shape != v.shape for s, v in zip(self._snap, views)
        ):
            self._snap = [v.copy() for v in views]
        else:
            for s, v in zip(self._snap, views):
                s[...] = v

    def __repr__(self) -> str:
        return f"HoistedField({self.name}, {self.expr})"


@dataclass
class HoistResult:
    """Outcome of :func:`hoist_invariants`: rewritten right-hand sides plus
    the precomputed fields their new ``__inv*`` reads refer to."""

    rhss: List[Expr]
    fields: List[HoistedField]


def _time_invariant(expr: Expr) -> bool:
    """True if *expr* reads no TimeFunction and contains no free symbols."""
    for node in expr.preorder():
        if isinstance(node, Symbol):
            return False
        if isinstance(node, Indexed) and isinstance(node.function, TimeFunction):
            return False
    return True


def _unit_info(expr: Expr):
    """``(offsets, halo)`` if *expr* is hoistable as one precomputed array.

    Hoistable means: composite, time-invariant, at least one grid read, and
    all reads share one offset map and one padded layout — then the defining
    expression can be evaluated pointwise over the raw padded buffers and the
    whole subtree replaced by a single read at the shared offsets.
    """
    if not isinstance(expr, _COMPOSITE) or not _time_invariant(expr):
        return None
    leaves = expr.atoms(Indexed)
    if not leaves:
        return None
    offsets = {leaf.offsets for leaf in leaves}
    halos = {leaf.function.halo for leaf in leaves}
    grids = {id(getattr(leaf.function, "grid", None)) for leaf in leaves}
    if len(offsets) != 1 or len(halos) != 1 or len(grids) != 1:
        return None
    return next(iter(offsets)), next(iter(halos))


def hoist_invariants(rhss: Sequence[Expr], prefix: str = "__inv") -> HoistResult:
    """Hoist maximal time-invariant subexpressions out of a sweep's RHSs.

    Model-only terms (``1/m``, ``lambda + 2*mu``, ``cos(theta)``, ...) are
    recomputed at every ``(t, box)`` instance by a naive lowering even though
    their operands never change during time stepping.  This pass replaces
    each maximal invariant subtree — and each leading invariant run of an
    ``Add``/``Mul`` argument list, which is exactly a prefix of the
    left-associative evaluation chain — with a read of a
    :class:`HoistedField` computed once per bind.

    Bit-identity is preserved by construction: the precomputed array holds
    the very values the per-box instructions would have produced (same
    elementwise operations on the same operands, evaluated once instead of
    per instance), and chain prefixes are real computational stages of the
    interpreter's evaluation order.
    """
    replacements: Dict[Expr, Indexed] = {}
    fields: List[HoistedField] = []

    def placeholder(expr: Expr, info) -> Indexed:
        rep = replacements.get(expr)
        if rep is None:
            offsets, halo = info
            hf = HoistedField(f"{prefix}{len(fields)}", expr, halo)
            fields.append(hf)
            rep = replacements[expr] = Indexed(hf, offsets)
        return rep

    def walk(expr: Expr) -> Expr:
        if not isinstance(expr, _COMPOSITE):
            return expr
        info = _unit_info(expr)
        if info is not None:
            return placeholder(expr, info)
        if isinstance(expr, (Add, Mul)):
            args = list(expr.children())
            k = 0
            while k < len(args) and _time_invariant(args[k]):
                k += 1
            new_args: List[Expr] = []
            if k >= 2:
                # the leading invariant run is a prefix of the left-assoc
                # evaluation chain: fold it into one precomputed stage
                head = Mul(*args[:k]) if isinstance(expr, Mul) else Add(*args[:k])
                head_info = _unit_info(head)
                if head_info is not None:
                    new_args.append(placeholder(head, head_info))
                else:
                    new_args.extend(walk(a) for a in args[:k])
            else:
                new_args.extend(walk(a) for a in args[:k])
            new_args.extend(walk(a) for a in args[k:])
            return Add(*new_args) if isinstance(expr, Add) else Mul(*new_args)
        if isinstance(expr, Pow):
            return Pow(walk(expr.base), walk(expr.exponent))
        return Call(expr.name, walk(expr.argument))

    return HoistResult(rhss=[walk(r) for r in rhss], fields=fields)


def c_expr(expr, time_index: str = "t", buffers: dict | None = None) -> str:
    """Render a symbolic expression as C."""
    from ..dsl.symbols import Add, Call, Mul, Number, Pow, Symbol

    buffers = buffers or {}

    def idx(access: Indexed) -> str:
        func = access.function
        offs = access.offset_map()
        parts = []
        t_off = offs.pop("t", None)
        if t_off is not None:
            nb = buffers.get(func.name, getattr(func, "buffers", 1))
            t_expr = time_index if t_off == 0 else f"{time_index}{t_off:+d}"
            parts.append(f"({t_expr})%{nb}" if nb > 1 else t_expr)
        for name in sorted(offs):
            o = offs[name]
            parts.append(name if o == 0 else f"{name}{o:+d}")
        return f"{func.name}[" + "][".join(parts) + "]"

    def rec(e) -> str:
        if isinstance(e, Number):
            v = e.value
            if isinstance(v, float):
                return f"{v!r}F"
            return str(v)
        if isinstance(e, Symbol):
            return e.name
        if isinstance(e, Indexed):
            return idx(e)
        if isinstance(e, Add):
            return "(" + " + ".join(rec(a) for a in e.args) + ")"
        if isinstance(e, Mul):
            return "*".join(rec(a) for a in e.args)
        if isinstance(e, Pow):
            exp = e.exponent
            if isinstance(exp, Number) and exp.value == -1:
                return f"(1.0F/{rec(e.base)})"
            if isinstance(exp, Number) and isinstance(exp.value, int) and exp.value > 0:
                return "(" + "*".join([rec(e.base)] * exp.value) + ")"
            return f"powf({rec(e.base)}, {rec(exp)})"
        if isinstance(e, Call):
            return f"{e.name}f({rec(e.argument)})"
        raise TypeError(f"cannot render {type(e).__name__}")

    return rec(expr)


def _stencil_statements(sweep: Sweep) -> List[Statement]:
    out = []
    for eq in sweep.eqs:
        out.append(Statement(f"{c_expr(eq.lhs)} = {c_expr(eq.rhs)};", role="stencil"))
    return out


def _space_nest(dims: Sequence[str], inner: Sequence[Node], blocked: bool = False) -> Node:
    """Build x(y(z(...))) with the innermost loop tagged vectorised."""
    node: Sequence[Node] = list(inner)
    for i, d in enumerate(reversed(dims)):
        props: Tuple[str, ...] = ("space",)
        if i == 0:
            props = ("space", "vectorized")
            node = [Pragma("#pragma omp simd"), Iteration(d, "0", f"n{d}", node, properties=props)]
        else:
            node = [Iteration(d, "0", f"n{d}", node, properties=props)]
    return Block(*node) if len(node) > 1 else node[0]


def _offgrid_injection_nest(inj, ndim: int) -> Node:
    """Listing 1 lines 6-9: the non-affine sparse scatter."""
    coords = ", ".join(f"{d}s" for d in "xyz"[:ndim])
    body = [
        Statement(f"{coords} = map(s, i);", role="indirection"),
        Statement(
            f"{inj.field.name}[(t+{inj.time_offset})%{inj.field.buffers}]"
            f"[{coords.replace(', ', '][')}] += f({inj.sparse.name}[t][s]);",
            role="injection",
        ),
    ]
    loop_i = Iteration("i", "0", "np", body, properties=("sparse",))
    return Iteration("s", "0", f"len({inj.sparse.name}_points)", [loop_i], properties=("sparse",))


def _offgrid_interp_nest(itp, ndim: int) -> Node:
    coords = ", ".join(f"{d}r" for d in "xyz"[:ndim])
    body = [
        Statement(f"{coords} = map(r, i);", role="indirection"),
        Statement(
            f"{itp.sparse.name}[t+{itp.time_offset}][r] += "
            f"w(r, i) * {itp.field.name}[(t+{itp.time_offset})%{itp.field.buffers}]"
            f"[{coords.replace(', ', '][')}];",
            role="interpolation",
        ),
    ]
    loop_i = Iteration("i", "0", "np", body, properties=("sparse",))
    return Iteration("r", "0", f"len({itp.sparse.name}_points)", [loop_i], properties=("sparse",))


def build_naive(op) -> Node:
    """Listing 1: time loop { stencil nest; off-the-grid sparse loops }."""
    dims = [d.name for d in op.grid.dimensions]
    body: List[Node] = []
    for sweep in op.sweeps:
        body.append(Pragma("#pragma omp parallel for schedule(dynamic)"))
        body.append(_space_nest(dims, _stencil_statements(sweep)))
    for inj in op.injections():
        body.append(Comment("off-the-grid source injection (non-affine)"))
        body.append(_offgrid_injection_nest(inj, op.grid.ndim))
    for itp in op.interpolations():
        body.append(Comment("off-the-grid receiver interpolation (non-affine)"))
        body.append(_offgrid_interp_nest(itp, op.grid.ndim))
    return Iteration("t", "time_m", "time_M", body, properties=("time",))


def _fused_injection(inj, compressed: bool, tagged_dims: Sequence[str]) -> List[Node]:
    """The grid-aligned injection loop fused at the innermost-loop level.

    ``tagged_dims`` are the operator's spatial dimensions; the innermost one
    is replaced by the ``z2`` (or ``zind``) index of Listings 4/5.
    """
    f = inj.field.name
    nb = inj.field.buffers
    outer = list(tagged_dims)[:-1] or [tagged_dims[0]]
    pencil = "][".join(outer)  # e.g. "x][y"
    if compressed:
        body = [
            Statement(f"zind = Sp_SID[{pencil}][z2];", role="indirection"),
            Statement(
                f"{f}[(t+{inj.time_offset})%{nb}][{pencil}][zind] += "
                f"src_dcmp[t][SID[{pencil}][zind]];",
                role="injection",
            ),
        ]
        return [
            Iteration("z2", "0", f"nnz_mask[{pencil}]", body, properties=("sparse", "compressed")),
        ]
    body = [
        Statement(
            f"{f}[(t+{inj.time_offset})%{nb}][{pencil}][z2] += "
            f"SM[{pencil}][z2] * src_dcmp[t][SID[{pencil}][z2]];",
            role="injection",
        ),
    ]
    return [Pragma("#pragma omp simd"), Iteration("z2", "0", "nz", body, properties=("sparse", "fused"))]


def _fused_space_nest(op, compressed: bool, x: str = "x", y: str = "y") -> List[Node]:
    """x { y { z stencil; z2 injection } } for every sweep (Listings 4/5)."""
    dims = [d.name for d in op.grid.dimensions]
    nests: List[Node] = []
    for j, sweep in enumerate(op.sweeps):
        inner: List[Node] = [
            Pragma("#pragma omp simd"),
            Iteration(dims[-1], "0", f"n{dims[-1]}", _stencil_statements(sweep),
                      properties=("space", "vectorized")),
        ]
        for inj in op.injections():
            if (inj.field.name, inj.time_offset) in sweep.written_keys:
                inner.extend(_fused_injection(inj, compressed, dims))
        node: List[Node] = inner
        for d in reversed(dims[:-1]):
            node = [Iteration(d, "0", f"n{d}", node, properties=("space",))]
        nests.append(Pragma("#pragma omp parallel for schedule(dynamic)"))
        nests.append(node[0])
    return nests


def build_fused(op) -> Node:
    """Listing 4: grid-aligned injection fused at the z-loop level (SM/SID)."""
    if not op.injections():
        raise ValueError("nothing to fuse: the operator has no injections")
    return Iteration("t", "time_m", "time_M", _fused_space_nest(op, compressed=False),
                     properties=("time",))


def build_compressed(op) -> Node:
    """Listing 5: fused injection with the reduced (nnz_mask/Sp_SID) space."""
    if not op.injections():
        raise ValueError("nothing to compress: the operator has no injections")
    return Iteration("t", "time_m", "time_M", _fused_space_nest(op, compressed=True),
                     properties=("time",))


def build_wavefront(op, schedule: Optional[WavefrontSchedule] = None) -> Node:
    """Listing 6: wave-front temporal blocking around the fused/compressed nest.

    Structure: time tiles { skewed space tiles { sweep instances at
    decreasing offsets { space blocks { vectorised z + fused injection } } } }.
    """
    schedule = schedule or WavefrontSchedule()
    dims = [d.name for d in op.grid.dimensions]
    skewed = dims[: len(schedule.tile)]
    angle = op.wavefront_angle

    # innermost: blocked traversal of the instance window
    inner: List[Node] = []
    for j, sweep in enumerate(op.sweeps):
        z_nest: List[Node] = [
            Pragma("#pragma omp simd"),
            Iteration(dims[-1], "0", f"n{dims[-1]}", _stencil_statements(sweep),
                      properties=("space", "vectorized")),
        ]
        for inj in op.injections():
            if (inj.field.name, inj.time_offset) in sweep.written_keys:
                z_nest.extend(_fused_injection(inj, compressed=True, tagged_dims=skewed))
        node: List[Node] = z_nest
        for d in reversed(skewed):
            node = [
                Iteration(d, f"max(0, {d}b)", f"min(n{d}, {d}b + block_{d})",
                          node, properties=("space", "block-inner"))
            ]
        for d in reversed(skewed):
            node = [
                Iteration(f"{d}b", f"{d}t - lag", f"{d}t - lag + tile_{d}",
                          node, step=f"block_{d}", properties=("block",))
            ]
        inner.append(Comment(f"sweep {j}: lag advances by {sweep.read_radius()} per instance"))
        inner.extend(node)

    instance_loop = Iteration(
        "t", "tt", "min(tt + tile_t, time_M)",
        [Statement("lag = lag_table[t - tt];", role="indirection")] + inner,
        properties=("time", "instance"),
    )
    tile_nest: List[Node] = [instance_loop]
    for d in reversed(skewed):
        tile_nest = [
            Iteration(f"{d}t", "0", f"n{d} + max_lag", tile_nest,
                      step=f"tile_{d}", properties=("tile", "skewed"))
        ]
    return Iteration("tt", "time_m", "time_M", tile_nest, step="tile_t",
                     properties=("time", "tile"))


# -- scratch-pool planning (abstract-interpretation backed) ----------------------


def plan_scratch_slots(programs):
    """Shrink the shared scratch pool via the cross-sweep liveness proof.

    Runs the whole-program scratch analysis of
    :mod:`repro.verify.absint.liveness` over the sweeps' three-address
    programs and returns ``(report, plan)``:

    * ``report`` — the full :class:`~repro.verify.absint.liveness.LivenessReport`
      (findings, live ranges, interference edges, coloring);
    * ``plan`` — per sweep, the tuple of slab colors to feed
      :meth:`~repro.execution.evalbox.BoundSweep.apply_slot_plan`, or ``None``
      when the proof does not license slab sharing
      (:attr:`~repro.verify.absint.liveness.LivenessReport.safe_for_slab` is
      False) — the conservative per-``(shape, dtype, slot)`` pool keying then
      stays in force.

    The optimisation this licenses: legacy pool keying allocates one buffer
    per ``(box shape, dtype, slot)`` triple, so wavefront execution with its
    many clipped box shapes multiplies buffers; under the proof, every
    kernel writes each slot before reading it, so same-dtype slots can share
    ``ncolors`` growable slabs across *all* shapes and sweeps, bit-identically.
    """
    from ..verify.absint.liveness import analyse_programs

    report = analyse_programs(list(programs))
    if not report.safe_for_slab:
        return report, None
    return report, [tuple(c) for c in report.colors]
