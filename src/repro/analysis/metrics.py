"""Kernel metrics: operation counting, throughput and intensity measures."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..dsl.equation import Eq
from ..dsl.symbols import Add, Call, Expr, Indexed, Mul, Number, Pow

__all__ = [
    "flop_count",
    "eq_flops",
    "access_count",
    "gpoints_per_s",
    "arithmetic_intensity",
    "achieved_gpoints_per_s",
]

#: cost charged per elementary call (divisions via Pow(-1) count as one)
_CALL_COST = 4.0


def flop_count(expr: Expr) -> float:
    """Floating-point operations to evaluate *expr* once.

    n-ary Add/Mul cost ``n-1``; integer powers cost ``|exp|-1`` multiplies
    plus one division for negative exponents; elementary calls cost
    ``_CALL_COST``.  Leaves are free.
    """
    total = 0.0
    for node in expr.preorder():
        if isinstance(node, (Add, Mul)):
            total += len(node.args) - 1
        elif isinstance(node, Pow):
            exp = node.exponent
            if isinstance(exp, Number) and float(exp.value) == int(exp.value):
                e = abs(int(exp.value))
                total += max(e - 1, 0) + (1 if exp.value < 0 else 0)
            else:
                total += _CALL_COST
        elif isinstance(node, Call):
            total += _CALL_COST
    return total


def eq_flops(eq: Eq) -> float:
    """Flops per grid point for one update equation (store is free)."""
    return flop_count(eq.rhs)


def access_count(eq: Eq) -> int:
    """Number of array accesses per point (reads + the write)."""
    return len(eq.rhs.atoms(Indexed)) + 1


def gpoints_per_s(points: float, steps: float, seconds: float) -> float:
    """Throughput in giga grid-point updates per second (the paper's metric)."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return points * steps / seconds / 1e9


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """Flops per byte of traffic (per memory level for the cache-aware roofline)."""
    if bytes_moved <= 0:
        raise ValueError("traffic must be positive")
    return flops / bytes_moved


def achieved_gpoints_per_s(telemetry) -> float:
    """Measured throughput of a telemetry-instrumented run, in GPts/s.

    Unlike :func:`gpoints_per_s` — which divides by whatever wall-time the
    caller measured from the outside, precomputation and sparse work
    included — this joins the ``points_updated`` counter with the measured
    ``stencil`` phase seconds, so the reported number is the throughput of
    the sweeps themselves (the paper's Fig. 9-11 metric).  Duck-typed over
    :class:`~repro.telemetry.Telemetry`; returns ``None`` when the run
    recorded no stencil time or no point updates.
    """
    stencil = telemetry.phase_seconds.get("stencil", 0.0)
    points = telemetry.counters.get("points_updated", 0)
    if stencil <= 0 or not points:
        return None
    return points / stencil / 1e9
