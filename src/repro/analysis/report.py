"""ASCII table/series renderers for the evaluation harness.

Every benchmark prints its table/figure analogue through these helpers, so
the harness output is uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "render_table",
    "render_series",
    "render_speedup_bars",
    "render_certificate",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.4g}"
    return str(value)


def render_series(
    x: Sequence,
    series: Dict[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
) -> str:
    """A figure rendered as columns: x plus one column per named series."""
    headers = [x_label] + list(series)
    rows = [[xv] + [series[name][i] for name in series] for i, xv in enumerate(x)]
    return render_table(headers, rows, title=title)


def render_certificate(cert, title: str = "") -> str:
    """Human-readable summary of a schedule-legality certificate
    (:class:`repro.verify.certificate.LegalityCertificate`).

    Shows the schedule geometry (wavefront angle, per-sweep lags, tile skew),
    the componentwise maximum dependence-distance vector, and the edge tally
    — the quantities §II-B's legality argument turns on.
    """
    md = cert.max_distance
    checked = [d for d in cert.dependences if not d.cross_tile]
    lags = list(cert.lags)
    rows = [
        ["operator", cert.operator],
        ["schedule", cert.schedule.get("kind", "?")],
        ["sparse mode", cert.sparse_mode],
        ["legal", cert.check()],
        ["wavefront angle", cert.wavefront_angle],
        ["sweep radii", " ".join(str(r) for r in cert.sweep_radii)],
        ["per-sweep lags", " ".join(str(v) for v in lags) if lags else "-"],
        ["tile skew", cert.tile_skew],
        ["max distance", " ".join(f"{k}={v}" for k, v in md.items())],
        ["edges checked", f"{len(cert.dependences)} ({len(checked)} in-tile)"],
    ]
    return render_table(
        ["quantity", "value"], rows, title=title or "Legality certificate"
    )


def render_speedup_bars(
    labels: Sequence[str],
    speedups: Sequence[float],
    title: str = "",
    width: int = 40,
    ref: float = 1.0,
) -> str:
    """Horizontal bar chart of speedups with a reference line at 1.0x."""
    lines = [title] if title else []
    top = max(list(speedups) + [ref]) * 1.05
    for label, s in zip(labels, speedups):
        bar = "#" * max(int(round(s / top * width)), 1)
        lines.append(f"{label:<22} {bar:<{width}} {s:.2f}x")
    lines.append(f"{'(baseline = 1.0x)':<22}")
    return "\n".join(lines)
