"""ASCII table/series renderers for the evaluation harness.

Every benchmark prints its table/figure analogue through these helpers, so
the harness output is uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "render_table",
    "render_series",
    "render_speedup_bars",
    "render_certificate",
    "render_bounds_certificate",
    "render_coloring",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.4g}"
    return str(value)


def render_series(
    x: Sequence,
    series: Dict[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
) -> str:
    """A figure rendered as columns: x plus one column per named series."""
    headers = [x_label] + list(series)
    rows = [[xv] + [series[name][i] for name in series] for i, xv in enumerate(x)]
    return render_table(headers, rows, title=title)


def render_certificate(cert, title: str = "") -> str:
    """Human-readable summary of a schedule-legality certificate
    (:class:`repro.verify.certificate.LegalityCertificate`).

    Shows the schedule geometry (wavefront angle, per-sweep lags, tile skew),
    the componentwise maximum dependence-distance vector, and the edge tally
    — the quantities §II-B's legality argument turns on.
    """
    md = cert.max_distance
    checked = [d for d in cert.dependences if not d.cross_tile]
    lags = list(cert.lags)
    rows = [
        ["operator", cert.operator],
        ["schedule", cert.schedule.get("kind", "?")],
        ["sparse mode", cert.sparse_mode],
        ["legal", cert.check()],
        ["wavefront angle", cert.wavefront_angle],
        ["sweep radii", " ".join(str(r) for r in cert.sweep_radii)],
        ["per-sweep lags", " ".join(str(v) for v in lags) if lags else "-"],
        ["tile skew", cert.tile_skew],
        ["max distance", " ".join(f"{k}={v}" for k, v in md.items())],
        ["edges checked", f"{len(cert.dependences)} ({len(checked)} in-tile)"],
    ]
    return render_table(
        ["quantity", "value"], rows, title=title or "Legality certificate"
    )


def render_bounds_certificate(cert, title: str = "") -> str:
    """Human-readable summary of a parametric bounds certificate
    (:class:`repro.verify.certificate.BoundsCertificate`).

    Shows the admissible parameter family the proof quantifies over, the
    per-kind check tally, the tightest halo margin, and — when the verdict is
    negative — the concrete ``(schedule, t, tile, index)`` counterexample
    plus every violated margin.
    """
    kinds: Dict[str, int] = {}
    for c in cert.checks:
        kinds[c.kind] = kinds.get(c.kind, 0) + 1
    tally = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    family = "; ".join(
        f"{name} in [{entry['range'][0]}, "
        f"{'inf' if entry['range'][1] is None else entry['range'][1]}]"
        for name, entry in cert.params.items()
    )
    rows = [
        ["operator", cert.operator],
        ["schedule family", cert.schedule.get("kind", "?")],
        ["sparse mode", cert.sparse_mode],
        ["safe", cert.check()],
        ["checks", f"{len(cert.checks)} ({tally})"],
        ["min halo margin", cert.min_margin if cert.min_margin is not None else "-"],
        ["halos", " ".join(f"{k}={v}" for k, v in cert.halos.items())],
        ["parameters", family],
    ]
    out = render_table(
        ["quantity", "value"], rows, title=title or "Parametric bounds certificate"
    )
    if cert.counterexample is not None:
        out += "\ncounterexample: " + cert.counterexample.describe()
    violated = cert.violations()
    if violated:
        out += "\nviolated margins:"
        for c in violated:
            out += (
                f"\n  sweep {c.sweep}: {c.function}[{c.dim}{c.offset:+d}] "
                f"(halo {c.halo}) margin_lo={c.margin_lo} margin_hi={c.margin_hi}"
            )
    return out


def render_coloring(report, title: str = "") -> str:
    """Human-readable summary of the scratch-slot liveness/coloring report
    (:class:`repro.verify.absint.liveness.LivenessReport`).

    Shows, per sweep, the slot live ranges and assigned slab colors, the
    interference edge count, and the pool shrink the coloring licenses
    (``total slots -> total colors``).
    """
    rows = []
    for j, colors in enumerate(report.colors):
        ranges = report.ranges[j]
        names = sorted(ranges, key=lambda n: ranges[n][0])
        span = " ".join(f"{n}[{ranges[n][0]},{ranges[n][1]}]" for n in names)
        rows.append([j, len(colors), " ".join(str(c) for c in colors), span])
    out = render_table(
        ["sweep", "slots", "colors", "live ranges [def,last-use]"],
        rows,
        title=title or "Scratch-slot coloring",
    )
    out += (
        f"\nslab-safe: {report.safe_for_slab}; interference edges: "
        f"{len(report.edges)}; pool: {report.total_slots} slots -> "
        f"{report.total_colors} slabs ("
        + ", ".join(f"{k}:{v}" for k, v in sorted(report.colors_per_dtype.items()))
        + ")"
    )
    return out


def render_speedup_bars(
    labels: Sequence[str],
    speedups: Sequence[float],
    title: str = "",
    width: int = 40,
    ref: float = 1.0,
) -> str:
    """Horizontal bar chart of speedups with a reference line at 1.0x."""
    lines = [title] if title else []
    top = max(list(speedups) + [ref]) * 1.05
    for label, s in zip(labels, speedups):
        bar = "#" * max(int(round(s / top * width)), 1)
        lines.append(f"{label:<22} {bar:<{width}} {s:.2f}x")
    lines.append(f"{'(baseline = 1.0x)':<22}")
    return "\n".join(lines)
