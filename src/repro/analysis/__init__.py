"""Metrics and reporting utilities for the evaluation harness."""
from .metrics import (
    access_count,
    achieved_gpoints_per_s,
    arithmetic_intensity,
    eq_flops,
    flop_count,
    gpoints_per_s,
)
from .report import (
    render_certificate,
    render_series,
    render_speedup_bars,
    render_table,
)

__all__ = [
    "flop_count",
    "eq_flops",
    "access_count",
    "gpoints_per_s",
    "achieved_gpoints_per_s",
    "arithmetic_intensity",
    "render_table",
    "render_series",
    "render_speedup_bars",
    "render_certificate",
]
