"""Command-line profiler: run an example under telemetry, print the phase table.

Usage::

    python -m repro.profile quickstart                     # wavefront, phase table
    python -m repro.profile acoustic --schedule naive      # baseline breakdown
    python -m repro.profile tti --trace trace.json         # Chrome/Perfetto trace
    python -m repro.profile elastic --json                 # machine-readable (CI)

Each example is the corresponding paper propagator on the same small grid
the linter uses (:func:`repro.lint.build_example`); ``quickstart`` is an
alias for the acoustic example so the README one-liner works verbatim.  The
run is instrumented with a :class:`~repro.telemetry.Telemetry` buffer: the
default output is the per-phase wall-time table with the achieved-throughput
lines; ``--trace`` additionally records one span per sweep instance and
writes a Chrome ``trace_event`` file — open it at https://ui.perfetto.dev
(or ``chrome://tracing``) to see the nested span timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

# the schedule sweep is shared with the lint/verify CLIs (one source of
# truth: static verification covers exactly the schedules profiled)
from .lint import SCHEDULES, make_schedule as _make_schedule
from .telemetry import Telemetry, telemetry_to_json, render_phase_table, write_chrome_trace

EXAMPLES = ("quickstart", "acoustic", "tti", "elastic")


def profile_example(
    kind: str,
    schedule: str = "wavefront",
    engine: str = None,
    nt: int = 16,
    detail: str = "phase",
) -> Telemetry:
    """Run one example propagator under telemetry and return the buffer."""
    from .lint import build_example

    prop, dt = build_example("acoustic" if kind == "quickstart" else kind, nt=nt)
    telemetry = Telemetry(detail=detail)
    prop.forward(
        nt=nt, dt=dt, schedule=_make_schedule(schedule),
        engine=engine, telemetry=telemetry,
    )
    return telemetry


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Profile an example propagator with phase-level telemetry.",
    )
    parser.add_argument("example", choices=EXAMPLES, help="which example to profile")
    parser.add_argument(
        "--schedule", choices=SCHEDULES, default="wavefront",
        help="execution schedule (default: wavefront)",
    )
    parser.add_argument(
        "--engine", choices=("fused", "kernel", "interp"), default=None,
        help="force a sweep engine (default: the fused/kernel/interp ladder)",
    )
    parser.add_argument(
        "--nt", type=int, default=16, help="number of timesteps (default: 16)"
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome/Perfetto trace_event file (records per-instance spans)",
    )
    parser.add_argument("--json", action="store_true", help="JSON summary on stdout")
    args = parser.parse_args(argv)

    telemetry = profile_example(
        args.example,
        schedule=args.schedule,
        engine=args.engine,
        nt=args.nt,
        detail="trace" if args.trace else "phase",
    )

    if args.json:
        print(json.dumps(telemetry_to_json(telemetry, spans=False), indent=2))
    else:
        title = f"{args.example} ({args.schedule}, nt={args.nt})"
        print(render_phase_table(telemetry, title=title))
    if args.trace:
        write_chrome_trace(telemetry, args.trace)
        if not args.json:
            print(
                f"trace written to {args.trace} "
                "(open at https://ui.perfetto.dev or chrome://tracing)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
