"""Raw (off-the-grid) sparse-operator executors — the baseline of Listing 1.

These implement source injection and receiver interpolation directly on the
off-the-grid coordinates, exactly as the untransformed code does: iterate the
sparse point set, map each point to its ``2^d`` support neighbours through an
indirection, scatter/gather with multilinear weights.  They define the
reference semantics against which the precomputed (grid-aligned) path of
:mod:`repro.core` is verified.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.functions import Function, Injection, Interpolation, TimeFunction
from ..dsl.grid import Grid
from ..dsl.interpolation import support_points
from ..dsl.symbols import Expr, Indexed, Number, Symbol

__all__ = [
    "evaluate_point_scale",
    "RawInjection",
    "RawInterpolation",
    "UnsafeOffGridInjection",
]


def evaluate_point_scale(expr: Expr, points: np.ndarray, grid: Grid, dt: float) -> np.ndarray:
    """Evaluate a symbolic scale expression at a set of grid points.

    ``expr`` may contain the ``dt`` symbol, numbers, and centred accesses of
    time-invariant :class:`Function` fields (e.g. ``m[x, y, z]``); it is
    evaluated at each row of ``points`` (integer grid indices, shape
    ``(n, ndim)``), yielding one scale factor per point.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.int64))
    expr = expr.subs({Symbol("dt"): Number(float(dt))})
    env: Dict[Expr, np.ndarray] = {}
    for access in expr.atoms(Indexed):
        func = access.function
        if isinstance(func, TimeFunction) or not isinstance(func, Function):
            raise TypeError(
                f"injection scale may only reference time-invariant model "
                f"fields, got access {access}"
            )
        if any(shift != 0 for _, shift in access.offsets):
            raise ValueError(f"injection scale access must be centred: {access}")
        idx = tuple(points[:, d] for d in range(points.shape[1]))
        env[access] = func.data[idx].astype(np.float64)
    leftover = expr.free_symbols() - set()
    unbound = {s.name for s in leftover}
    if unbound:
        raise ValueError(f"unbound symbols in injection scale: {sorted(unbound)}")
    value = expr.evaluate(env)
    return np.broadcast_to(np.asarray(value, dtype=np.float64), (points.shape[0],)).copy()


class RawInjection:
    """Executable form of an off-the-grid :class:`Injection` (Listing 1)."""

    def __init__(self, injection: Injection, dt: float):
        self.injection = injection
        sparse = injection.sparse
        self.field = injection.field
        self.grid = sparse.grid
        self.time_offset = injection.time_offset
        self.indices, self.weights = support_points(sparse.coordinates, self.grid)
        npoint, ncorner, ndim = self.indices.shape
        flat_points = self.indices.reshape(-1, ndim)
        scale = evaluate_point_scale(injection.expr, flat_points, self.grid, dt)
        # fold the per-corner scale into the interpolation weights
        self.scaled_weights = self.weights * scale.reshape(npoint, ncorner)
        self.data = sparse.data

    def apply(self, t: int, box=None) -> None:
        """Inject amplitudes of source sample *t* into ``field[t + offset]``.

        Raw off-the-grid injection is only legal on the *whole* grid (after a
        full sweep); a box-restricted request means a temporally blocked
        schedule is trying to use it, which the paper shows is unsound.
        """
        if box is not None:
            raise ValueError(
                "off-the-grid injection cannot run inside a space-time tile; "
                "precompute it with repro.core (decompose_source) first"
            )
        if not 0 <= t < self.data.shape[0]:
            return
        buf = self.field.buffer(t + self.time_offset)
        halo = self.field.halo
        npoint, ncorner, ndim = self.indices.shape
        flat_idx = tuple(self.indices[..., d].ravel() + halo for d in range(ndim))
        contributions = self.scaled_weights * self.data[t][:, None].astype(np.float64)
        np.add.at(buf, flat_idx, contributions.ravel().astype(buf.dtype))

    @property
    def support_indices(self) -> np.ndarray:
        return self.indices


class UnsafeOffGridInjection(RawInjection):
    """Deliberately WRONG: off-the-grid injection inside space-time tiles.

    This is the naive attempt the paper's §I-A shows to be unsound (Fig. 4b):
    when a tile window reaches a source's *base* grid point, the full
    off-the-grid scatter fires — but support corners belonging to a later
    window at the same timestep have not had their stencil write yet, so the
    subsequent assignment overwrites the injected contribution, and corners
    in earlier windows may already have been consumed by later-time updates.
    It exists solely for the negative test demonstrating the violation; never
    use it for real modelling.
    """

    def apply(self, t: int, box=None) -> None:
        if box is None:
            return super().apply(t)
        if not 0 <= t < self.data.shape[0]:
            return
        base = self.indices[:, 0, :]  # min corner per source
        sel = np.ones(base.shape[0], dtype=bool)
        for d, (lo, hi) in enumerate(box):
            sel &= (base[:, d] >= lo) & (base[:, d] < hi)
        if not sel.any():
            return
        buf = self.field.buffer(t + self.time_offset)
        halo = self.field.halo
        idx = self.indices[sel]
        npoint, ncorner, ndim = idx.shape
        flat_idx = tuple(idx[..., d].ravel() + halo for d in range(ndim))
        contributions = self.scaled_weights[sel] * self.data[t][sel][:, None].astype(np.float64)
        np.add.at(buf, flat_idx, contributions.ravel().astype(buf.dtype))


class RawInterpolation:
    """Executable form of an off-the-grid :class:`Interpolation` (Fig. 3b)."""

    def __init__(self, interpolation: Interpolation):
        self.interpolation = interpolation
        sparse = interpolation.sparse
        self.field = interpolation.field
        self.grid = sparse.grid
        self.time_offset = interpolation.time_offset
        self.indices, self.weights = support_points(sparse.coordinates, self.grid)
        self.data = sparse.data

    def gather(self, t: int, box=None) -> None:
        """Plan-interface shim: raw interpolation measures at :meth:`finalize`."""
        if box is not None:
            raise ValueError(
                "off-the-grid interpolation cannot run inside a space-time "
                "tile; precompute it with repro.core (decompose_receiver) first"
            )

    def finalize(self, t: int) -> None:
        self.apply(t)

    def apply(self, t: int) -> None:
        """Measure ``field[t + offset]`` into the receiver row ``t + offset``."""
        row = t + self.time_offset
        if not 0 <= row < self.data.shape[0]:
            return
        buf = self.field.buffer(t + self.time_offset)
        halo = self.field.halo
        npoint, ncorner, ndim = self.indices.shape
        flat_idx = tuple(self.indices[..., d].ravel() + halo for d in range(ndim))
        sampled = buf[flat_idx].reshape(npoint, ncorner).astype(np.float64)
        self.data[row] = (sampled * self.weights).sum(axis=1).astype(self.data.dtype)
