"""Memory-trace generation for schedules, at pencil granularity.

Stencil kernels with a vectorised innermost (z) dimension touch memory in
whole z-pencils; a "chunk" here is one ``(slice, x, y)`` pencil.  This is the
natural granularity at which the layer conditions and temporal reuse act, and
it keeps traces short enough to drive the Python cache simulator.

The generator replays the *exact* traversal each schedule performs — the same
instance/lag arithmetic as the NumPy executors — emitting, for every grid row
``(x, y)`` visited by a sweep instance, the pencils of every slice the sweep
reads (at all its x/y stencil offsets) and writes.  Circular time buffers are
honoured, so inter-timestep reuse (and its capacity limits) is visible to the
simulator.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.scheduler import (
    NaiveSchedule,
    Schedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    instance_lags,
    tile_origins,
    time_tiles,
)
from ..machine.kernels import KernelSpec, SliceAccess

__all__ = ["TraceGeometry", "ChunkAddresser", "schedule_trace", "simulate_schedule"]


class TraceGeometry:
    """x-y extent of the traced grid (z collapsed into the pencil chunk)."""

    def __init__(self, nx: int, ny: int, nz: int):
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)

    @property
    def rows(self) -> int:
        return self.nx * self.ny


class ChunkAddresser:
    """Assigns each (slice, physical buffer, x, y) pencil a unique id."""

    def __init__(self, spec: KernelSpec, geom: TraceGeometry):
        self.geom = geom
        self._bases: Dict[Tuple[str, int], int] = {}
        next_base = 0
        seen: Dict[str, int] = {}
        for sweep in spec.sweeps:
            for sl in list(sweep.reads) + list(sweep.writes_detail):
                fname = sl.name.split("@")[0]
                if fname not in seen:
                    seen[fname] = sl.buffers
                else:
                    seen[fname] = max(seen[fname], sl.buffers)
        for fname in sorted(seen):
            for b in range(seen[fname]):
                self._bases[(fname, b)] = next_base
                next_base += geom.rows
        self.total_chunks = next_base
        self._buffers = seen

    def pencil(self, slice_access: SliceAccess, t: int, x: int, y: int) -> int:
        fname = slice_access.name.split("@")[0]
        nb = self._buffers[fname]
        buf = (t + (slice_access.time_offset or 0)) % nb if nb > 1 else 0
        return self._bases[(fname, buf)] + x * self.geom.ny + y


def _row_chunks(
    addresser: ChunkAddresser,
    spec_sweep,
    t: int,
    x: int,
    y: int,
    geom: TraceGeometry,
) -> Iterator[int]:
    """Pencils touched when the sweep processes row (x, y) at step t."""
    for sl in spec_sweep.reads:
        r = sl.radius
        if r == 0:
            yield addresser.pencil(sl, t, x, y)
        else:
            for ox in range(-r, r + 1):
                xx = min(max(x + ox, 0), geom.nx - 1)
                yield addresser.pencil(sl, t, xx, y)
            for oy in (-o for o in range(1, r + 1)):
                yy = min(max(y + oy, 0), geom.ny - 1)
                yield addresser.pencil(sl, t, x, yy)
            for oy in range(1, r + 1):
                yy = min(max(y + oy, 0), geom.ny - 1)
                yield addresser.pencil(sl, t, x, yy)
    for sl in spec_sweep.writes_detail:
        yield addresser.pencil(sl, t, x, y)


def _boxes(geom: TraceGeometry, block: Tuple[int, ...]) -> Iterator[Tuple[int, int, int, int]]:
    bx = block[0] if block else geom.nx
    by = block[1] if len(block) > 1 else geom.ny
    for x0 in range(0, geom.nx, bx):
        for y0 in range(0, geom.ny, by):
            yield (x0, min(x0 + bx, geom.nx), y0, min(y0 + by, geom.ny))


def schedule_trace(
    spec: KernelSpec,
    geom: TraceGeometry,
    schedule: Schedule,
    time_m: int,
    time_M: int,
    addresser: Optional[ChunkAddresser] = None,
) -> Iterator[int]:
    """Yield the pencil-chunk access stream of a schedule."""
    addresser = addresser or ChunkAddresser(spec, geom)

    if isinstance(schedule, (NaiveSchedule, SpatialBlockSchedule)):
        block = schedule.block if isinstance(schedule, SpatialBlockSchedule) else ()
        for t in range(time_m, time_M):
            for sweep in spec.sweeps:
                for (x0, x1, y0, y1) in _boxes(geom, block):
                    for x in range(x0, x1):
                        for y in range(y0, y1):
                            yield from _row_chunks(addresser, sweep, t, x, y, geom)
        return

    if not isinstance(schedule, WavefrontSchedule):
        raise TypeError(f"cannot trace schedule {schedule!r}")

    radii = tuple(s.radius for s in spec.sweeps)
    tile = schedule.tile
    tx = tile[0]
    ty = tile[1] if len(tile) > 1 else geom.ny
    for t0, t1 in time_tiles(time_m, time_M, schedule.height):
        lags = instance_lags(radii, t1 - t0)
        max_lag = lags[-1]
        instances = [(t, j) for t in range(t0, t1) for j in range(len(spec.sweeps))]
        for (ox, oy) in tile_origins((geom.nx, geom.ny), (tx, ty), max_lag):
            for (t, j), lag in zip(instances, lags):
                x_lo, x_hi = max(ox - lag, 0), min(ox - lag + tx, geom.nx)
                y_lo, y_hi = max(oy - lag, 0), min(oy - lag + ty, geom.ny)
                if x_lo >= x_hi or y_lo >= y_hi:
                    continue
                sweep = spec.sweeps[j]
                for x in range(x_lo, x_hi):
                    for y in range(y_lo, y_hi):
                        yield from _row_chunks(addresser, sweep, t, x, y, geom)


def simulate_schedule(
    spec: KernelSpec,
    geom: TraceGeometry,
    schedule: Schedule,
    nsteps: int,
    cache_levels,
    warmup_steps: int = 0,
):
    """Run a schedule's trace through a cache hierarchy; returns stats.

    ``cache_levels`` is [(name, capacity_bytes), ...]; capacities are
    converted to pencil chunks of ``nz * dtype`` bytes.
    """
    from ..machine.cache import CacheHierarchy

    chunk_bytes = geom.nz * spec.dtype_bytes
    levels = [
        (name, max(int(cap // chunk_bytes), 1)) for name, cap in cache_levels
    ]
    hier = CacheHierarchy(levels, chunk_bytes=chunk_bytes)
    addresser = ChunkAddresser(spec, geom)
    if warmup_steps:
        hier.access_many(
            schedule_trace(spec, geom, schedule, 0, warmup_steps, addresser)
        )
        hier.reset()
        start = warmup_steps
    else:
        start = 0
    hier.access_many(
        schedule_trace(spec, geom, schedule, start, start + nsteps, addresser)
    )
    return hier.stats()
