"""Executors: run bound operators under the supported schedules."""
from .evalbox import (
    ENGINES,
    BoundEq,
    BoundSweep,
    bind_equations,
    box_is_empty,
    box_view,
    clip_box,
    full_box,
)
from .executors import (
    ExecutionPlan,
    run_naive,
    run_schedule,
    run_spatial,
    run_wavefront,
)
from .sparse import RawInjection, RawInterpolation, evaluate_point_scale
from .trace import ChunkAddresser, TraceGeometry, schedule_trace, simulate_schedule

__all__ = [
    "BoundEq",
    "BoundSweep",
    "ENGINES",
    "box_view",
    "bind_equations",
    "full_box",
    "clip_box",
    "box_is_empty",
    "ExecutionPlan",
    "run_schedule",
    "run_naive",
    "run_spatial",
    "run_wavefront",
    "RawInjection",
    "RawInterpolation",
    "evaluate_point_scale",
    "TraceGeometry",
    "ChunkAddresser",
    "schedule_trace",
    "simulate_schedule",
]
