"""Schedule executors: run a bound operator under naive, spatially blocked or
wave-front temporally blocked traversal.

All three produce identical results (to FP associativity) when the sparse
operators are grid-aligned; the wavefront executor *requires* grid-aligned
sparse operators — running it with raw off-the-grid injection
(``unsafe_offgrid=True``) demonstrates the dependence violation of Fig. 4b
and is provided exactly for that negative test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.scheduler import (
    NaiveSchedule,
    Schedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    instance_lags,
    tile_origins,
    time_tiles,
)
from ..dsl.grid import Grid
from ..errors import InvalidTimeRange, PlanValidationError
from .evalbox import BoundSweep, Box, box_is_empty, clip_box, full_box

__all__ = ["ExecutionPlan", "run_schedule", "run_naive", "run_spatial", "run_wavefront"]


def _check_entry(plan: "ExecutionPlan", time_m: int, time_M: int) -> None:
    """Structured validation at every executor entry point.

    Failing here — with the offending values in the message — beats failing
    thousands of instances deep inside a tile loop with an index error.
    ``time_m == time_M`` is a legal empty run at this level; ``Operator.apply``
    keeps its stricter "must exceed" contract.
    """
    if time_M < time_m:
        raise InvalidTimeRange(
            f"time range is empty or reversed: time_m={time_m}, time_M={time_M}"
        )
    if any(s < 1 for s in plan.grid.shape):
        raise PlanValidationError(f"grid has an empty extent: shape {plan.grid.shape}")


def _check_block_shape(plan: "ExecutionPlan", extents, what: str) -> None:
    if not extents or any(b < 1 for b in extents):
        raise PlanValidationError(f"{what} has an empty extent: {tuple(extents)}")
    if len(extents) > plan.grid.ndim:
        raise PlanValidationError(
            f"{what} rank {len(extents)} exceeds grid rank {plan.grid.ndim}"
        )


@dataclass
class ExecutionPlan:
    """Everything an executor needs: bound sweeps, per-sweep read radii, and
    sparse operators attached to their sweeps."""

    grid: Grid
    sweeps: List[BoundSweep]
    radii: List[int]
    #: sweep index -> grid-aligned or raw injectors (apply(t, box))
    injections: Dict[int, list] = field(default_factory=dict)
    #: sweep index -> receivers (gather(t, box) / finalize(t))
    receivers: Dict[int, list] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.sweeps) != len(self.radii):
            raise ValueError("one radius per sweep required")
        if not self.sweeps:
            raise ValueError("plan has no sweeps")

    @property
    def nsweeps(self) -> int:
        return len(self.sweeps)

    @property
    def angle(self) -> int:
        """Wavefront skew per timestep (sum of sweep radii)."""
        return sum(self.radii)

    def validate(self) -> "ExecutionPlan":
        """Pre-flight the plan's precomputed sparse structures (SM/SID/
        ``src_dcmp``/weight-matrix shape consistency); raises
        :class:`~repro.errors.PlanValidationError` before timestep 0 instead
        of failing inside a tile loop.  Checks are memoised per masks object,
        so repeated applies pay almost nothing."""
        from ..runtime.preflight import validate_plan

        validate_plan(self)
        return self

    def all_receivers(self) -> list:
        out = []
        for lst in self.receivers.values():
            out.extend(lst)
        return out

    def _sparse_for(self, j: int) -> Tuple[list, list]:
        return self.injections.get(j, []), self.receivers.get(j, [])


def _execute_instance(plan: ExecutionPlan, j: int, t: int, box: Optional[Box]) -> None:
    """Run sweep *j* at timestep *t* on *box* (None = full grid), then its
    attached sparse operators on the same box."""
    use_box = box if box is not None else full_box(plan.grid)
    if box_is_empty(use_box):
        return
    plan.sweeps[j].evaluate(t, use_box)
    injections, receivers = plan._sparse_for(j)
    for inj in injections:
        inj.apply(t, box)
    for rec in receivers:
        rec.gather(t, box)


def run_naive(plan: ExecutionPlan, time_m: int, time_M: int, monitor=None) -> None:
    """Listing 1: whole-grid sweeps, sparse operators after each sweep."""
    _check_entry(plan, time_m, time_M)
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
    for t in range(time_m, time_M):
        for j in range(plan.nsweeps):
            _execute_instance(plan, j, t, None)
            if monitor is not None:
                monitor.after_instance(plan, j, t, None)
        for rec in plan.all_receivers():
            rec.finalize(t)
        if monitor is not None:
            monitor.after_step(plan, t)


def _blocked_boxes(grid: Grid, block: Tuple[int, ...]):
    """Rectangular blocks over the leading dims; trailing dims unblocked."""
    nb = len(block)
    shape = grid.shape
    ranges = [range(0, shape[d], block[d]) for d in range(nb)]

    def rec(d: int, prefix: Tuple[Tuple[int, int], ...]):
        if d == nb:
            tail = tuple((0, shape[k]) for k in range(nb, len(shape)))
            yield prefix + tail
            return
        for lo in ranges[d]:
            yield from rec(d + 1, prefix + ((lo, min(lo + block[d], shape[d])),))

    yield from rec(0, ())


def run_spatial(
    plan: ExecutionPlan,
    time_m: int,
    time_M: int,
    schedule: SpatialBlockSchedule,
    monitor=None,
) -> None:
    """Fig. 4a: space blocking inside each timestep.

    A sweep's blocks may run in any order (no intra-sweep dependence), but a
    barrier separates sweeps, and sparse operators run after the full sweep --
    which is why space blocking never conflicts with off-the-grid operators.
    """
    _check_entry(plan, time_m, time_M)
    _check_block_shape(plan, schedule.block, "space block")
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
    boxes = list(_blocked_boxes(plan.grid, schedule.block))
    for t in range(time_m, time_M):
        for j in range(plan.nsweeps):
            for box in boxes:
                plan.sweeps[j].evaluate(t, box)
                if monitor is not None:
                    monitor.after_instance(plan, j, t, box)
            injections, receivers = plan._sparse_for(j)
            for inj in injections:
                inj.apply(t, None)
            for rec in receivers:
                rec.gather(t, None)
        for rec in plan.all_receivers():
            rec.finalize(t)
        if monitor is not None:
            monitor.after_step(plan, t)


def _wavefront_steps(
    plan: ExecutionPlan, schedule: WavefrontSchedule, height: int
) -> List[Tuple[int, int, Box]]:
    """The full traversal of one time tile of *height*, precomputed.

    Returns ``(dt, j, box)`` steps in execution order: for every space tile
    origin (ascending lexicographic over the skewed domain), every sweep
    instance ``(dt, j)`` with its lag-shifted, grid-clipped, non-empty box.
    The step list depends on the time tile only through its height, so
    executors compute it once per distinct height and replay it for every
    congruent tile.
    """
    grid = plan.grid
    nskew = len(schedule.tile)
    skew_extents = tuple(grid.shape[:nskew])
    tail = tuple((0, s) for s in grid.shape[nskew:])
    lags = instance_lags(tuple(plan.radii), height)
    instances = [(dt, j) for dt in range(height) for j in range(plan.nsweeps)]
    steps: List[Tuple[int, int, Box]] = []
    for origin in tile_origins(skew_extents, schedule.tile, lags[-1]):
        for (dt, j), lag in zip(instances, lags):
            window = tuple(
                (o - lag, o - lag + ext) for o, ext in zip(origin, schedule.tile)
            )
            box = clip_box(window + tail, grid)
            if not box_is_empty(box):
                steps.append((dt, j, box))
    return steps


def run_wavefront(
    plan: ExecutionPlan,
    time_m: int,
    time_M: int,
    schedule: WavefrontSchedule,
    step_cache: Optional[Dict] = None,
    monitor=None,
) -> None:
    """Listing 6: wave-front temporal blocking over skewed space-time tiles.

    For each time tile ``[t0, t1)``, space tiles traverse the *skewed*
    domain in ascending lexicographic order; within each space tile every
    sweep instance ``(t, j)`` executes on the tile window shifted left by its
    cumulative lag, immediately followed by its grid-aligned sparse
    operators restricted to the same window.

    The per-tile geometry (instance list, lags, windows, clipped boxes) is
    invariant across time tiles of equal height, so it is computed once per
    height (:func:`_wavefront_steps`) and replayed — the inner loop does no
    geometry work at all.  Passing *step_cache* (a dict owned by the caller,
    e.g. :class:`~repro.ir.operator.Operator`) additionally persists the step
    plans across applies, keyed by tile geometry and height; geometry depends
    only on the grid, the sweep radii and the schedule, all fixed per
    operator.
    """
    grid = plan.grid
    _check_entry(plan, time_m, time_M)
    _check_block_shape(plan, schedule.tile, "space tile")
    nskew = len(schedule.tile)
    if monitor is not None:
        # snapshots are taken at tile boundaries, and resume points are tile
        # boundaries of the original run, so the tiling below stays congruent
        time_m = monitor.begin(plan, time_m, time_M)

    step_plans: Dict = step_cache if step_cache is not None else {}
    sweeps = plan.sweeps
    sparse = [plan._sparse_for(j) for j in range(plan.nsweeps)]
    for t0, t1 in time_tiles(time_m, time_M, schedule.height):
        height = t1 - t0
        if schedule.precompute_steps:
            key = (tuple(schedule.tile), height)
            steps = step_plans.get(key)
            if steps is None:
                steps = step_plans[key] = _wavefront_steps(plan, schedule, height)
        else:  # ablation: rebuild the tile geometry for every time tile
            steps = _wavefront_steps(plan, schedule, height)
        # steps hold only non-empty clipped boxes, so the hot loop skips the
        # emptiness/full-grid handling of the generic _execute_instance path
        for dt, j, box in steps:
            t = t0 + dt
            sweeps[j].evaluate(t, box)
            injections, receivers = sparse[j]
            for inj in injections:
                inj.apply(t, box)
            for rec in receivers:
                rec.gather(t, box)
            if monitor is not None:
                monitor.after_instance(plan, j, t, box)
        for t in range(t0, t1):
            for rec in plan.all_receivers():
                rec.finalize(t)
        if monitor is not None:
            monitor.after_tile(plan, t0, t1)


def run_schedule(
    plan: ExecutionPlan,
    time_m: int,
    time_M: int,
    schedule: Schedule,
    step_cache: Optional[Dict] = None,
    health=None,
    checkpoint=None,
    faults=None,
    monitor=None,
) -> None:
    """Dispatch on schedule kind.  *step_cache* only affects wavefront runs.

    ``health`` (:class:`~repro.runtime.health.HealthGuard`), ``checkpoint``
    (:class:`~repro.runtime.checkpoint.CheckpointConfig`) and ``faults``
    (:class:`~repro.runtime.faults.FaultInjector`) attach the resilience
    layer; they are bundled into a
    :class:`~repro.runtime.monitor.RuntimeMonitor` (or pass *monitor*
    directly).  All default to off and cost nothing when absent.
    """
    if monitor is None and (
        health is not None or checkpoint is not None or faults is not None
    ):
        from ..runtime.monitor import RuntimeMonitor

        monitor = RuntimeMonitor(health=health, checkpoint=checkpoint, faults=faults)
    if isinstance(schedule, NaiveSchedule):
        run_naive(plan, time_m, time_M, monitor=monitor)
    elif isinstance(schedule, SpatialBlockSchedule):
        run_spatial(plan, time_m, time_M, schedule, monitor=monitor)
    elif isinstance(schedule, WavefrontSchedule):
        run_wavefront(
            plan, time_m, time_M, schedule, step_cache=step_cache, monitor=monitor
        )
    else:
        raise TypeError(f"unknown schedule {schedule!r}")
