"""Schedule executors: run a bound operator under naive, spatially blocked or
wave-front temporally blocked traversal.

All three produce identical results (to FP associativity) when the sparse
operators are grid-aligned; the wavefront executor *requires* grid-aligned
sparse operators — running it with raw off-the-grid injection
(``unsafe_offgrid=True``) demonstrates the dependence violation of Fig. 4b
and is provided exactly for that negative test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.scheduler import (
    NaiveSchedule,
    Schedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    instance_lags,
    tile_origins,
    time_tiles,
)
from ..dsl.grid import Grid
from ..errors import InvalidTimeRange, PlanValidationError, SilentCorruptionError
from .evalbox import BoundSweep, Box, box_is_empty, box_points, clip_box, full_box

__all__ = ["ExecutionPlan", "run_schedule", "run_naive", "run_spatial", "run_wavefront"]


def _check_entry(plan: "ExecutionPlan", time_m: int, time_M: int) -> None:
    """Structured validation at every executor entry point.

    Failing here — with the offending values in the message — beats failing
    thousands of instances deep inside a tile loop with an index error.
    ``time_m == time_M`` is a legal empty run at this level; ``Operator.apply``
    keeps its stricter "must exceed" contract.
    """
    if time_M < time_m:
        raise InvalidTimeRange(
            f"time range is empty or reversed: time_m={time_m}, time_M={time_M}"
        )
    if any(s < 1 for s in plan.grid.shape):
        raise PlanValidationError(f"grid has an empty extent: shape {plan.grid.shape}")


def _check_block_shape(plan: "ExecutionPlan", extents, what: str) -> None:
    if not extents or any(b < 1 for b in extents):
        raise PlanValidationError(f"{what} has an empty extent: {tuple(extents)}")
    if len(extents) > plan.grid.ndim:
        raise PlanValidationError(
            f"{what} rank {len(extents)} exceeds grid rank {plan.grid.ndim}"
        )


@dataclass
class ExecutionPlan:
    """Everything an executor needs: bound sweeps, per-sweep read radii, and
    sparse operators attached to their sweeps."""

    grid: Grid
    sweeps: List[BoundSweep]
    radii: List[int]
    #: sweep index -> grid-aligned or raw injectors (apply(t, box))
    injections: Dict[int, list] = field(default_factory=dict)
    #: sweep index -> receivers (gather(t, box) / finalize(t))
    receivers: Dict[int, list] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.sweeps) != len(self.radii):
            raise ValueError("one radius per sweep required")
        if not self.sweeps:
            raise ValueError("plan has no sweeps")

    @property
    def nsweeps(self) -> int:
        return len(self.sweeps)

    @property
    def angle(self) -> int:
        """Wavefront skew per timestep (sum of sweep radii)."""
        return sum(self.radii)

    def validate(self) -> "ExecutionPlan":
        """Pre-flight the plan's precomputed sparse structures (SM/SID/
        ``src_dcmp``/weight-matrix shape consistency); raises
        :class:`~repro.errors.PlanValidationError` before timestep 0 instead
        of failing inside a tile loop.  Checks are memoised per masks object,
        so repeated applies pay almost nothing."""
        from ..runtime.preflight import validate_plan

        validate_plan(self)
        return self

    def all_receivers(self) -> list:
        out = []
        for lst in self.receivers.values():
            out.extend(lst)
        return out

    def _sparse_for(self, j: int) -> Tuple[list, list]:
        return self.injections.get(j, []), self.receivers.get(j, [])


def _execute_instance(plan: ExecutionPlan, j: int, t: int, box: Optional[Box]) -> None:
    """Run sweep *j* at timestep *t* on *box* (None = full grid), then its
    attached sparse operators on the same box."""
    use_box = box if box is not None else full_box(plan.grid)
    if box_is_empty(use_box):
        return
    plan.sweeps[j].evaluate(t, use_box)
    injections, receivers = plan._sparse_for(j)
    for inj in injections:
        inj.apply(t, box)
    for rec in receivers:
        rec.gather(t, box)


def run_naive(
    plan: ExecutionPlan, time_m: int, time_M: int, monitor=None, telemetry=None
) -> None:
    """Listing 1: whole-grid sweeps, sparse operators after each sweep."""
    _check_entry(plan, time_m, time_M)
    if telemetry is not None:
        _instr_naive(plan, time_m, time_M, monitor, telemetry)
        return
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
    for t in range(time_m, time_M):
        # containment unit = one timestep; the loop body runs once unless the
        # ABFT check detects corruption and the monitor restores the entry
        # micro-snapshot for re-execution
        reexec = 0
        while True:
            if monitor is not None:
                monitor.tile_entry(plan, t, t + 1)
            try:
                for j in range(plan.nsweeps):
                    _execute_instance(plan, j, t, None)
                    if monitor is not None:
                        monitor.after_instance(plan, j, t, None)
                for rec in plan.all_receivers():
                    rec.finalize(t)
                if monitor is not None:
                    monitor.after_step(plan, t)
                break
            except SilentCorruptionError:
                reexec += 1
                if monitor is None or not monitor.contain(plan, t, reexec):
                    raise


def _blocked_boxes(grid: Grid, block: Tuple[int, ...]):
    """Rectangular blocks over the leading dims; trailing dims unblocked."""
    nb = len(block)
    shape = grid.shape
    ranges = [range(0, shape[d], block[d]) for d in range(nb)]

    def rec(d: int, prefix: Tuple[Tuple[int, int], ...]):
        if d == nb:
            tail = tuple((0, shape[k]) for k in range(nb, len(shape)))
            yield prefix + tail
            return
        for lo in ranges[d]:
            yield from rec(d + 1, prefix + ((lo, min(lo + block[d], shape[d])),))

    yield from rec(0, ())


def run_spatial(
    plan: ExecutionPlan,
    time_m: int,
    time_M: int,
    schedule: SpatialBlockSchedule,
    monitor=None,
    telemetry=None,
) -> None:
    """Fig. 4a: space blocking inside each timestep.

    A sweep's blocks may run in any order (no intra-sweep dependence), but a
    barrier separates sweeps, and sparse operators run after the full sweep --
    which is why space blocking never conflicts with off-the-grid operators.
    """
    _check_entry(plan, time_m, time_M)
    _check_block_shape(plan, schedule.block, "space block")
    if telemetry is not None:
        _instr_spatial(plan, time_m, time_M, schedule, monitor, telemetry)
        return
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
    boxes = list(_blocked_boxes(plan.grid, schedule.block))
    for t in range(time_m, time_M):
        reexec = 0
        while True:
            if monitor is not None:
                monitor.tile_entry(plan, t, t + 1)
            try:
                for j in range(plan.nsweeps):
                    for box in boxes:
                        plan.sweeps[j].evaluate(t, box)
                        if monitor is not None:
                            monitor.after_instance(plan, j, t, box)
                    injections, receivers = plan._sparse_for(j)
                    for inj in injections:
                        inj.apply(t, None)
                    for rec in receivers:
                        rec.gather(t, None)
                for rec in plan.all_receivers():
                    rec.finalize(t)
                if monitor is not None:
                    monitor.after_step(plan, t)
                break
            except SilentCorruptionError:
                reexec += 1
                if monitor is None or not monitor.contain(plan, t, reexec):
                    raise


def _wavefront_steps(
    plan: ExecutionPlan, schedule: WavefrontSchedule, height: int
) -> List[Tuple[int, int, Box, int]]:
    """The full traversal of one time tile of *height*, precomputed.

    Returns ``(dt, j, box, tile)`` steps in execution order: for every space
    tile origin (ascending lexicographic over the skewed domain, numbered by
    ``tile``), every sweep instance ``(dt, j)`` with its lag-shifted,
    grid-clipped, non-empty box.  The step list depends on the time tile only
    through its height, so executors compute it once per distinct height and
    replay it for every congruent tile.
    """
    grid = plan.grid
    nskew = len(schedule.tile)
    skew_extents = tuple(grid.shape[:nskew])
    tail = tuple((0, s) for s in grid.shape[nskew:])
    lags = instance_lags(tuple(plan.radii), height)
    instances = [(dt, j) for dt in range(height) for j in range(plan.nsweeps)]
    steps: List[Tuple[int, int, Box, int]] = []
    for tile_id, origin in enumerate(tile_origins(skew_extents, schedule.tile, lags[-1])):
        for (dt, j), lag in zip(instances, lags):
            window = tuple(
                (o - lag, o - lag + ext) for o, ext in zip(origin, schedule.tile)
            )
            box = clip_box(window + tail, grid)
            if not box_is_empty(box):
                steps.append((dt, j, box, tile_id))
    return steps


def run_wavefront(
    plan: ExecutionPlan,
    time_m: int,
    time_M: int,
    schedule: WavefrontSchedule,
    step_cache: Optional[Dict] = None,
    monitor=None,
    telemetry=None,
) -> None:
    """Listing 6: wave-front temporal blocking over skewed space-time tiles.

    For each time tile ``[t0, t1)``, space tiles traverse the *skewed*
    domain in ascending lexicographic order; within each space tile every
    sweep instance ``(t, j)`` executes on the tile window shifted left by its
    cumulative lag, immediately followed by its grid-aligned sparse
    operators restricted to the same window.

    The per-tile geometry (instance list, lags, windows, clipped boxes) is
    invariant across time tiles of equal height, so it is computed once per
    height (:func:`_wavefront_steps`) and replayed — the inner loop does no
    geometry work at all.  Passing *step_cache* (a dict owned by the caller,
    e.g. :class:`~repro.ir.operator.Operator`) additionally persists the step
    plans across applies, keyed by tile geometry and height; geometry depends
    only on the grid, the sweep radii and the schedule, all fixed per
    operator.
    """
    _check_entry(plan, time_m, time_M)
    _check_block_shape(plan, schedule.tile, "space tile")
    if telemetry is not None:
        _instr_wavefront(
            plan, time_m, time_M, schedule, step_cache, monitor, telemetry
        )
        return
    if monitor is not None:
        # snapshots are taken at tile boundaries, and resume points are tile
        # boundaries of the original run, so the tiling below stays congruent
        time_m = monitor.begin(plan, time_m, time_M)

    step_plans: Dict = step_cache if step_cache is not None else {}
    sweeps = plan.sweeps
    sparse = [plan._sparse_for(j) for j in range(plan.nsweeps)]
    for t0, t1 in time_tiles(time_m, time_M, schedule.height):
        height = t1 - t0
        if schedule.precompute_steps:
            key = (tuple(schedule.tile), height)
            steps = step_plans.get(key)
            if steps is None:
                steps = step_plans[key] = _wavefront_steps(plan, schedule, height)
        else:  # ablation: rebuild the tile geometry for every time tile
            steps = _wavefront_steps(plan, schedule, height)
        # containment unit = the whole time tile: corruption detected at the
        # tile exit rolls the live region back to the tile entry and replays
        # just these steps — the tile-granular recovery the micro-snapshots
        # exist for
        reexec = 0
        while True:
            if monitor is not None:
                monitor.tile_entry(plan, t0, t1)
            try:
                # steps hold only non-empty clipped boxes, so the hot loop
                # skips the emptiness/full-grid handling of the generic
                # _execute_instance path
                for dt, j, box, _tile in steps:
                    t = t0 + dt
                    sweeps[j].evaluate(t, box)
                    injections, receivers = sparse[j]
                    for inj in injections:
                        inj.apply(t, box)
                    for rec in receivers:
                        rec.gather(t, box)
                    if monitor is not None:
                        monitor.after_instance(plan, j, t, box)
                for t in range(t0, t1):
                    for rec in plan.all_receivers():
                        rec.finalize(t)
                if monitor is not None:
                    monitor.after_tile(plan, t0, t1)
                break
            except SilentCorruptionError:
                reexec += 1
                if monitor is None or not monitor.contain(plan, t0, reexec):
                    raise


def run_schedule(
    plan: ExecutionPlan,
    time_m: int,
    time_M: int,
    schedule: Schedule,
    step_cache: Optional[Dict] = None,
    health=None,
    checkpoint=None,
    faults=None,
    abft=None,
    monitor=None,
    telemetry=None,
) -> None:
    """Dispatch on schedule kind.  *step_cache* only affects wavefront runs.

    ``health`` (:class:`~repro.runtime.health.HealthGuard`), ``checkpoint``
    (:class:`~repro.runtime.checkpoint.CheckpointConfig`), ``faults``
    (:class:`~repro.runtime.faults.FaultInjector`) and ``abft``
    (:class:`~repro.runtime.abft.ABFTGuard`) attach the resilience layer;
    they are bundled into a
    :class:`~repro.runtime.monitor.RuntimeMonitor` (or pass *monitor*
    directly).  ``telemetry`` (:class:`~repro.telemetry.Telemetry`) attaches
    the tracing/counter layer.  All default to off and cost nothing when
    absent.
    """
    if monitor is None and (
        health is not None
        or checkpoint is not None
        or faults is not None
        or abft is not None
    ):
        from ..runtime.monitor import RuntimeMonitor

        monitor = RuntimeMonitor(
            health=health, checkpoint=checkpoint, faults=faults, abft=abft
        )
    guard_base = abft_base = None
    if monitor is not None and telemetry is not None:
        # checkpoint saves / fired faults emit telemetry events through the
        # monitor; guard activity is folded in as a delta after the run
        monitor.telemetry = telemetry
        if monitor.health is not None:
            guard_base = dict(monitor.health.stats)
        if monitor.abft is not None:
            abft_base = dict(monitor.abft.stats)
    try:
        if isinstance(schedule, NaiveSchedule):
            run_naive(plan, time_m, time_M, monitor=monitor, telemetry=telemetry)
        elif isinstance(schedule, SpatialBlockSchedule):
            run_spatial(
                plan, time_m, time_M, schedule, monitor=monitor, telemetry=telemetry
            )
        elif isinstance(schedule, WavefrontSchedule):
            run_wavefront(
                plan,
                time_m,
                time_M,
                schedule,
                step_cache=step_cache,
                monitor=monitor,
                telemetry=telemetry,
            )
        else:
            raise TypeError(f"unknown schedule {schedule!r}")
    finally:
        # flush even when the run aborts (e.g. NumericalBlowup) — partial
        # telemetry of a crashed run is the postmortem
        if guard_base is not None:
            stats = monitor.health.stats
            telemetry.counters.add("guard_ticks", stats["ticks"] - guard_base["ticks"])
            telemetry.counters.add(
                "guard_checks", stats["checks"] - guard_base["checks"]
            )
        if abft_base is not None:
            stats = monitor.abft.stats
            for key, counter in (
                ("checks", "abft_checks"),
                ("detections", "abft_detections"),
                ("micro_snapshots", "abft_micro_snapshots"),
                ("micro_snapshot_bytes", "abft_micro_snapshot_bytes"),
            ):
                telemetry.counters.add(counter, stats[key] - abft_base[key])


# -- instrumented traversals ------------------------------------------------------
#
# Mirrors of the hot loops above with boundary-to-boundary phase timing: each
# clock reading picks up from the previous one, so loop overhead is absorbed
# into the adjacent phase and the per-phase sum covers the run wall-time
# almost exactly.  Counters accumulate in locals and flush once per run.  At
# ``detail="trace"`` one span per sweep instance is recorded from the same
# clock readings (no extra clock calls on the instance path).


def _sweep_names(plan: ExecutionPlan) -> List[str]:
    return [
        f"sweep{j}:{sw.beqs[0].lhs.function.name}" for j, sw in enumerate(plan.sweeps)
    ]


class _InstrCounts:
    """Local tallies of one instrumented run, flushed to telemetry once."""

    def __init__(self, plan: ExecutionPlan):
        self.nsweeps = plan.nsweeps
        self.neqs = [len(s) for s in plan.sweeps]
        self.instances = [0] * plan.nsweeps
        self.points = [0] * plan.nsweeps
        self.inj_points = 0
        self.rec_points = 0
        self.rec_rows = 0

    def flush(self, telemetry) -> None:
        c = telemetry.counters
        c.add("instances", sum(self.instances))
        c.add(
            "points_updated",
            sum(p * n for p, n in zip(self.points, self.neqs)),
        )
        for j in range(self.nsweeps):
            c.add(f"sweep{j}.instances", self.instances[j])
            c.add(f"sweep{j}.points", self.points[j])
        c.add("src_points_injected", self.inj_points)
        c.add("rec_points_gathered", self.rec_points)
        c.add("rec_rows_finalized", self.rec_rows)


def _instr_naive(plan, time_m, time_M, monitor, tel) -> None:
    from ..telemetry.counters import gathered_points, injected_points

    clock, ph, trace = tel._clock, tel.phase_seconds, tel.trace
    rspan = tel.begin("run", schedule="naive", time_m=time_m, time_M=time_M)
    last = rspan.start
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
        now = clock()
        ph["checkpoint+guard"] += now - last
        last = now
    names = _sweep_names(plan)
    counts = _InstrCounts(plan)
    sparse = [plan._sparse_for(j) for j in range(plan.nsweeps)]
    full = full_box(plan.grid)
    gpts = box_points(full)
    for t in range(time_m, time_M):
        sspan = tel.begin("step", t=t)
        last = sspan.start
        depth = len(tel._stack)
        reexec = 0
        while True:
            if monitor is not None:
                monitor.tile_entry(plan, t, t + 1)
                now = clock()
                ph["checkpoint+guard"] += now - last
                last = now
            try:
                for j in range(plan.nsweeps):
                    inst_start = last
                    plan.sweeps[j].evaluate(t, full)
                    now = clock()
                    ph["stencil"] += now - last
                    last = now
                    counts.instances[j] += 1
                    counts.points[j] += gpts
                    injections, receivers = sparse[j]
                    if injections:
                        for inj in injections:
                            inj.apply(t, None)
                            counts.inj_points += injected_points(inj, t, None)
                        now = clock()
                        ph["injection"] += now - last
                        last = now
                    if receivers:
                        for rec in receivers:
                            rec.gather(t, None)
                            counts.rec_points += gathered_points(rec, t, None)
                        now = clock()
                        ph["receivers"] += now - last
                        last = now
                    if monitor is not None:
                        monitor.after_instance(plan, j, t, None)
                        now = clock()
                        ph["checkpoint+guard"] += now - last
                        last = now
                    if trace:
                        tel.record(
                            names[j], "stencil", inst_start, last - inst_start,
                            depth, {"t": t, "sweep": j},
                        )
                for rec in plan.all_receivers():
                    rec.finalize(t)
                    counts.rec_rows += 1
                now = clock()
                ph["receivers"] += now - last
                last = now
                if monitor is not None:
                    monitor.after_step(plan, t)
                    now = clock()
                    ph["checkpoint+guard"] += now - last
                    last = now
                break
            except SilentCorruptionError:
                reexec += 1
                if monitor is None or not monitor.contain(plan, t, reexec):
                    raise
                now = clock()
                ph["checkpoint+guard"] += now - last
                last = now
        tel.end(sspan)
        last = sspan.end
    counts.flush(tel)
    tel.end(rspan)


def _instr_spatial(plan, time_m, time_M, schedule, monitor, tel) -> None:
    from ..telemetry.counters import gathered_points, injected_points

    clock, ph, trace = tel._clock, tel.phase_seconds, tel.trace
    rspan = tel.begin(
        "run", schedule="spatial", block=tuple(schedule.block),
        time_m=time_m, time_M=time_M,
    )
    last = rspan.start
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
        now = clock()
        ph["checkpoint+guard"] += now - last
        last = now
    boxes = list(_blocked_boxes(plan.grid, schedule.block))
    now = clock()
    ph["precompute"] += now - last  # block geometry
    last = now
    names = _sweep_names(plan)
    counts = _InstrCounts(plan)
    sparse = [plan._sparse_for(j) for j in range(plan.nsweeps)]
    bpts = [box_points(b) for b in boxes]
    for t in range(time_m, time_M):
        sspan = tel.begin("step", t=t)
        last = sspan.start
        depth = len(tel._stack)
        reexec = 0
        while True:
            if monitor is not None:
                monitor.tile_entry(plan, t, t + 1)
                now = clock()
                ph["checkpoint+guard"] += now - last
                last = now
            st_acc = mon_acc = 0.0  # local accumulators, folded in per step
            try:
                for j in range(plan.nsweeps):
                    for b, box in enumerate(boxes):
                        inst_start = last
                        plan.sweeps[j].evaluate(t, box)
                        now = clock()
                        st_acc += now - last
                        last = now
                        counts.instances[j] += 1
                        counts.points[j] += bpts[b]
                        if monitor is not None:
                            monitor.after_instance(plan, j, t, box)
                            now = clock()
                            mon_acc += now - last
                            last = now
                        if trace:
                            tel.record(
                                names[j], "stencil", inst_start,
                                last - inst_start, depth,
                                {"t": t, "sweep": j, "block": b, "box": box},
                            )
                    injections, receivers = sparse[j]
                    if injections:
                        for inj in injections:
                            inj.apply(t, None)
                            counts.inj_points += injected_points(inj, t, None)
                        now = clock()
                        ph["injection"] += now - last
                        last = now
                    if receivers:
                        for rec in receivers:
                            rec.gather(t, None)
                            counts.rec_points += gathered_points(rec, t, None)
                        now = clock()
                        ph["receivers"] += now - last
                        last = now
                ph["stencil"] += st_acc
                ph["checkpoint+guard"] += mon_acc
                for rec in plan.all_receivers():
                    rec.finalize(t)
                    counts.rec_rows += 1
                now = clock()
                ph["receivers"] += now - last
                last = now
                if monitor is not None:
                    monitor.after_step(plan, t)
                    now = clock()
                    ph["checkpoint+guard"] += now - last
                    last = now
                break
            except SilentCorruptionError:
                # raised by the boundary check in after_step, i.e. after the
                # accumulators were already folded in above
                reexec += 1
                if monitor is None or not monitor.contain(plan, t, reexec):
                    raise
                now = clock()
                ph["checkpoint+guard"] += now - last
                last = now
        tel.end(sspan)
        last = sspan.end
    counts.flush(tel)
    tel.end(rspan)


def _sparse_fingerprint(sparse) -> tuple:
    """Identity of a plan's bound sparse operators, for reuse of the
    persistent instrumentation counts across applies.  Masks objects are
    cached per operator, so their ids are stable for the operator's
    lifetime; a re-bind under a different sparse mode (raw vs precomputed)
    or with different masks changes the fingerprint and invalidates the
    cached counts."""
    fp = []
    for injections, receivers in sparse:
        fp.append((
            tuple(
                (
                    id(inj.masks) if getattr(inj, "masks", None) is not None else -1,
                    getattr(inj, "nt", -1),
                    inj.time_offset,
                )
                for inj in injections
            ),
            tuple(
                (
                    id(rec.masks) if getattr(rec, "masks", None) is not None else -1,
                    rec.output.shape[0] if hasattr(rec, "output") else -1,
                    rec.time_offset,
                )
                for rec in receivers
            ),
        ))
    return tuple(fp)


def _instr_wavefront(
    plan, time_m, time_M, schedule, step_cache, monitor, tel
) -> None:
    from ..telemetry.counters import gathered_points, injected_points

    clock, ph, trace = tel._clock, tel.phase_seconds, tel.trace
    rspan = tel.begin(
        "run", schedule="wavefront", tile=tuple(schedule.tile),
        height=schedule.height, time_m=time_m, time_M=time_M,
    )
    last = rspan.start
    if monitor is not None:
        time_m = monitor.begin(plan, time_m, time_M)
        now = clock()
        ph["checkpoint+guard"] += now - last
        last = now
    step_plans: Dict = step_cache if step_cache is not None else {}
    names = _sweep_names(plan)
    counts = _InstrCounts(plan)
    sweeps = plan.sweeps
    sparse = [plan._sparse_for(j) for j in range(plan.nsweeps)]
    # lazy per-(sweep, box) instrumentation entries: (box points, injection
    # ops with points in the box, receiver ops with points in the box), each
    # op as (op, n, tmin, tmax) with the t-bounds of its countable window
    # precomputed — steady state costs one dict probe per instance, and
    # sparse ops whose masks miss the box are skipped outright (their
    # apply/gather is a no-op, so skipping is observation, not perturbation)
    sp_cache: List[Dict[Box, tuple]] = [{} for _ in range(plan.nsweeps)]
    # the counts themselves ((j, box) -> (points, per-slot sparse windows))
    # depend only on the masks and the tile geometry, both stable across
    # applies, so they persist in the caller's step cache — guarded by a
    # fingerprint of the bound sparse ops so a re-bind with different masks
    # or sparse mode rebuilds them
    counts_map: Dict = {}
    if step_cache is not None:
        fp = _sparse_fingerprint(sparse)
        persist = step_cache.get("instr-counts")
        if persist is None or persist[0] != fp:
            persist = (fp, {})
            step_cache["instr-counts"] = persist
        counts_map = persist[1]

    def _entry(j: int, box) -> tuple:
        injections, receivers = sparse[j]
        cm = counts_map.get((j, box))
        if cm is None:
            pts = box_points(box)
            inj_meta = []
            rec_meta = []
            for slot, inj in enumerate(injections):
                if getattr(inj, "masks", None) is None:
                    # raw off-the-grid op: apply() must still run so it
                    # raises exactly as the uninstrumented path does;
                    # never countable
                    inj_meta.append((slot, -1, 0, 0))
                else:
                    n = injected_points(inj, 0, box)
                    if n:
                        inj_meta.append((slot, n, 0, inj.nt))
            for slot, rec in enumerate(receivers):
                if getattr(rec, "masks", None) is None:
                    rec_meta.append((slot, -1, 0, 0))
                else:
                    n = gathered_points(rec, -rec.time_offset, box)
                    if n:
                        off = rec.time_offset
                        rec_meta.append(
                            (slot, n, -off, rec.output.shape[0] - off)
                        )
            cm = counts_map[(j, box)] = (pts, tuple(inj_meta), tuple(rec_meta))
        pts, inj_meta, rec_meta = cm
        entry = (
            pts,
            tuple((injections[s], n, ta, tb) for s, n, ta, tb in inj_meta),
            tuple((receivers[s], n, ta, tb) for s, n, ta, tb in rec_meta),
        )
        sp_cache[j][box] = entry
        return entry
    for t0, t1 in time_tiles(time_m, time_M, schedule.height):
        height = t1 - t0
        if schedule.precompute_steps:
            key = (tuple(schedule.tile), height)
            steps = step_plans.get(key)
            if steps is None:
                steps = step_plans[key] = _wavefront_steps(plan, schedule, height)
                tel.counters.add("step_cache_misses")
            else:
                # replayed geometry — a warm worker's persistent family
                # cache makes even the run's first tile a hit
                tel.counters.add("step_cache_hits")
        else:
            steps = _wavefront_steps(plan, schedule, height)
        now = clock()
        ph["precompute"] += now - last  # step-plan geometry (cached after once)
        last = now
        tspan = tel.begin("tile", t0=t0, t1=t1)
        last = tspan.start
        depth = len(tel._stack)
        reexec = 0
        while True:
            if monitor is not None:
                monitor.tile_entry(plan, t0, t1)
                now = clock()
                ph["checkpoint+guard"] += now - last
                last = now
            # plain local accumulators in the hot loop — string-keyed dict
            # writes per instance are both slower and hash-seed-sensitive
            st_acc = inj_acc = rec_acc = mon_acc = 0.0
            try:
                for dt, j, box, tile_id in steps:
                    t = t0 + dt
                    inst_start = last
                    sweeps[j].evaluate(t, box)
                    now = clock()
                    st_acc += now - last
                    last = now
                    entry = sp_cache[j].get(box)
                    if entry is None:
                        entry = _entry(j, box)
                    pts, inj_ops, rec_ops = entry
                    counts.instances[j] += 1
                    counts.points[j] += pts
                    if inj_ops:
                        for inj, n, ta, tb in inj_ops:
                            inj.apply(t, box)
                            if ta <= t < tb:
                                counts.inj_points += n
                        now = clock()
                        inj_acc += now - last
                        last = now
                    if rec_ops:
                        for rec, n, ta, tb in rec_ops:
                            rec.gather(t, box)
                            if ta <= t < tb:
                                counts.rec_points += n
                        now = clock()
                        rec_acc += now - last
                        last = now
                    if monitor is not None:
                        monitor.after_instance(plan, j, t, box)
                        now = clock()
                        mon_acc += now - last
                        last = now
                    if trace:
                        tel.record(
                            names[j], "stencil", inst_start, last - inst_start,
                            depth, {"t": t, "sweep": j, "tile": tile_id, "box": box},
                        )
                for t in range(t0, t1):
                    for rec in plan.all_receivers():
                        rec.finalize(t)
                        counts.rec_rows += 1
                now = clock()
                rec_acc += now - last
                last = now
                ph["stencil"] += st_acc
                ph["injection"] += inj_acc
                ph["receivers"] += rec_acc
                ph["checkpoint+guard"] += mon_acc
                if monitor is not None:
                    monitor.after_tile(plan, t0, t1)
                    now = clock()
                    ph["checkpoint+guard"] += now - last
                    last = now
                break
            except SilentCorruptionError:
                # raised by the boundary check in after_tile, i.e. after the
                # accumulators were already folded in above
                reexec += 1
                if monitor is None or not monitor.contain(plan, t0, reexec):
                    raise
                now = clock()
                ph["checkpoint+guard"] += now - last
                last = now
        tel.end(tspan)
        last = tspan.end
    counts.flush(tel)
    tel.end(rspan)
