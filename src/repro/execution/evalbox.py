"""Vectorised evaluation of update equations on sub-boxes of the grid.

This is the execution primitive shared by every schedule: the naive
time-stepper evaluates each equation on the full interior box; the spatially
blocked and wavefront executors evaluate the same equations on smaller boxes.
Each :class:`~repro.dsl.symbols.Indexed` access is mapped onto a shifted NumPy
view of the field's padded buffer, so a single call updates a whole box with
vectorised arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dsl.equation import Eq
from ..dsl.functions import TimeFunction
from ..dsl.grid import Grid
from ..dsl.symbols import Expr, Indexed
from ..errors import EngineCompilationError

__all__ = [
    "Box",
    "full_box",
    "clip_box",
    "box_is_empty",
    "box_view",
    "BoundEq",
    "BoundSweep",
    "bind_equations",
    "ENGINES",
]

#: execution engines: "fused" = one three-address kernel per sweep (default),
#: "kernel" = one compiled expression kernel per equation, "interp" = the
#: tree-walking interpreter.  All three are bit-identical.
ENGINES = ("fused", "kernel", "interp")

Box = Tuple[Tuple[int, int], ...]  # ((lo, hi) per spatial dimension), hi exclusive


def full_box(grid: Grid) -> Box:
    """The whole interior iteration space."""
    return tuple((0, s) for s in grid.shape)


def clip_box(box: Box, grid: Grid) -> Box:
    """Intersect *box* with the grid interior."""
    return tuple(
        (max(lo, 0), min(hi, s)) for (lo, hi), s in zip(box, grid.shape)
    )


def box_is_empty(box: Box) -> bool:
    return any(hi <= lo for lo, hi in box)


def box_points(box: Box) -> int:
    return int(np.prod([max(hi - lo, 0) for lo, hi in box]))


def box_view(access: Indexed, t: int, box: Box, dim_names: Sequence[str]) -> np.ndarray:
    """The NumPy view of *access* on *box* at logical timestep *t*.

    TimeFunction accesses resolve through the circular time buffer; all
    spatial offsets shift the slice within the halo-padded buffer.
    """
    func = access.function
    offsets = access.offset_map()
    if isinstance(func, TimeFunction):
        buf = func.buffer(t + offsets.get("t", 0))
    else:
        buf = func.data_with_halo
    h = func.halo
    slices = tuple(
        slice(h + lo + offsets.get(name, 0), h + hi + offsets.get(name, 0))
        for name, (lo, hi) in zip(dim_names, box)
    )
    return buf[slices]


class BoundEq:
    """An equation bound to its grid, pre-analysed for fast box evaluation.

    Numeric values for ``dt`` and the spacing symbols must already have been
    substituted into the equation (see
    :meth:`repro.ir.operator.Operator._bind`), leaving only Indexed leaves and
    numbers in the expression tree.

    With ``compiled=True`` (the default) the right-hand side is rendered to
    Python/NumPy source and compiled once (see :mod:`repro.ir.pycodegen`);
    ``compiled=False`` keeps the tree-walking interpreter — both produce
    bit-identical results.
    """

    def __init__(self, eq: Eq, grid: Grid, compiled: bool = True):
        self.eq = eq
        self.grid = grid
        self.lhs = eq.lhs
        self.rhs = eq.rhs
        free = {
            s.name for s in self.rhs.free_symbols()
        }
        if free:
            raise ValueError(
                f"unbound symbols {sorted(free)} in equation {eq}; substitute "
                "dt and grid spacings before execution"
            )
        self.reads: List[Indexed] = sorted(self.rhs.atoms(Indexed), key=str)
        self.dim_names = [d.name for d in grid.dimensions]
        self.write_time_offset = self.lhs.offset_map().get("t", 0)
        self._kernel = None
        if compiled:
            from ..ir.pycodegen import compile_rhs

            # equation validation above is engine-independent and raises raw;
            # failures from here on are *engine* failures the selection
            # ladder may recover from by degrading to the interpreter
            try:
                self._kernel, self.reads = compile_rhs(self.rhs, self.reads)
            except Exception as exc:
                raise EngineCompilationError(
                    f"per-equation kernel compilation failed for {eq}: {exc}",
                    engine="kernel",
                ) from exc

    # -- view construction -------------------------------------------------------
    def _view(self, access: Indexed, t: int, box: Box) -> np.ndarray:
        return box_view(access, t, box, self.dim_names)

    def evaluate(self, t: int, box: Box) -> None:
        """Execute ``lhs[box] <- rhs[box]`` for logical timestep *t*."""
        if box_is_empty(box):
            return
        out = self._view(self.lhs, t, box)
        if self._kernel is not None:
            self._kernel(out, *(self._view(a, t, box) for a in self.reads))
            return
        env: Dict[Expr, np.ndarray] = {a: self._view(a, t, box) for a in self.reads}
        result = self.rhs.evaluate(env)
        out[...] = result

    def __repr__(self) -> str:
        return f"BoundEq({self.eq})"


class BoundSweep:
    """All equations of one sweep bound to the grid, driven by one engine.

    This is the sweep-granular execution primitive: the executors call
    :meth:`evaluate` once per ``(t, box)`` instance and the sweep runs all of
    its equations in order.

    * ``engine="fused"`` (default): all equations are compiled into a single
      three-address kernel (:func:`repro.ir.pycodegen.compile_sweep`) fed from
      a :class:`~repro.ir.pycodegen.ScratchPool`.  The array views for a
      ``(t, box)`` instance are built once per instance and memoised — the
      views only depend on ``t`` modulo the time-buffer period, so wavefront
      execution revisiting the same box at a congruent timestep pays zero
      view-construction cost.
    * ``engine="kernel"``: the per-equation compiled kernels (the previous
      generation of the engine, kept as the honest benchmark baseline).
    * ``engine="interp"``: the tree-walking interpreter.

    All three engines produce bit-identical results; the equivalence suite
    asserts this across every physics × schedule combination.
    """

    def __init__(self, eqs: Sequence[Eq], grid: Grid, engine: str = "fused", pool=None):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.grid = grid
        self.engine = engine
        self.eqs = list(eqs)
        self.dim_names = [d.name for d in grid.dimensions]
        # BoundEq validates unbound symbols for every engine and is the
        # execution vehicle for the non-fused ones.
        self.beqs = [BoundEq(e, grid, compiled=(engine == "kernel")) for e in self.eqs]
        self._kernel = None
        if engine == "fused":
            from ..ir.passes import hoist_invariants
            from ..ir.pycodegen import ScratchPool, compile_sweep

            self.writes: List[Indexed] = [beq.lhs for beq in self.beqs]
            # model-only subexpressions (1/m, lambda + 2*mu, cos(theta), ...)
            # become precomputed full-grid arrays instead of per-box work;
            # buffers are filled lazily at the first evaluate and refreshed
            # per bind so model mutations between applies are observed
            try:
                hoisted = hoist_invariants([beq.rhs for beq in self.beqs])
                self.hoisted_fields = hoisted.fields
                self._stale_invariants = bool(hoisted.fields)
                read_set = set()
                for rhs in hoisted.rhss:
                    read_set.update(rhs.atoms(Indexed))
                self.reads: List[Indexed] = sorted(read_set, key=str)
                self._kernel = compile_sweep(
                    self.writes,
                    hoisted.rhss,
                    self.reads,
                    [a.function.dtype for a in self.reads],
                    [l.function.dtype for l in self.writes],
                )
            except EngineCompilationError:
                raise
            except Exception as exc:
                raise EngineCompilationError(
                    f"fused sweep compilation failed: {exc}", engine="fused"
                ) from exc
            self.pool = pool if pool is not None else ScratchPool()
            self._period = math.lcm(
                *[
                    a.function.buffers
                    for a in (*self.writes, *self.reads)
                    if isinstance(a.function, TimeFunction)
                ],
                1,
            )
            self._view_cache: Dict[Tuple, Tuple[tuple, tuple]] = {}
            # slab coloring from the scratch-liveness proof: when set (via
            # apply_slot_plan), slot i checks out the pooled slab of color
            # _slot_colors[i] instead of a per-(shape, dtype, slot) buffer
            self._slot_colors: Optional[Tuple[int, ...]] = None
            # plain-int tallies of the memoised (t, box) bindings; read by
            # the telemetry layer as per-run deltas (Operator.apply).  Kept
            # unconditional: two int adds per evaluate are noise next to the
            # kernel call, and gating them would cost the branch they save.
            self.view_hits = 0
            self.view_misses = 0

    def evaluate(self, t: int, box: Box) -> None:
        """Execute every equation of the sweep on *box* at timestep *t*."""
        if self._kernel is None:
            for beq in self.beqs:
                beq.evaluate(t, box)
            return
        if self._stale_invariants:
            # must precede view construction: hoisted-field views read the
            # lazily allocated invariant buffers
            for hf in self.hoisted_fields:
                hf.materialise()
            self._stale_invariants = False
        # cache-hit path next: empty boxes are never cached, so a hit implies
        # a non-empty box and the hot loop skips the emptiness scan entirely
        key = (t % self._period, box)
        bound = self._view_cache.get(key)
        if bound is None:
            self.view_misses += 1
            if box_is_empty(box):
                return
            outs = tuple(box_view(l, t, box, self.dim_names) for l in self.writes)
            views = tuple(box_view(a, t, box, self.dim_names) for a in self.reads)
            colors = self._slot_colors
            if colors is not None:
                # slab mode, licensed by the cross-sweep liveness proof: all
                # box shapes and same-colored slots share one growable slab
                slots = tuple(
                    self.pool.slab_view(outs[0].shape, dt, colors[i])
                    for i, (dt, _) in enumerate(self._kernel.__slotspec__)
                )
            else:
                slots = tuple(
                    self.pool.get(outs[0].shape, dt, i)
                    for dt, i in self._kernel.__slotspec__
                )
            if len(self._view_cache) >= 4096:  # safety valve, never hit in practice
                self._view_cache.clear()
            bound = self._view_cache[key] = (slots, outs, views)
        else:
            self.view_hits += 1
        self._kernel(*bound)

    def kernel_source(self):
        """The generated three-address source of the fused kernel, or ``None``
        for the non-fused engines (kernel-IR linter entry point)."""
        if self._kernel is None:
            return None
        return getattr(self._kernel, "__source__", None)

    def kernel_program(self):
        """The structured three-address program
        (:class:`~repro.ir.nodes.TAProgram`) of the fused kernel, or ``None``
        for the non-fused engines — the input of the abstract-interpretation
        passes (:mod:`repro.verify.absint`)."""
        if self._kernel is None:
            return None
        return getattr(self._kernel, "__program__", None)

    def apply_slot_plan(self, colors: Optional[Sequence[int]]) -> None:
        """Switch scratch checkout to slab mode under the given coloring.

        *colors* assigns each slot of ``__slotspec__`` (in order) a slab
        color; equal ``(dtype, color)`` pairs share one growable pooled slab
        across all box shapes and sweeps.  Only sound when the cross-sweep
        liveness proof holds (every kernel writes every slot before reading
        it) — :meth:`Operator._build_sweeps` applies the plan exactly when
        :attr:`LivenessReport.safe_for_slab`.  ``None`` reverts to the
        conservative per-``(shape, dtype, slot)`` pool.  Cached view bindings
        are dropped either way: they embed the old checkout.
        """
        if self._kernel is None:
            return
        if colors is not None:
            colors = tuple(int(c) for c in colors)
            if len(colors) != len(self._kernel.__slotspec__):
                raise ValueError(
                    f"slot plan rank {len(colors)} != "
                    f"{len(self._kernel.__slotspec__)} kernel slots"
                )
        self._slot_colors = colors
        self._view_cache.clear()

    def invalidate_invariants(self) -> None:
        """Force hoisted model-term buffers to re-materialise on next use.

        Called once per ``Operator.apply`` when a cached bound sweep is
        reused, so mutations of time-invariant fields (velocity model,
        anisotropy parameters, ...) between applies are picked up.
        """
        if self._kernel is not None and self.hoisted_fields:
            self._stale_invariants = True

    def __iter__(self):
        return iter(self.beqs)

    def __len__(self) -> int:
        return len(self.beqs)

    def __repr__(self) -> str:
        return f"BoundSweep({len(self.beqs)} eqs, engine={self.engine!r})"


def bind_equations(eqs: Sequence[Eq], grid: Grid, compiled: bool = True) -> List[BoundEq]:
    return [BoundEq(e, grid, compiled=compiled) for e in eqs]
