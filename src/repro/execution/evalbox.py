"""Vectorised evaluation of update equations on sub-boxes of the grid.

This is the execution primitive shared by every schedule: the naive
time-stepper evaluates each equation on the full interior box; the spatially
blocked and wavefront executors evaluate the same equations on smaller boxes.
Each :class:`~repro.dsl.symbols.Indexed` access is mapped onto a shifted NumPy
view of the field's padded buffer, so a single call updates a whole box with
vectorised arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..dsl.equation import Eq
from ..dsl.functions import TimeFunction
from ..dsl.grid import Grid
from ..dsl.symbols import Expr, Indexed

__all__ = ["Box", "full_box", "clip_box", "box_is_empty", "BoundEq", "bind_equations"]

Box = Tuple[Tuple[int, int], ...]  # ((lo, hi) per spatial dimension), hi exclusive


def full_box(grid: Grid) -> Box:
    """The whole interior iteration space."""
    return tuple((0, s) for s in grid.shape)


def clip_box(box: Box, grid: Grid) -> Box:
    """Intersect *box* with the grid interior."""
    return tuple(
        (max(lo, 0), min(hi, s)) for (lo, hi), s in zip(box, grid.shape)
    )


def box_is_empty(box: Box) -> bool:
    return any(hi <= lo for lo, hi in box)


def box_points(box: Box) -> int:
    return int(np.prod([max(hi - lo, 0) for lo, hi in box]))


class BoundEq:
    """An equation bound to its grid, pre-analysed for fast box evaluation.

    Numeric values for ``dt`` and the spacing symbols must already have been
    substituted into the equation (see
    :meth:`repro.ir.operator.Operator._bind`), leaving only Indexed leaves and
    numbers in the expression tree.

    With ``compiled=True`` (the default) the right-hand side is rendered to
    Python/NumPy source and compiled once (see :mod:`repro.ir.pycodegen`);
    ``compiled=False`` keeps the tree-walking interpreter — both produce
    bit-identical results.
    """

    def __init__(self, eq: Eq, grid: Grid, compiled: bool = True):
        self.eq = eq
        self.grid = grid
        self.lhs = eq.lhs
        self.rhs = eq.rhs
        free = {
            s.name for s in self.rhs.free_symbols()
        }
        if free:
            raise ValueError(
                f"unbound symbols {sorted(free)} in equation {eq}; substitute "
                "dt and grid spacings before execution"
            )
        self.reads: List[Indexed] = sorted(self.rhs.atoms(Indexed), key=str)
        self.dim_names = [d.name for d in grid.dimensions]
        self.write_time_offset = self.lhs.offset_map().get("t", 0)
        self._kernel = None
        if compiled:
            from ..ir.pycodegen import compile_rhs

            self._kernel, self.reads = compile_rhs(self.rhs, self.reads)

    # -- view construction -------------------------------------------------------
    def _view(self, access: Indexed, t: int, box: Box) -> np.ndarray:
        func = access.function
        offsets = access.offset_map()
        if isinstance(func, TimeFunction):
            buf = func.buffer(t + offsets.get("t", 0))
        else:
            buf = func.data_with_halo
        h = func.halo
        slices = tuple(
            slice(h + lo + offsets.get(name, 0), h + hi + offsets.get(name, 0))
            for name, (lo, hi) in zip(self.dim_names, box)
        )
        return buf[slices]

    def evaluate(self, t: int, box: Box) -> None:
        """Execute ``lhs[box] <- rhs[box]`` for logical timestep *t*."""
        if box_is_empty(box):
            return
        out = self._view(self.lhs, t, box)
        if self._kernel is not None:
            self._kernel(out, *(self._view(a, t, box) for a in self.reads))
            return
        env: Dict[Expr, np.ndarray] = {a: self._view(a, t, box) for a in self.reads}
        result = self.rhs.evaluate(env)
        out[...] = result

    def __repr__(self) -> str:
        return f"BoundEq({self.eq})"


def bind_equations(eqs: Sequence[Eq], grid: Grid, compiled: bool = True) -> List[BoundEq]:
    return [BoundEq(e, grid, compiled=compiled) for e in eqs]
