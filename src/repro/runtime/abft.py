"""Algorithm-based fault tolerance: amplitude invariants at tile boundaries.

The NaN/Inf health guard cannot see *silent* data corruption — a flipped
exponent bit leaves a perfectly finite value.  What does see it is physics:
an explicit finite-difference step can only amplify the state's max-norm by
a bounded factor ``G`` (certified per operator by
:func:`repro.verify.absint.growth.prove_growth`), so across a time tile of
height ``h``

    ``|u|_exit  <=  slack * G**h * (|u|_entry + S_tile) + floor``

where ``S_tile`` bounds the amplitude injected by the sources during the
tile.  A finite bit flip that rewrites an exponent field lands many orders
of magnitude above that bound and is caught at the *next tile boundary* —
which, under the paper's temporal blocking, makes the time tile the natural
fault-containment unit: the guard captures a
:class:`~repro.runtime.checkpoint.MicroSnapshot` of the live entry state at
every boundary, and on a violation the executor restores it and re-executes
only the affected tile instead of restarting the job.

:class:`ABFTGuard` is threaded through ``Operator.apply(abft=...)`` /
``Propagator.forward(abft=...)`` exactly like the other resilience
facilities, and :func:`array_checksum` is the block-checksum primitive the
shared-memory registry (:mod:`repro.jobs.shm`) uses so warm daemons can
verify model arrays at attempt start.
"""

from __future__ import annotations

import math
import time
import zlib
from typing import Dict, List, Optional

import numpy as np

from ..errors import SilentCorruptionError

__all__ = ["ABFTGuard", "array_checksum", "amplitude_ceiling", "DEFAULT_SLACK"]

#: multiplicative headroom on the certified bound: absorbs the gap between
#: the interval bound (worst-case sign alignment) and FP rounding — real
#: growth is far *below* G, so slack only guards against pathological
#: near-bound dynamics raising false positives
DEFAULT_SLACK = 8.0

#: absolute amplitude floor: exits below this are never flagged (an
#: all-zero tile must not trip on rounding noise)
DEFAULT_FLOOR = 1e-18


def array_checksum(arr: np.ndarray) -> int:
    """CRC-32 block checksum of an array's raw bytes (shm integrity)."""
    data = np.ascontiguousarray(arr)
    return zlib.crc32(data.view(np.uint8).reshape(-1)) & 0xFFFFFFFF


def _per_step_source_amplitude(plan) -> float:
    """Upper bound on the max-norm amplitude any single timestep's source
    injection can add to a wavefield.

    Aligned injection adds exactly one decomposed amplitude per affected
    grid point, so its per-step bound is the max decomposed amplitude; raw
    injection scatters ``weights * data[t]`` over support corners, bounded
    by the total weight mass times the max wavelet sample.  A constant
    (whole-run max) per-step bound is used — looser than a per-tile window,
    but detection targets corruptions many orders of magnitude out, and a
    looser bound only *lowers* the false-positive risk.
    """
    total = 0.0
    for lst in plan.injections.values():
        for inj in lst:
            amps = getattr(inj, "_amplitudes", None)
            if amps is not None:  # AlignedInjection: one add per point
                a = np.asarray(amps)
                if a.size:
                    total += float(np.abs(a).max())
                continue
            weights = getattr(inj, "scaled_weights", None)
            data = getattr(inj, "data", None)
            if weights is not None and data is not None:
                d = np.asarray(data)
                if d.size:
                    total += float(np.abs(weights).sum()) * float(np.abs(d).max())
    return total


def amplitude_ceiling(plan, nt: int, step_gain: float = 1.0) -> Optional[float]:
    """A whole-run amplitude ceiling for :class:`~repro.runtime.health.
    HealthGuard.max_abs`, derived from the CFL amplification bound.

    For a CFL-stable explicit scheme the discrete energy — and with it the
    max-norm — is bounded by the total injected source amplitude; the
    certified per-step gain enters only over the guard's *detection
    latency* (one check cadence), not the whole run, since the state was
    verified bounded at the previous check.  ``1e3`` of slack absorbs
    geometric focusing and boundary effects.  Returns ``None`` when the
    plan has no sources and zero initial state gives no scale to bound
    against.
    """
    per_step = _per_step_source_amplitude(plan)
    entry = 0.0
    for func in _time_functions(plan).values():
        entry = max(entry, float(np.abs(func.data_with_halo).max()))
    scale = entry + per_step * max(int(nt), 1)
    if scale <= 0.0:
        return None
    gain = step_gain if math.isfinite(step_gain) else 1.0
    return 1e3 * max(gain, 1.0) * scale


def _time_functions(plan) -> Dict:
    from .checkpoint import _plan_time_functions

    return _plan_time_functions(plan)


class ABFTGuard:
    """Detects silent corruption at containment-unit boundaries and owns the
    micro-snapshot ring that makes tile-granular recovery possible.

    Lifecycle: construct unconfigured (``ABFTGuard()``), hand to
    ``apply(abft=...)``; the operator calls :meth:`configure` with the bound
    plan (proving the :class:`~repro.verify.certificate.GrowthCertificate`
    unless one was supplied), and the executors call :meth:`tile_entry` /
    :meth:`tile_check` through the :class:`~repro.runtime.monitor.
    RuntimeMonitor` at every boundary — time tiles under wavefront blocking,
    single timesteps otherwise.  On a violation the executor calls
    :meth:`restore` and re-executes the unit; :attr:`stats` and
    :attr:`events` feed the job-service journal and metrics.

    An unbounded certificate (infinite gain, e.g. an abstract division by an
    interval straddling zero) disables the amplitude invariant — the guard
    still captures micro-snapshots so checksum-triggered recovery works —
    and :attr:`amplitude_active` reports it.
    """

    def __init__(
        self,
        slack: float = DEFAULT_SLACK,
        floor: float = DEFAULT_FLOOR,
        micro_keep: Optional[int] = None,
        max_reexecutions: int = 2,
        certificate=None,
    ):
        if slack < 1.0:
            raise ValueError("slack must be >= 1")
        self.slack = float(slack)
        self.floor = float(floor)
        self.micro_keep = int(micro_keep) if micro_keep is not None else None
        self.max_reexecutions = int(max_reexecutions)
        self.certificate = certificate
        self.stats: Dict[str, float] = {
            "checks": 0,
            "detections": 0,
            "tiles_reexecuted": 0,
            "micro_snapshots": 0,
            "micro_snapshot_bytes": 0,
            "seconds": 0.0,
        }
        #: detection/recovery events, journaled by the job service
        self.events: List[dict] = []
        self._ring: List = []
        self._step_gain = math.inf
        self._per_step_source = 0.0
        self._entry: Dict[str, float] = {}
        self._exit_cache: Optional[tuple] = None
        self._configured = False

    # -- configuration (Operator.apply) --------------------------------------------
    def configure(self, plan, operator: str = "operator", dt: float = 1.0) -> None:
        """Prove (or adopt) the growth certificate and bind to *plan*."""
        if self.certificate is None:
            from ..verify.absint.growth import prove_growth

            self.certificate = prove_growth(plan.sweeps, operator=operator, dt=dt)
        self._step_gain = (
            self.certificate.step_gain if self.certificate.check() else math.inf
        )
        self._per_step_source = _per_step_source_amplitude(plan)
        if self.micro_keep is None:
            self.micro_keep = 2
        self._ring.clear()
        self._entry.clear()
        self._exit_cache = None
        self._configured = True

    @property
    def amplitude_active(self) -> bool:
        return self._configured and math.isfinite(self._step_gain)

    # -- boundary hooks (RuntimeMonitor) -------------------------------------------
    def tile_entry(self, plan, t0: int, t1: int) -> None:
        """Record entry amplitudes and capture the entry micro-snapshot."""
        start = time.perf_counter()
        funcs = _time_functions(plan)
        if self._exit_cache is not None and self._exit_cache[0] == t0:
            self._entry = dict(self._exit_cache[1])
        else:
            self._entry = {
                name: self._amplitude(func, t0) for name, func in funcs.items()
            }
        from .checkpoint import capture_micro_snapshot

        self._ring = [s for s in self._ring if s.step != t0]
        keep = max(self.micro_keep or 2, 1)
        recycle = None
        if len(self._ring) >= keep:
            # the oldest snapshot is about to fall off the ring: donate its
            # buffers so the capture below is memcpy, not allocation
            recycle = self._ring[0]
            del self._ring[: len(self._ring) - keep + 1]
        snap = capture_micro_snapshot(plan, t0, recycle=recycle)
        self._ring.append(snap)
        self.stats["micro_snapshots"] += 1
        self.stats["micro_snapshot_bytes"] += snap.nbytes()
        self.stats["seconds"] += time.perf_counter() - start

    def tile_check(self, plan, t0: int, t1: int) -> None:
        """Verify the amplitude invariant at the exit boundary *t1*.

        Raises :class:`~repro.errors.SilentCorruptionError` on a violation —
        including a non-finite exit amplitude, which a corrupted value can
        reach by overflowing during propagation within the tile.
        """
        start = time.perf_counter()
        funcs = _time_functions(plan)
        height = max(t1 - t0, 1)
        gain = self._step_gain ** height if self.amplitude_active else math.inf
        source = self._per_step_source * height
        exits: Dict[str, float] = {}
        try:
            for name, func in funcs.items():
                observed = self._amplitude(func, t1)
                exits[name] = observed
                self.stats["checks"] += 1
                entry = self._entry.get(name, 0.0)
                bound = self.slack * gain * (entry + source) + self.floor
                if observed <= bound and math.isfinite(observed):
                    continue
                self.stats["detections"] += 1
                self.events.append(
                    {
                        "kind": "detection",
                        "detector": "growth",
                        "t0": int(t0),
                        "t1": int(t1),
                        "field": name,
                        "bound": float(bound) if math.isfinite(bound) else None,
                        "observed": float(observed)
                        if math.isfinite(observed)
                        else None,
                    }
                )
                raise SilentCorruptionError(
                    f"amplitude invariant violated at tile exit: "
                    f"|{name}| = {observed:.6g} exceeds the certified bound "
                    f"{bound:.6g} (entry {entry:.6g}, gain {gain:.6g}, "
                    f"source {source:.6g})",
                    t=t1 - 1,
                    field=name,
                    bound=float(bound) if math.isfinite(bound) else None,
                    observed=float(observed) if math.isfinite(observed) else None,
                    detector="growth",
                )
            self._exit_cache = (t1, exits)
        finally:
            self.stats["seconds"] += time.perf_counter() - start

    def restore(self, plan, t0: int) -> bool:
        """Restore the entry micro-snapshot of the unit starting at *t0*.

        Returns False when the ring no longer holds it — the caller then
        falls back to the ordinary checkpoint-restart path by letting the
        error propagate.
        """
        snap = next((s for s in self._ring if s.step == t0), None)
        if snap is None:
            self.events.append({"kind": "fallback", "t0": int(t0)})
            return False
        start = time.perf_counter()
        from .checkpoint import restore_micro_snapshot

        restore_micro_snapshot(plan, snap)
        self._exit_cache = None
        self.stats["tiles_reexecuted"] += 1
        self.events.append({"kind": "reexecute", "t0": int(t0)})
        self.stats["seconds"] += time.perf_counter() - start
        return True

    # -- internals -------------------------------------------------------------------
    @staticmethod
    def _amplitude(func, boundary: int) -> float:
        """Max-norm over the live slots at *boundary* (full padded buffers:
        corruption in a halo is corruption too).

        Computed as ``max(max, -min)`` rather than ``abs().max()`` — two
        read-only passes instead of a full-size temporary, which on the hot
        per-tile path is the difference between a measurable and a
        negligible guard.  NaN needs explicit care here: Python's ``max``
        silently drops it (``nan > x`` is False), so a NaN in either extreme
        short-circuits to NaN and lets the boundary check flag it.
        """
        amp = 0.0
        seen = set()
        for k in range(func.time_order):
            idx = (boundary - k) % func.buffers
            if idx in seen:
                continue
            seen.add(idx)
            data = func._data[idx]
            hi = float(data.max())
            lo = float(data.min())
            if math.isnan(hi) or math.isnan(lo):
                return math.nan
            amp = max(amp, hi, -lo)
        return amp

    def describe(self) -> dict:
        """Stats + certificate summary for job metadata / journaling."""
        out = dict(self.stats)
        out["events"] = list(self.events)
        out["amplitude_active"] = self.amplitude_active
        if self.certificate is not None:
            out["step_gain"] = (
                self.certificate.step_gain
                if math.isfinite(self.certificate.step_gain)
                else None
            )
        return out

    def __repr__(self) -> str:
        gain = f"{self._step_gain:.3g}" if self._configured else "unconfigured"
        return (
            f"ABFTGuard(gain={gain}, slack={self.slack}, "
            f"checks={self.stats['checks']}, detections={self.stats['detections']})"
        )
