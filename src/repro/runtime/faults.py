"""Deterministic, seedable fault injection for resilience testing.

A :class:`FaultInjector` is handed to a run (``op.apply(..., faults=...)``)
and consulted by the executors after every sweep instance.  Each
:class:`Fault` is armed once and fires at its programmed ``(t, tile)``:
either *raising* :class:`~repro.errors.InjectedFault` (exercising
checkpoint/restart) or *corrupting* a written buffer with NaN/Inf
(exercising the health guards, which must then attribute the blowup to the
same ``(t, tile)``).

``point`` pins a fault to the tile containing that grid point — without it,
the fault fires at the first instance of timestep ``t`` and corruption
positions are drawn from the injector's seeded RNG, so a given
``(faults, seed)`` pair replays identically.

:func:`break_engine` is the codegen counterpart: a context manager that makes
the fused (or per-equation kernel) compiler raise, exercising the
engine-degradation ladder in :meth:`repro.ir.operator.Operator._bind`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field as dc_field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InjectedFault
from ..execution.evalbox import Box, box_view

__all__ = ["Fault", "FaultInjector", "break_engine", "split_seed", "flip_finite"]

KINDS = ("raise", "nan", "inf", "bitflip")


def split_seed(batch_seed: int, *key: int) -> int:
    """Derive an independent substream seed from one batch seed and a key.

    Built on :class:`numpy.random.SeedSequence` with the key as
    ``spawn_key``, so the derived seed depends only on ``(batch_seed,
    key)`` — never on how many substreams were derived before or in what
    order.  That is what makes chaos runs reproducible regardless of worker
    scheduling: job *i* of a batch draws its faults from
    ``split_seed(batch_seed, i)`` whether it runs first, last or is retried
    on a different worker.
    """
    seq = np.random.SeedSequence(int(batch_seed), spawn_key=tuple(int(k) for k in key))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def flip_finite(value, dtype, rng) -> Tuple[float, int]:
    """Corrupt *value* by rewriting its IEEE-754 exponent field, staying finite.

    Returns ``(corrupted, mask)`` where *mask* is the xor applied to the raw
    bit pattern (a multi-bit exponent upset plus the sign/mantissa left
    intact).  The new exponent is drawn from the top octaves of the format,
    strictly below all-ones — the corrupted value is therefore always finite
    (invisible to the NaN/Inf scan) yet many orders of magnitude above any
    certified amplitude bound, so the ABFT invariant is guaranteed to see
    it.  Single low-order mantissa flips are deliberately *not* modelled:
    they are below both the detection and the numerical-significance
    threshold, so injecting them would just make chaos runs flaky.
    """
    dt = np.dtype(dtype)
    if dt == np.float32:
        itype, mantbits, expbits = np.uint32, 23, 8
    elif dt == np.float64:
        itype, mantbits, expbits = np.uint64, 52, 11
    else:
        raise ValueError(f"flip_finite supports float32/float64, got {dt}")
    raw = int(np.asarray(value, dtype=dt).view(itype))
    exp_all_ones = (1 << expbits) - 1
    # seeded exponent in [all_ones - 64, all_ones - 2]: huge but finite
    new_exp = int(rng.integers(exp_all_ones - 64, exp_all_ones - 1))
    sign_mant = raw & ~(exp_all_ones << mantbits)
    flipped = sign_mant | (new_exp << mantbits)
    corrupted = np.asarray(flipped, dtype=itype).view(dt)[()]
    return dt.type(corrupted), raw ^ flipped


@dataclass
class Fault:
    """One programmed fault.

    Parameters
    ----------
    t:
        Logical timestep at which to fire.
    kind:
        ``"raise"`` aborts the instance with :class:`InjectedFault`;
        ``"nan"``/``"inf"`` poke one non-finite value into the buffer the
        instance just wrote; ``"bitflip"`` silently corrupts one value by
        rewriting its IEEE-754 exponent field — the result stays *finite*,
        so only the ABFT amplitude invariant can catch it.
    field:
        Restrict corruption to the named field (default: the instance's
        first written field).
    point:
        Absolute grid index; the fault only fires on an instance whose box
        contains it, and corruption lands exactly there.
    sweep:
        Restrict to a sweep index.
    """

    t: int
    kind: str = "raise"
    field: Optional[str] = None
    point: Optional[Tuple[int, ...]] = None
    sweep: Optional[int] = None
    message: str = "injected fault"
    armed: bool = dc_field(default=True)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.point is not None:
            self.point = tuple(int(p) for p in self.point)


class FaultInjector:
    """Arms a set of :class:`Fault` objects and fires them deterministically."""

    def __init__(self, faults: Sequence[Fault], seed: int = 0):
        self.faults: List[Fault] = list(faults)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        #: (t, tile, kind, field) of every fault fired, in order
        self.log: List[Tuple] = []
        #: structured detail of every "bitflip" fired: dicts with the
        #: journaled coordinates (t, tile, field, index) plus the xor mask
        #: applied to the IEEE-754 representation and before/after values
        self.flips: List[dict] = []

    @classmethod
    def substream(
        cls, faults: Sequence[Fault], batch_seed: int, job_index: int
    ) -> "FaultInjector":
        """An injector seeded from the *job_index*-th substream of
        *batch_seed* (see :func:`split_seed`): corruption positions replay
        identically for a given ``(batch_seed, job_index)`` no matter when
        or where the job runs."""
        return cls(faults, seed=split_seed(batch_seed, job_index))

    def reset(self) -> None:
        """Re-arm every fault and reset the RNG (exact replay)."""
        for f in self.faults:
            f.armed = True
        self.rng = np.random.default_rng(self.seed)
        self.log.clear()
        self.flips.clear()

    # -- executor hook ---------------------------------------------------------------
    def fire(self, plan, j: int, t: int, box: Box) -> None:
        for f in self.faults:
            if not f.armed or f.t != t:
                continue
            if f.sweep is not None and f.sweep != j:
                continue
            if f.point is not None and not all(
                lo <= p < hi for p, (lo, hi) in zip(f.point, box)
            ):
                continue
            f.armed = False
            if f.kind == "raise":
                self.log.append((t, box, f.kind, None))
                raise InjectedFault(f.message, t=t, tile=box)
            self._corrupt(plan, j, t, box, f)

    def _corrupt(self, plan, j: int, t: int, box: Box, f: Fault) -> None:
        sweep = plan.sweeps[j]
        beq = next(
            (b for b in sweep.beqs if b.lhs.function.name == f.field),
            sweep.beqs[0],
        )
        view = box_view(beq.lhs, t, box, sweep.dim_names)
        if f.point is not None:
            pos = tuple(p - lo for p, (lo, _hi) in zip(f.point, box))
        else:
            pos = tuple(int(self.rng.integers(0, s)) for s in view.shape)
        name = beq.lhs.function.name
        if f.kind == "bitflip":
            before = view[pos]
            corrupted, mask = flip_finite(before, view.dtype, self.rng)
            view[pos] = corrupted
            index = tuple(int(p) + lo for p, (lo, _hi) in zip(pos, box))
            self.flips.append(
                {
                    "t": int(t),
                    "tile": tuple(tuple(b) for b in box),
                    "field": name,
                    "index": index,
                    "mask": int(mask),
                    "before": float(before),
                    "after": float(corrupted),
                }
            )
        else:
            view[pos] = np.nan if f.kind == "nan" else np.inf
        self.log.append((t, box, f.kind, name))

    def __repr__(self) -> str:
        armed = sum(f.armed for f in self.faults)
        return f"FaultInjector({len(self.faults)} fault(s), {armed} armed, seed={self.seed})"


@contextmanager
def break_engine(engine: str = "fused", exc: Optional[Exception] = None):
    """Force the named engine's compiler to raise inside the ``with`` block.

    Patches :func:`repro.ir.pycodegen.compile_sweep` (fused) or
    :func:`~repro.ir.pycodegen.compile_rhs` (per-equation kernels); both are
    looked up at call time by the execution layer, so the patch takes effect
    for every sweep bound while the context is active.
    """
    from ..ir import pycodegen

    target = {"fused": "compile_sweep", "kernel": "compile_rhs"}.get(engine)
    if target is None:
        raise ValueError(f"break_engine supports 'fused' or 'kernel', got {engine!r}")
    original = getattr(pycodegen, target)

    def broken(*args, **kwargs):
        raise exc if exc is not None else RuntimeError(
            f"injected {engine} codegen failure"
        )

    setattr(pycodegen, target, broken)
    try:
        yield
    finally:
        setattr(pycodegen, target, original)
