"""Checkpoint/restart of executing plans.

A snapshot captures everything a schedule mutates: the full circular time
buffers of every :class:`~repro.dsl.functions.TimeFunction` the plan touches
(halo included — resuming mid-run must reproduce halo state bit-for-bit),
the receiver trace arrays, and any in-flight receiver staging rows.  Model
fields, decomposed source wavelets and masks are immutable during a run and
deliberately not stored.

Snapshots are taken at *consistent* points only: timestep boundaries for the
naive and spatially blocked schedules, time-tile boundaries for wavefront
runs (inside a tile, different grid regions sit at different timesteps, so a
mid-tile snapshot would not be a wavefield).  Because time tiles are
arithmetic in ``height`` from ``time_m``, resuming from a tile boundary
replays exactly the remaining tiles of the uninterrupted run — which is what
makes restart *bit-identical*, not merely close.

Two stores are provided: :class:`MemoryCheckpointStore` (default, zero-IO)
and :class:`FileCheckpointStore` (``.npz`` files, survives the process).
"""

from __future__ import annotations

import errno
import os
import zipfile
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..dsl.functions import TimeFunction
from ..errors import CheckpointCorruptError, StorageExhaustedError
from .integrity import digest_path, file_digest, read_digest, write_digest

__all__ = [
    "Snapshot",
    "MicroSnapshot",
    "CheckpointConfig",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "capture_snapshot",
    "restore_snapshot",
    "capture_micro_snapshot",
    "restore_micro_snapshot",
]


@dataclass
class Snapshot:
    """State at a consistent point: ``step`` is the next timestep to execute."""

    step: int
    #: TimeFunction name -> copy of the full padded circular buffer
    fields: Dict[str, np.ndarray]
    #: one entry per receiver executor (plan order): trace array + staging rows
    receivers: List[dict]

    def nbytes(self) -> int:
        total = sum(int(a.nbytes) for a in self.fields.values())
        for rec in self.receivers:
            total += int(rec["output"].nbytes)
            total += sum(int(a.nbytes) for a in rec["staging"].values())
        return total


class CheckpointStore:
    """Interface: hold snapshots, hand back the most recent one."""

    def save(self, snapshot: Snapshot) -> None:
        raise NotImplementedError

    def latest(self) -> Optional[Snapshot]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """In-process snapshot ring; keeps the newest *keep* snapshots."""

    def __init__(self, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = int(keep)
        self._snaps: List[Snapshot] = []

    def save(self, snapshot: Snapshot) -> None:
        self._snaps.append(snapshot)
        del self._snaps[: -self.keep]

    def latest(self) -> Optional[Snapshot]:
        return self._snaps[-1] if self._snaps else None

    def clear(self) -> None:
        self._snaps.clear()

    def __len__(self) -> int:
        return len(self._snaps)


class FileCheckpointStore(CheckpointStore):
    """``.npz`` snapshots under a directory, newest-``step`` wins.

    Array keys are flattened as ``field.<name>``, ``rec<i>.output`` and
    ``rec<i>.staging.<row>``; ``step`` rides along as a 0-d array.

    Writes are crash-safe: the archive is written to a ``.tmp`` sibling,
    fsynced and :func:`os.replace`-d into place, so a snapshot file either
    exists complete or not at all — a worker SIGKILLed mid-save can never
    leave a truncated ``ckpt_*.npz`` behind (external observers, like the
    batch-pool supervisor polling for the first checkpoint, see only
    complete files).  Each snapshot also gets a SHA-256 *sidecar*
    (``<name>.sha256``, see :mod:`repro.runtime.integrity`) so damage that
    atomic rename cannot prevent — bit rot, a torn copy, a crashed
    filesystem replaying a partial extent — is detected on load rather than
    restored into a live wavefield.

    :meth:`latest` validates candidates newest-first and **falls back to
    the previous good snapshot** when the newest is corrupt or fails its
    digest (losing one checkpoint interval of work instead of the whole
    run); only when *every* on-disk snapshot is unusable does it raise a
    structured :class:`~repro.errors.CheckpointCorruptError` — never a raw
    ``zipfile``/numpy exception.  Snapshots written by older code carry no
    sidecar and load as before.
    """

    def __init__(self, directory, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    def _paths(self) -> List[Path]:
        return sorted(self.directory.glob("ckpt_*.npz"))

    def save(self, snapshot: Snapshot) -> None:
        arrays: Dict[str, np.ndarray] = {"step": np.int64(snapshot.step)}
        for name, buf in snapshot.fields.items():
            arrays[f"field.{name}"] = buf
        for i, rec in enumerate(snapshot.receivers):
            arrays[f"rec{i}.output"] = rec["output"]
            for row, stage in rec["staging"].items():
                arrays[f"rec{i}.staging.{row}"] = stage
        path = self.directory / f"ckpt_{snapshot.step:010d}.npz"
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            write_digest(path)
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            # the disk is full, not the snapshot corrupt: surface a
            # structured error the monitor can react to (suspend the
            # cadence) instead of crashing the run mid-timestep
            tmp.unlink(missing_ok=True)
            raise StorageExhaustedError(
                f"no space left on device while saving checkpoint {path.name}",
                path=str(path),
                op="checkpoint_save",
            ) from exc
        for old in self._paths()[: -self.keep]:
            old.unlink()
            digest_path(old).unlink(missing_ok=True)
        for stale in self.directory.glob("ckpt_*.npz*.tmp"):
            stale.unlink(missing_ok=True)

    def latest(self) -> Optional[Snapshot]:
        """Newest *usable* snapshot: candidates are validated newest-first
        (digest sidecar, then structure) and a corrupt one falls back to the
        previous good one.  Raises :class:`CheckpointCorruptError` (for the
        newest failure) only when snapshots exist but none is usable."""
        paths = self._paths()
        if not paths:
            return None
        first_error: Optional[CheckpointCorruptError] = None
        for path in reversed(paths):
            try:
                return self._load(path)
            except CheckpointCorruptError as exc:
                if first_error is None:
                    first_error = exc
        raise first_error

    def _load(self, path: Path) -> Snapshot:
        recorded = read_digest(path)
        if recorded is not None and file_digest(path) != recorded:
            raise CheckpointCorruptError(
                f"checkpoint {path.name} fails its SHA-256 integrity check",
                path=str(path),
                reason="digest mismatch (torn write or on-disk damage)",
            )
        try:
            with np.load(path) as data:
                if "step" not in data.files:
                    raise KeyError("snapshot lacks the 'step' entry")
                fields: Dict[str, np.ndarray] = {}
                receivers: Dict[int, dict] = {}
                for key in data.files:
                    if key == "step":
                        continue
                    if key.startswith("field."):
                        fields[key[len("field."):]] = data[key]
                        continue
                    head, _, tail = key.partition(".")
                    idx = int(head[len("rec"):])
                    entry = receivers.setdefault(idx, {"output": None, "staging": {}})
                    if tail == "output":
                        entry["output"] = data[key]
                    else:
                        entry["staging"][int(tail.split(".")[-1])] = data[key]
                step = int(data["step"])
            for idx, entry in receivers.items():
                if entry["output"] is None:
                    raise KeyError(f"receiver {idx} snapshot lacks its output array")
        except (zipfile.BadZipFile, OSError, EOFError, KeyError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path.name} is corrupt or truncated",
                path=str(path),
                reason=f"{type(exc).__name__}: {exc}",
            ) from exc
        return Snapshot(
            step=step,
            fields=fields,
            receivers=[receivers[i] for i in sorted(receivers)],
        )

    def clear(self) -> None:
        for path in self._paths():
            path.unlink()
            digest_path(path).unlink(missing_ok=True)
        for stale in self.directory.glob("ckpt_*.npz*.tmp"):
            stale.unlink(missing_ok=True)


@dataclass
class CheckpointConfig:
    """How a run checkpoints and whether it resumes.

    Parameters
    ----------
    every:
        Target number of timesteps between snapshots.  Wavefront runs round
        up to the next time-tile boundary (the first consistent point).
    store:
        Where snapshots live; defaults to a fresh in-memory store.
    resume:
        When True and the store holds a snapshot whose ``step`` lies inside
        the requested range, the run restores it and continues from there
        instead of starting at ``time_m``.
    micro_keep:
        Depth of the in-memory ring of tile-entry *micro*-snapshots the
        ABFT guard keeps (see :class:`repro.runtime.abft.ABFTGuard`): only
        the live circular-buffer slots plus receiver state, never written
        to disk.  Independent of ``every`` — micro-snapshots are captured
        at every containment-unit boundary while the guard is active.
    """

    every: int = 8
    store: CheckpointStore = dc_field(default_factory=MemoryCheckpointStore)
    resume: bool = False
    micro_keep: int = 2

    def __post_init__(self):
        if self.every < 1:
            raise ValueError("checkpoint cadence must be >= 1 timestep")
        if self.micro_keep < 1:
            raise ValueError("micro-snapshot ring depth must be >= 1")


def _plan_time_functions(plan) -> Dict[str, TimeFunction]:
    """Every TimeFunction a plan reads or writes, keyed by name."""
    funcs: Dict[str, TimeFunction] = {}

    def add(func):
        if isinstance(func, TimeFunction):
            funcs.setdefault(func.name, func)

    for sweep in plan.sweeps:
        for beq in sweep.beqs:
            add(beq.lhs.function)
            for access in beq.reads:
                add(access.function)
    for lst in plan.injections.values():
        for op in lst:
            add(op.field)
    for lst in plan.receivers.values():
        for op in lst:
            add(op.field)
    return funcs


def _plan_receiver_executors(plan) -> list:
    """Receiver executors in deterministic (sweep index, position) order."""
    out = []
    for j in sorted(plan.receivers):
        out.extend(plan.receivers[j])
    return out


def _receiver_output(rec) -> np.ndarray:
    # AlignedReceiver exposes .output; RawInterpolation writes .data in place
    return rec.output if hasattr(rec, "output") else rec.data


def capture_snapshot(plan, step: int) -> Snapshot:
    """Copy the mutable state of *plan* at the consistent point *step*."""
    fields = {
        name: func.data_with_halo.copy()
        for name, func in _plan_time_functions(plan).items()
    }
    receivers = []
    for rec in _plan_receiver_executors(plan):
        staging = getattr(rec, "_staging", {})
        receivers.append(
            {
                "output": _receiver_output(rec).copy(),
                "staging": {row: arr.copy() for row, arr in staging.items()},
            }
        )
    return Snapshot(step=int(step), fields=fields, receivers=receivers)


def restore_snapshot(plan, snapshot: Snapshot) -> int:
    """Write *snapshot* back into *plan*'s live buffers; return the resume step.

    Buffers are filled in place (never reallocated) so cached views held by
    the fused engine stay valid.
    """
    funcs = _plan_time_functions(plan)
    for name, saved in snapshot.fields.items():
        func = funcs.get(name)
        if func is None:
            raise KeyError(f"snapshot field {name!r} not present in the plan")
        func.data_with_halo[...] = saved
    executors = _plan_receiver_executors(plan)
    if len(executors) != len(snapshot.receivers):
        raise ValueError(
            f"snapshot holds {len(snapshot.receivers)} receiver state(s), "
            f"plan has {len(executors)}"
        )
    for rec, saved in zip(executors, snapshot.receivers):
        _receiver_output(rec)[...] = saved["output"]
        if hasattr(rec, "_staging"):
            rec._staging = {row: arr.copy() for row, arr in saved["staging"].items()}
    return snapshot.step


# -- tile-entry micro-snapshots (ABFT containment) ---------------------------------


@dataclass
class MicroSnapshot:
    """Entry state of one containment unit: only the *live* buffer slots.

    A full :class:`Snapshot` copies every circular-buffer slot of every
    TimeFunction; re-executing the tile ``[step, step + h)`` only needs the
    ``time_order`` slots its first timestep reads — every other slot is
    rewritten by the tile before anything reads it (``time_order`` saved
    slots plus at least one written slot cover the whole ring).  Together
    with the receiver traces and in-flight staging rows, that is the exact
    state tile re-execution must start from to be bit-identical, at
    ``time_order / (time_order + 1)`` of a full snapshot's field bytes and
    zero disk traffic — cheap enough to take at *every* tile boundary.
    """

    step: int
    #: TimeFunction name -> {slot index -> copy of that padded slot}
    slots: Dict[str, Dict[int, np.ndarray]]
    receivers: List[dict]

    def nbytes(self) -> int:
        total = 0
        for keep in self.slots.values():
            total += sum(int(a.nbytes) for a in keep.values())
        for rec in self.receivers:
            total += int(rec["output"].nbytes)
            total += sum(int(a.nbytes) for a in rec["staging"].values())
        return total


def capture_micro_snapshot(
    plan, step: int, recycle: Optional[MicroSnapshot] = None
) -> MicroSnapshot:
    """Copy the live entry state of the containment unit starting at *step*.

    *recycle* donates the buffers of a retired snapshot (same plan, evicted
    from the ABFT guard's ring): matching slots are overwritten in place via
    ``np.copyto`` instead of freshly allocated, so the steady-state per-tile
    cost is pure memcpy — no page-faulting new large allocations on every
    containment-unit boundary.
    """
    slots: Dict[str, Dict[int, np.ndarray]] = {}
    for name, func in _plan_time_functions(plan).items():
        keep: Dict[int, np.ndarray] = {}
        donors = list((recycle.slots.get(name) or {}).values()) if recycle else []
        for k in range(func.time_order):
            idx = (step - k) % func.buffers
            if idx in keep:
                continue
            src = func._data[idx]
            buf = None
            while donors:
                cand = donors.pop()
                if cand.shape == src.shape and cand.dtype == src.dtype:
                    buf = cand
                    break
            if buf is None:
                keep[idx] = src.copy()
            else:
                np.copyto(buf, src)
                keep[idx] = buf
        slots[name] = keep
    receivers = []
    for rec in _plan_receiver_executors(plan):
        staging = getattr(rec, "_staging", {})
        receivers.append(
            {
                "output": _receiver_output(rec).copy(),
                "staging": {row: arr.copy() for row, arr in staging.items()},
            }
        )
    return MicroSnapshot(step=int(step), slots=slots, receivers=receivers)


def restore_micro_snapshot(plan, snapshot: MicroSnapshot) -> int:
    """Write a micro-snapshot back in place; return the re-execution step."""
    funcs = _plan_time_functions(plan)
    for name, keep in snapshot.slots.items():
        func = funcs.get(name)
        if func is None:
            raise KeyError(f"micro-snapshot field {name!r} not present in the plan")
        for idx, arr in keep.items():
            func._data[idx][...] = arr
    executors = _plan_receiver_executors(plan)
    if len(executors) != len(snapshot.receivers):
        raise ValueError(
            f"micro-snapshot holds {len(snapshot.receivers)} receiver state(s), "
            f"plan has {len(executors)}"
        )
    for rec, saved in zip(executors, snapshot.receivers):
        _receiver_output(rec)[...] = saved["output"]
        if hasattr(rec, "_staging"):
            rec._staging = {row: arr.copy() for row, arr in saved["staging"].items()}
    return snapshot.step
