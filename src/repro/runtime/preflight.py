"""Pre-flight validation: surface failures before timestep 0.

Long temporally blocked runs die most painfully when a bad input only
manifests thousands of sweeps in.  These checks front-load the three classes
of avoidable aborts:

* **Stability** — ``dt`` against the model's CFL-critical timestep
  (:func:`check_cfl`, raising or warning with
  :class:`~repro.errors.StabilityViolation` /
  :class:`~repro.errors.StabilityWarning`).
* **Geometry** — batch validation of every source/receiver coordinate
  against the physical domain (:func:`check_coordinates`, delegating to the
  single implementation in :mod:`repro.dsl.interpolation`).
* **Structure** — shape/consistency of the precomputed sparse structures:
  the binary mask ``SM``, the id map ``SID``, the compressed ``nnz``/
  ``Sp_SID`` pair and the decomposed wavelet matrix ``src_dcmp``
  (:func:`check_masks`, :func:`check_source`, :func:`check_receiver`).

:func:`validate_plan` runs the structural checks over a bound
:class:`~repro.execution.executors.ExecutionPlan`; mask checks are memoised
per-masks-object, so the per-``apply`` cost after the first call is a few
attribute reads.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..errors import PlanValidationError, StabilityViolation, StabilityWarning
from ..dsl.interpolation import validate_coordinates

__all__ = [
    "check_cfl",
    "check_coordinates",
    "check_masks",
    "check_source",
    "check_receiver",
    "validate_plan",
]


def check_cfl(dt: float, model, kind: str = "acoustic", policy: str = "raise", cfl=None):
    """Validate *dt* against ``model.critical_dt(kind)``.

    ``policy`` is ``"raise"`` (pre-flight hard failure) or ``"warn"`` (emit a
    :class:`StabilityWarning` and continue — the default in
    ``Propagator.forward``, which must keep running deliberately unstable
    experiments).  Returns the critical dt.
    """
    if policy not in ("raise", "warn"):
        raise ValueError(f"unknown CFL policy {policy!r}; expected 'raise' or 'warn'")
    try:
        return model.validate_dt(dt, kind=kind, cfl=cfl)
    except StabilityViolation as err:
        if policy == "raise":
            raise
        warnings.warn(StabilityWarning(str(err)), stacklevel=2)
        return err.context.get("critical")


def check_coordinates(sparse_fn) -> None:
    """Batch-validate a sparse function's points against its grid's domain."""
    validate_coordinates(sparse_fn.coordinates, sparse_fn.grid, name=sparse_fn.name)


def check_masks(masks) -> None:
    """SM/SID/nnz/Sp_SID consistency; memoised per masks object."""
    if getattr(masks, "_preflight_ok", False):
        return
    grid = masks.grid
    npts = masks.npts
    if masks.points.shape != (npts, grid.ndim):
        raise PlanValidationError(
            f"affected-point table has shape {masks.points.shape}, "
            f"expected ({npts}, {grid.ndim})"
        )
    if masks.sm.shape != grid.shape or masks.sid.shape != grid.shape:
        raise PlanValidationError(
            f"SM/SID shapes {masks.sm.shape}/{masks.sid.shape} do not match "
            f"the grid shape {grid.shape}"
        )
    n_sm = int(np.count_nonzero(masks.sm))
    if n_sm != npts:
        raise PlanValidationError(
            f"binary source mask marks {n_sm} point(s) but the id map defines {npts}"
        )
    n_sid = int(np.count_nonzero(masks.sid >= 0))
    if n_sid != npts:
        raise PlanValidationError(
            f"source-id map assigns {n_sid} id(s) but the mask defines {npts} point(s)"
        )
    if masks.nnz.shape != grid.shape[:-1]:
        raise PlanValidationError(
            f"nnz mask shape {masks.nnz.shape} does not match pencil shape "
            f"{grid.shape[:-1]}"
        )
    if int(masks.nnz.sum()) != npts:
        raise PlanValidationError(
            f"compressed nnz counts sum to {int(masks.nnz.sum())}, expected {npts}"
        )
    if masks.sp_sid.shape != masks.nnz.shape + (masks.max_nnz,):
        raise PlanValidationError(
            f"Sp_SID shape {masks.sp_sid.shape} inconsistent with nnz shape "
            f"{masks.nnz.shape} and max_nnz {masks.max_nnz}"
        )
    masks._preflight_ok = True


def check_source(dsrc) -> None:
    """Decomposed-source consistency: ``src_dcmp`` must be (nt, npts)."""
    check_masks(dsrc.masks)
    if dsrc.data.ndim != 2 or dsrc.data.shape[1] != dsrc.masks.npts:
        raise PlanValidationError(
            f"decomposed source wavelets have shape {dsrc.data.shape}, expected "
            f"(nt, {dsrc.masks.npts})",
            field=dsrc.field_name,
        )


def check_receiver(drec) -> None:
    """Decomposed-receiver consistency: weight matrix columns == npts."""
    check_masks(drec.masks)
    expected_cols = max(drec.masks.npts, 1)
    if drec.weights.shape[1] != expected_cols:
        raise PlanValidationError(
            f"receiver weight matrix has {drec.weights.shape[1]} column(s), "
            f"expected {expected_cols}",
            field=drec.field_name,
        )


def validate_plan(plan) -> None:
    """Structural pre-flight of a bound plan's precomputed sparse operators."""
    for lst in plan.injections.values():
        for op in lst:
            if hasattr(op, "dsrc"):
                check_source(op.dsrc)
    for lst in plan.receivers.values():
        for op in lst:
            if hasattr(op, "drec"):
                check_receiver(op.drec)
                if op.output.shape[1] != op.drec.weights.shape[0]:
                    raise PlanValidationError(
                        f"receiver trace array holds {op.output.shape[1]} "
                        f"trace(s) but the weight matrix reconstructs "
                        f"{op.drec.weights.shape[0]}",
                        field=op.drec.field_name,
                    )
