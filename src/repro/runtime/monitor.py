"""The runtime monitor: one object the executors consult during a run.

Bundles the three optional resilience facilities — health guards, checkpoint
/restart and fault injection — behind the narrow hook surface the executors
call:

* :meth:`begin` — once per run, before the first instance; restores the
  latest snapshot when the checkpoint config asks to resume and returns the
  (possibly advanced) start timestep.
* :meth:`after_instance` — after every executed sweep instance ``(j, t,
  box)``: fires due faults first (so a cadence-1 guard attributes the
  corruption to the exact instance), then ticks the health guard.
* :meth:`after_step` — naive/spatial schedules, after timestep ``t``
  completed (stencil + sparse + receiver finalize): ABFT invariant check,
  then checkpoint cadence (never snapshot unverified state).
* :meth:`after_tile` — wavefront schedules, after a full time tile
  ``[t0, t1)``: the only consistent snapshot points of a tiled run.
* :meth:`tile_entry` / :meth:`contain` — the ABFT containment pair: record
  entry state before a containment unit, and on a detected corruption
  restore its micro-snapshot so the executor re-executes just that unit.

Executors keep a single ``monitor is not None`` branch on their hot paths;
with no facility configured no monitor is built at all.

A checkpoint save that hits storage exhaustion (ENOSPC) does not kill the
run: the monitor suspends the checkpoint cadence, remembers the condition on
:attr:`storage_degraded` and lets the run finish unprotected — losing future
restart granularity is strictly better than losing the job.
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageExhaustedError
from .checkpoint import CheckpointConfig, capture_snapshot, restore_snapshot
from .faults import FaultInjector
from .health import HealthGuard

__all__ = ["RuntimeMonitor"]


class RuntimeMonitor:
    def __init__(
        self,
        health: Optional[HealthGuard] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        faults: Optional[FaultInjector] = None,
        telemetry=None,
        abft=None,
    ):
        self.health = health
        self.checkpoint = checkpoint
        self.faults = faults
        #: optional :class:`~repro.runtime.abft.ABFTGuard`
        self.abft = abft
        #: the :class:`~repro.errors.StorageExhaustedError` that suspended
        #: checkpointing, or None while storage is healthy
        self.storage_degraded: Optional[StorageExhaustedError] = None
        #: optional :class:`~repro.telemetry.Telemetry` buffer; checkpoint
        #: saves and restores emit events/counters into it.  Assigned by
        #: ``run_schedule`` when both layers are attached to the same run.
        self.telemetry = telemetry
        self._last_saved: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------------------
    def begin(self, plan, time_m: int, time_M: int) -> int:
        """Restore-if-resuming; returns the timestep the run starts from."""
        self._last_saved = time_m
        cfg = self.checkpoint
        if cfg is None or not cfg.resume:
            return time_m
        snapshot = cfg.store.latest()
        if snapshot is None or not time_m <= snapshot.step <= time_M:
            return time_m
        start = restore_snapshot(plan, snapshot)
        self._last_saved = start
        if self.telemetry is not None:
            self.telemetry.counters.add("checkpoint_restores")
            self.telemetry.event(
                "checkpoint.restore", phase="checkpoint+guard", step=start
            )
        return start

    # -- executor hooks ----------------------------------------------------------------
    def after_instance(self, plan, j: int, t: int, box) -> None:
        if box is None:
            box = tuple((0, s) for s in plan.grid.shape)
        if self.faults is not None:
            if self.telemetry is None:
                self.faults.fire(plan, j, t, box)
            else:
                fired = len(self.faults.log)
                try:
                    self.faults.fire(plan, j, t, box)
                finally:
                    # a kind="raise" fault logs then raises: record it too
                    for ft, fbox, kind, field in self.faults.log[fired:]:
                        self.telemetry.counters.add("faults_fired")
                        self.telemetry.event(
                            "fault.fired", phase="checkpoint+guard",
                            t=ft, kind=kind, field=field,
                        )
        if self.health is not None:
            self.health.on_instance(plan.sweeps[j], t, box)

    def after_step(self, plan, t: int) -> None:
        if self.abft is not None:
            self.abft.tile_check(plan, t, t + 1)
        self._maybe_save(plan, t + 1)

    def after_tile(self, plan, t0: int, t1: int) -> None:
        if self.abft is not None:
            self.abft.tile_check(plan, t0, t1)
        self._maybe_save(plan, t1)

    # -- ABFT containment --------------------------------------------------------------
    def tile_entry(self, plan, t0: int, t1: int) -> None:
        """Entering the containment unit ``[t0, t1)``: record entry
        amplitudes and capture the micro-snapshot re-execution restores."""
        if self.abft is not None:
            self.abft.tile_entry(plan, t0, t1)

    def contain(self, plan, t0: int, attempt: int) -> bool:
        """Try to contain a detected corruption to the unit entered at *t0*.

        Returns True when the entry micro-snapshot was restored and the
        executor should re-execute the unit (*attempt* counts re-executions
        of this unit, starting at 1); False hands the error back to the
        checkpoint-restart layer.
        """
        guard = self.abft
        if guard is None or attempt > guard.max_reexecutions:
            return False
        restored = guard.restore(plan, t0)
        if restored and self.telemetry is not None:
            self.telemetry.counters.add("abft_reexecutions")
            self.telemetry.event(
                "abft.reexecute", phase="checkpoint+guard", step=t0
            )
        return restored

    # -- checkpointing -----------------------------------------------------------------
    def _maybe_save(self, plan, step: int) -> None:
        cfg = self.checkpoint
        if cfg is None:
            return
        if step - self._last_saved >= cfg.every:
            snapshot = capture_snapshot(plan, step)
            try:
                cfg.store.save(snapshot)
            except StorageExhaustedError as exc:
                # degraded, not dead: drop the cadence and let the run finish
                self.checkpoint = None
                self.storage_degraded = exc
                if self.telemetry is not None:
                    self.telemetry.counters.add("checkpoint_storage_degraded")
                    self.telemetry.event(
                        "checkpoint.storage_degraded",
                        phase="checkpoint+guard",
                        step=step,
                        path=getattr(exc, "context", {}).get("path"),
                    )
                return
            self._last_saved = step
            if self.telemetry is not None:
                self.telemetry.counters.add("checkpoint_saves")
                self.telemetry.event(
                    "checkpoint.save",
                    phase="checkpoint+guard",
                    step=step,
                    bytes=snapshot.nbytes(),
                )
