"""The runtime monitor: one object the executors consult during a run.

Bundles the three optional resilience facilities — health guards, checkpoint
/restart and fault injection — behind the narrow hook surface the executors
call:

* :meth:`begin` — once per run, before the first instance; restores the
  latest snapshot when the checkpoint config asks to resume and returns the
  (possibly advanced) start timestep.
* :meth:`after_instance` — after every executed sweep instance ``(j, t,
  box)``: fires due faults first (so a cadence-1 guard attributes the
  corruption to the exact instance), then ticks the health guard.
* :meth:`after_step` — naive/spatial schedules, after timestep ``t``
  completed (stencil + sparse + receiver finalize): checkpoint cadence.
* :meth:`after_tile` — wavefront schedules, after a full time tile
  ``[t0, t1)``: the only consistent snapshot points of a tiled run.

Executors keep a single ``monitor is not None`` branch on their hot paths;
with no facility configured no monitor is built at all.
"""

from __future__ import annotations

from typing import Optional

from .checkpoint import CheckpointConfig, capture_snapshot, restore_snapshot
from .faults import FaultInjector
from .health import HealthGuard

__all__ = ["RuntimeMonitor"]


class RuntimeMonitor:
    def __init__(
        self,
        health: Optional[HealthGuard] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        faults: Optional[FaultInjector] = None,
        telemetry=None,
    ):
        self.health = health
        self.checkpoint = checkpoint
        self.faults = faults
        #: optional :class:`~repro.telemetry.Telemetry` buffer; checkpoint
        #: saves and restores emit events/counters into it.  Assigned by
        #: ``run_schedule`` when both layers are attached to the same run.
        self.telemetry = telemetry
        self._last_saved: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------------------
    def begin(self, plan, time_m: int, time_M: int) -> int:
        """Restore-if-resuming; returns the timestep the run starts from."""
        self._last_saved = time_m
        cfg = self.checkpoint
        if cfg is None or not cfg.resume:
            return time_m
        snapshot = cfg.store.latest()
        if snapshot is None or not time_m <= snapshot.step <= time_M:
            return time_m
        start = restore_snapshot(plan, snapshot)
        self._last_saved = start
        if self.telemetry is not None:
            self.telemetry.counters.add("checkpoint_restores")
            self.telemetry.event(
                "checkpoint.restore", phase="checkpoint+guard", step=start
            )
        return start

    # -- executor hooks ----------------------------------------------------------------
    def after_instance(self, plan, j: int, t: int, box) -> None:
        if box is None:
            box = tuple((0, s) for s in plan.grid.shape)
        if self.faults is not None:
            if self.telemetry is None:
                self.faults.fire(plan, j, t, box)
            else:
                fired = len(self.faults.log)
                try:
                    self.faults.fire(plan, j, t, box)
                finally:
                    # a kind="raise" fault logs then raises: record it too
                    for ft, fbox, kind, field in self.faults.log[fired:]:
                        self.telemetry.counters.add("faults_fired")
                        self.telemetry.event(
                            "fault.fired", phase="checkpoint+guard",
                            t=ft, kind=kind, field=field,
                        )
        if self.health is not None:
            self.health.on_instance(plan.sweeps[j], t, box)

    def after_step(self, plan, t: int) -> None:
        self._maybe_save(plan, t + 1)

    def after_tile(self, plan, t0: int, t1: int) -> None:
        self._maybe_save(plan, t1)

    # -- checkpointing -----------------------------------------------------------------
    def _maybe_save(self, plan, step: int) -> None:
        cfg = self.checkpoint
        if cfg is None:
            return
        if step - self._last_saved >= cfg.every:
            snapshot = capture_snapshot(plan, step)
            cfg.store.save(snapshot)
            self._last_saved = step
            if self.telemetry is not None:
                self.telemetry.counters.add("checkpoint_saves")
                self.telemetry.event(
                    "checkpoint.save",
                    phase="checkpoint+guard",
                    step=step,
                    bytes=snapshot.nbytes(),
                )
