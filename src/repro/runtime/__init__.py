"""Runtime resilience layer: health guards, checkpoint/restart, fault injection.

Everything here is opt-in and threaded through the execution stack via
``Operator.apply`` / ``Propagator.forward`` / ``run_schedule`` keyword
arguments::

    from repro.runtime import CheckpointConfig, FaultInjector, Fault, HealthGuard

    op.apply(time_M=nt, dt=dt, schedule=WavefrontSchedule(),
             health=HealthGuard(check_every=16),
             checkpoint=CheckpointConfig(every=32),
             faults=FaultInjector([Fault(t=100, kind="nan")], seed=7),
             abft=ABFTGuard())

See also :mod:`repro.errors` for the structured error taxonomy and
:mod:`repro.runtime.preflight` for the validation that runs before
timestep 0.
"""

from .abft import ABFTGuard, amplitude_ceiling, array_checksum
from .checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
    MicroSnapshot,
    Snapshot,
    capture_micro_snapshot,
    capture_snapshot,
    restore_micro_snapshot,
    restore_snapshot,
)
from .faults import Fault, FaultInjector, break_engine, flip_finite, split_seed
from .health import DEFAULT_CHECK_EVERY, HealthGuard
from .monitor import RuntimeMonitor
from .preflight import (
    check_cfl,
    check_coordinates,
    check_masks,
    check_receiver,
    check_source,
    validate_plan,
)

__all__ = [
    "HealthGuard",
    "DEFAULT_CHECK_EVERY",
    "ABFTGuard",
    "amplitude_ceiling",
    "array_checksum",
    "CheckpointConfig",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "Snapshot",
    "MicroSnapshot",
    "capture_snapshot",
    "restore_snapshot",
    "capture_micro_snapshot",
    "restore_micro_snapshot",
    "Fault",
    "FaultInjector",
    "break_engine",
    "flip_finite",
    "split_seed",
    "RuntimeMonitor",
    "check_cfl",
    "check_coordinates",
    "check_masks",
    "check_source",
    "check_receiver",
    "validate_plan",
]
