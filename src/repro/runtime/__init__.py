"""Runtime resilience layer: health guards, checkpoint/restart, fault injection.

Everything here is opt-in and threaded through the execution stack via
``Operator.apply`` / ``Propagator.forward`` / ``run_schedule`` keyword
arguments::

    from repro.runtime import CheckpointConfig, FaultInjector, Fault, HealthGuard

    op.apply(time_M=nt, dt=dt, schedule=WavefrontSchedule(),
             health=HealthGuard(check_every=16),
             checkpoint=CheckpointConfig(every=32),
             faults=FaultInjector([Fault(t=100, kind="nan")], seed=7))

See also :mod:`repro.errors` for the structured error taxonomy and
:mod:`repro.runtime.preflight` for the validation that runs before
timestep 0.
"""

from .checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
    Snapshot,
    capture_snapshot,
    restore_snapshot,
)
from .faults import Fault, FaultInjector, break_engine, split_seed
from .health import DEFAULT_CHECK_EVERY, HealthGuard
from .monitor import RuntimeMonitor
from .preflight import (
    check_cfl,
    check_coordinates,
    check_masks,
    check_receiver,
    check_source,
    validate_plan,
)

__all__ = [
    "HealthGuard",
    "DEFAULT_CHECK_EVERY",
    "CheckpointConfig",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "Snapshot",
    "capture_snapshot",
    "restore_snapshot",
    "Fault",
    "FaultInjector",
    "break_engine",
    "split_seed",
    "RuntimeMonitor",
    "check_cfl",
    "check_coordinates",
    "check_masks",
    "check_source",
    "check_receiver",
    "validate_plan",
]
