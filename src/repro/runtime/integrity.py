"""SHA-256 integrity trailers for on-disk artifacts.

The durability layer trusts three kinds of files across a supervisor crash:
checkpoint snapshots (``ckpt_*.npz``), durable job results (``result.npz``)
and the write-ahead batch journal.  The journal embeds a digest in every
record; the binary artifacts carry theirs as an atomic *sidecar* file
(``<name>.sha256``) written after the artifact itself is in place.

The ordering makes torn writes fail safe in both directions: a crash after
the artifact but before the sidecar leaves a file that merely *cannot be
verified* (treated as not durable — recomputed, never trusted), and a crash
mid-sidecar leaves a ``.tmp`` that is invisible to readers.  A digest
mismatch means the artifact itself was torn or damaged and must not be
trusted; callers fall back to the previous good artifact or recompute.

Legacy artifacts written before this layer have no sidecar;
:func:`verify_digest` accepts them unless ``require=True`` — resume-time
decisions (skip a completed job?) require the digest, load-time decisions
(is this checkpoint usable?) merely refuse a *mismatching* one.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

__all__ = [
    "DIGEST_SUFFIX",
    "file_digest",
    "digest_path",
    "write_digest",
    "read_digest",
    "verify_digest",
]

DIGEST_SUFFIX = ".sha256"

_CHUNK = 1 << 20


def file_digest(path) -> str:
    """Hex SHA-256 of the file's bytes (streamed, constant memory)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def digest_path(path) -> Path:
    """The sidecar path of *path* (``<name>.sha256``)."""
    path = Path(path)
    return path.with_name(path.name + DIGEST_SUFFIX)


def write_digest(path) -> str:
    """Compute and persist the sidecar digest of *path* (atomic, fsynced).

    Returns the hex digest.  Written via temp sibling + :func:`os.replace`
    so a crash mid-write can never leave a torn sidecar — only a missing
    one, which verification treats as "not durable", never as "valid".
    """
    digest = file_digest(path)
    sidecar = digest_path(path)
    tmp = sidecar.with_name(sidecar.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(digest + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, sidecar)
    return digest


def read_digest(path) -> Optional[str]:
    """The recorded sidecar digest of *path*, or None if absent/unreadable."""
    try:
        text = digest_path(path).read_text().strip()
    except OSError:
        return None
    return text or None


def verify_digest(path, require: bool = False) -> bool:
    """True iff *path* exists and matches its sidecar digest.

    A missing sidecar passes unless ``require=True`` (legacy artifacts have
    none); a present-but-mismatching sidecar always fails — the artifact was
    torn or damaged and must not be trusted.
    """
    path = Path(path)
    if not path.exists():
        return False
    recorded = read_digest(path)
    if recorded is None:
        return not require
    return file_digest(path) == recorded
