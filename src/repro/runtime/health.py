"""Numerical health guards: periodic NaN/Inf scans of written tile views.

A :class:`HealthGuard` is attached to a run (``op.apply(..., health=...)`` or
``Propagator.forward(..., health=...)``) and ticked by the executors after
every sweep instance — ``(t, box)`` for blocked schedules, the full grid for
the naive one.  Every ``check_every`` ticks it scans the buffers *written* by
that instance (the sweep's left-hand sides at their write timestep, i.e.
exactly the data the instance produced, injections included) and raises
:class:`~repro.errors.NumericalBlowup` with the first offending ``(t, tile)``
and grid point.

Scanning only the written views keeps the cost proportional to the work just
done: one ``np.isfinite`` reduction per written field per check, amortised by
the cadence.  ``check_every=1`` checks every instance (exact attribution,
used by the fault-injection tests); the default of 16 keeps the overhead on
the wavefront acoustic benchmark under a couple of percent.  Guards default
to *off* — benchmarks and production-tuned runs opt in explicitly.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import NumericalBlowup
from ..execution.evalbox import Box, box_view

__all__ = ["HealthGuard", "DEFAULT_CHECK_EVERY"]

#: default scan cadence, in sweep instances
DEFAULT_CHECK_EVERY = 16


class HealthGuard:
    """Cadenced NaN/Inf (and optional amplitude) scanning of written views.

    Parameters
    ----------
    check_every:
        Number of sweep instances between scans (>= 1).
    max_abs:
        Optional amplitude bound: values with ``|v| > max_abs`` count as a
        blowup even while still finite, catching divergence before it
        saturates to Inf.  When omitted, ``Operator.apply`` derives one from
        the operator's certified CFL amplification bound and the plan's
        total source amplitude (:func:`repro.runtime.abft.amplitude_ceiling`)
        — pass a value explicitly to override the derivation.
    """

    def __init__(self, check_every: int = DEFAULT_CHECK_EVERY, max_abs: Optional[float] = None):
        if int(check_every) < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.check_every = int(check_every)
        self.max_abs = float(max_abs) if max_abs is not None else None
        #: True when max_abs was not set explicitly: the operator then fills
        #: in (and re-derives per apply) the CFL-derived ceiling
        self.max_abs_derived = max_abs is None
        self._tick = 0
        self.stats = {"ticks": 0, "checks": 0}

    def on_instance(self, sweep, t: int, box: Box) -> None:
        """Executor hook: count the instance, scan when the cadence is due."""
        self._tick += 1
        self.stats["ticks"] += 1
        if self._tick % self.check_every:
            return
        self.check(sweep, t, box)

    def check(self, sweep, t: int, box: Box) -> None:
        """Scan the views *sweep* wrote at ``(t, box)``; raise on blowup."""
        self.stats["checks"] += 1
        for beq in sweep.beqs:
            view = box_view(beq.lhs, t, box, sweep.dim_names)
            if view.size == 0:
                continue
            # healthy fast path: two allocation-free reductions.  NaN
            # propagates through ndarray.max/min, ±Inf fails isfinite, and
            # the amplitude ceiling bounds both extremes — only a genuine
            # violation pays for the attribution mask below.
            hi = float(view.max())
            lo = float(view.min())
            limit = self.max_abs if self.max_abs is not None else math.inf
            if math.isfinite(hi) and math.isfinite(lo) and hi <= limit and -lo <= limit:
                continue
            bad = ~np.isfinite(view)
            if self.max_abs is not None:
                bad |= np.abs(view) > self.max_abs
            name = beq.lhs.function.name
            where = np.argwhere(bad)[0]
            point = tuple(int(lo + o) for (lo, _hi), o in zip(box, where))
            raise NumericalBlowup(
                f"non-finite wavefield values detected at grid point {point}",
                t=t,
                tile=box,
                field=name,
                point=point,
                count=int(bad.sum()),
            )

    def __repr__(self) -> str:
        return f"HealthGuard(check_every={self.check_every}, max_abs={self.max_abs})"
