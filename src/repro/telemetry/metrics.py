"""Batch-wide metrics registry: counters, gauges, histograms — no new deps.

The per-run :class:`~repro.telemetry.spans.Telemetry` buffer answers "where
did *this run's* wall-time go"; it dies with the run.  A
:class:`MetricsRegistry` is the complementary *service-level* surface: a
process-wide (well, supervisor-wide) set of named, labelled instruments the
whole ``jobs/`` service records into — queue depths per lane, admission
waits, attempt latencies, breaker transitions, journal fsync latency —
snapshottable at any instant as versioned JSON
(:meth:`MetricsRegistry.snapshot`) or Prometheus text exposition format
(:meth:`MetricsRegistry.exposition`), and servable over a stdlib HTTP
endpoint (:class:`MetricsServer`, ``--metrics-port`` on the jobs CLI).

Instrument semantics follow the Prometheus conventions:

* :class:`Counter` — monotonically non-decreasing totals (``*_total``);
* :class:`Gauge` — a value that goes both ways (queue depth, heartbeat age);
* :class:`Histogram` — fixed-bucket observation counts with ``sum`` and
  ``count``; :meth:`Histogram.quantile` estimates quantiles by linear
  interpolation inside the bucket the rank falls in (exactly what a
  Prometheus ``histogram_quantile`` would do server-side).

Labels are declared per instrument (``labelnames``) and passed by keyword
at record time; each distinct label-value combination is one time series.
Everything is guarded by one registry lock, so the HTTP server thread can
scrape while the supervisor records.

:class:`PhaseAccountant` is the supervisor-side analogue of the executors'
boundary-to-boundary phase accounting: a stack of *exclusive* wall-time
buckets (``admission``/``journal``/``dispatch``/``execute``/``idle``/
``drain`` under a ``supervise`` root) where entering an inner bucket pauses
the outer one — the bucket sum covers the supervised interval exactly,
which is what lets ``BatchReport.phase_totals`` reconcile batch wall time.

:func:`validate_exposition` is a strict-enough parser of the text format
used by the tests and the CI smoke to prove the endpoint speaks actual
Prometheus exposition, not something that merely looks like it.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SNAPSHOT_VERSION",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseAccountant",
    "validate_exposition",
    "write_json_atomic",
]

#: version stamp of the JSON snapshot schema (bump on breaking change)
SNAPSHOT_VERSION = 1

#: default latency buckets (seconds) — spans pipe dispatches (~100us) to
#: multi-second attempts, the service's whole dynamic range
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(v: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    f = float(v)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def _escape_label(v: object) -> str:
    return str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(v: str) -> str:
    return v.replace("\\", "\\\\").replace("\n", "\\n")


class _Metric:
    """Shared series bookkeeping of one named instrument."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str], lock):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        #: label-value tuple -> series state (float, or histogram dict)
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def series_labels(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def clear(self) -> None:
        with self._lock:
            self._series.clear()


class Counter(_Metric):
    """Monotonically non-decreasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A value that can go up and down (depth, occupancy, age)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def remove(self, **labels) -> None:
        """Drop one series (e.g. a retired worker's heartbeat-age gauge)."""
        with self._lock:
            self._series.pop(self._key(labels), None)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Histogram(_Metric):
    """Fixed-bucket observation histogram with sum/count and quantiles."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames, lock)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError(f"{self.name}: need at least one bucket")
        if any(e1 >= e2 for e1, e2 in zip(edges, edges[1:])):
            raise ValueError(f"{self.name}: bucket edges must strictly increase")
        self.buckets = edges  # +Inf is implicit

    def _blank(self) -> dict:
        return {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        v = float(value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = self._blank()
            idx = len(self.buckets)
            for i, edge in enumerate(self.buckets):
                if v <= edge:
                    idx = i
                    break
            state["counts"][idx] += 1
            state["sum"] += v
            state["count"] += 1

    def count(self, **labels) -> int:
        with self._lock:
            state = self._series.get(self._key(labels))
            return int(state["count"]) if state else 0

    def sum(self, **labels) -> float:
        with self._lock:
            state = self._series.get(self._key(labels))
            return float(state["sum"]) if state else 0.0

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimated *q*-quantile (0..1) by linear interpolation inside the
        bucket the rank lands in — None with no observations.  Observations
        in the overflow (+Inf) bucket report the last finite edge (the same
        saturation a Prometheus ``histogram_quantile`` exhibits)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            state = self._series.get(self._key(labels))
            if not state or state["count"] == 0:
                return None
            counts = list(state["counts"])
            total = state["count"]
        rank = q * total
        cumulative = 0.0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                if i >= len(self.buckets):  # overflow bucket: saturate
                    return self.buckets[-1]
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                hi = self.buckets[i]
                frac = (rank - cumulative) / c
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            cumulative += c
        return self.buckets[-1]


class MetricsRegistry:
    """Named, labelled instruments with get-or-create semantics.

    ``namespace`` prefixes every metric name (``jobs_completed_total`` →
    ``repro_jobs_completed_total``), keeping the exposition greppable and
    collision-free next to other exporters.
    """

    def __init__(self, namespace: str = "repro"):
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid namespace {namespace!r}")
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _full(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        full = self._full(name)
        with self._lock:
            existing = self._metrics.get(full)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {full!r} re-registered as {cls.kind} with "
                        f"labels {tuple(labelnames)!r}; it is {existing.kind} "
                        f"with {existing.labelnames!r}"
                    )
                return existing
        metric = cls(full, help, labelnames, self._lock, **kwargs)
        with self._lock:
            return self._metrics.setdefault(full, metric)

    def counter(self, name, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name, help: str = "", labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(self._full(name))

    # -- export --------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Versioned JSON-able snapshot of every series."""
        metrics = {}
        with self._lock:
            items = list(self._metrics.items())
        for full, metric in items:
            with self._lock:
                series_items = list(metric._series.items())
            series = []
            for key, state in sorted(series_items):
                entry: dict = {"labels": metric.series_labels(key)}
                if metric.kind == "histogram":
                    edges = [*metric.buckets, math.inf]
                    cumulative = 0
                    bucket_counts = {}
                    for edge, c in zip(edges, state["counts"]):
                        cumulative += c
                        bucket_counts["+Inf" if edge == math.inf else repr(edge)] = cumulative
                    entry.update(
                        buckets=bucket_counts,
                        sum=state["sum"],
                        count=state["count"],
                    )
                else:
                    entry["value"] = state
                series.append(entry)
            metrics[full] = {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": series,
            }
        return {
            "version": SNAPSHOT_VERSION,
            "namespace": self.namespace,
            "generated_unix": time.time(),
            "metrics": metrics,
        }

    def exposition(self) -> str:
        """Prometheus text exposition format (content type
        ``text/plain; version=0.0.4``)."""
        lines: List[str] = []
        with self._lock:
            items = sorted(self._metrics.items())
        for full, metric in items:
            with self._lock:
                series_items = sorted(metric._series.items())
            if metric.help:
                lines.append(f"# HELP {full} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {full} {metric.kind}")
            for key, state in series_items:
                labels = metric.series_labels(key)
                base = _render_labels(labels)
                if metric.kind == "histogram":
                    cumulative = 0
                    for edge, c in zip([*metric.buckets, math.inf], state["counts"]):
                        cumulative += c
                        le = "+Inf" if edge == math.inf else _format_value(edge)
                        bl = _render_labels({**labels, "le": le})
                        lines.append(f"{full}_bucket{bl} {cumulative}")
                    lines.append(f"{full}_sum{base} {_format_value(state['sum'])}")
                    lines.append(f"{full}_count{base} {state['count']}")
                else:
                    lines.append(f"{full}{base} {_format_value(state)}")
        return "\n".join(lines) + "\n"

    def write_json(self, path, extra: Optional[dict] = None) -> None:
        """Atomically write the snapshot (plus *extra* top-level keys)."""
        payload = self.snapshot()
        if extra:
            payload.update(extra)
        write_json_atomic(path, payload)


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def write_json_atomic(path, payload: dict) -> None:
    """Temp-file + ``os.replace`` so a reader never sees a torn snapshot."""
    from pathlib import Path

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


# -- exposition validation --------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def validate_exposition(text: str) -> Dict[str, dict]:
    """Strictly parse Prometheus text exposition; raise ``ValueError`` on
    any malformed line, TYPE-less sample, or histogram whose cumulative
    ``le`` buckets decrease or lack ``+Inf``.  Returns ``family name ->
    {"type", "samples": n}`` on success (used by tests and the CI smoke).
    """
    types: Dict[str, str] = {}
    samples: Dict[str, int] = {}
    histogram_buckets: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = m.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE declaration")
        samples[family] = samples.get(family, 0) + 1
        if types[family] == "histogram" and name.endswith("_bucket"):
            labels = dict(_LABEL_PAIR_RE.findall(m.group("labels") or ""))
            le = labels.pop("le", None)
            if le is None:
                raise ValueError(f"line {lineno}: histogram bucket without le label")
            series_id = (family, json.dumps(labels, sort_keys=True))
            edge = math.inf if le == "+Inf" else float(le)
            histogram_buckets.setdefault(series_id, []).append(
                (edge, float(m.group("value")))
            )
    for (family, labels_id), rows in histogram_buckets.items():
        edges = [e for e, _ in rows]
        counts = [c for _, c in rows]
        if edges != sorted(edges):
            raise ValueError(f"{family}{labels_id}: le edges out of order")
        if math.inf not in edges:
            raise ValueError(f"{family}{labels_id}: histogram lacks +Inf bucket")
        if any(c1 > c2 for c1, c2 in zip(counts, counts[1:])):
            raise ValueError(f"{family}{labels_id}: cumulative bucket counts decrease")
    return {f: {"type": t, "samples": samples.get(f, 0)} for f, t in types.items()}


# -- HTTP endpoint ----------------------------------------------------------------------


class MetricsServer:
    """stdlib HTTP endpoint over one registry (``--metrics-port``).

    ``GET /metrics`` serves the text exposition, ``GET /metrics.json`` the
    versioned snapshot, ``GET /healthz`` a liveness ``ok``.  Port 0 binds an
    ephemeral port — read the real one from :attr:`port`.  Runs in a daemon
    thread; request logging is suppressed (the supervisor's stdout is the
    batch report, not an access log).
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1"):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        reg = registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 — http.server API
                if self.path.split("?")[0] == "/metrics":
                    body = reg.exposition().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?")[0] == "/metrics.json":
                    body = (json.dumps(reg.snapshot(), sort_keys=True) + "\n").encode()
                    ctype = "application/json"
                elif self.path.split("?")[0] == "/healthz":
                    body, ctype = b"ok\n", "text/plain"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence access logging
                pass

        self._server = ThreadingHTTPServer((host, int(port)), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True, name="repro-metrics"
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- supervisor phase accounting --------------------------------------------------------


class PhaseAccountant:
    """Exclusive wall-time buckets with pause-on-nest semantics.

    ``push("journal")`` inside an ``admission`` section charges the elapsed
    admission time so far and starts charging ``journal``; ``pop`` resumes
    the outer bucket at the current clock.  The bucket sum therefore covers
    the root interval exactly (no double counting), which is the property
    ``BatchReport.phase_totals`` needs to reconcile batch wall time.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.seconds: Dict[str, float] = {}
        self._stack: List[List] = []  # [name, resumed_at]

    def _charge_top(self, now: float) -> None:
        if self._stack:
            name, since = self._stack[-1]
            self.seconds[name] = self.seconds.get(name, 0.0) + (now - since)
            self._stack[-1][1] = now

    def push(self, name: str) -> None:
        now = self._clock()
        self._charge_top(now)
        self._stack.append([name, now])

    def pop(self) -> None:
        now = self._clock()
        name, since = self._stack.pop()
        self.seconds[name] = self.seconds.get(name, 0.0) + (now - since)
        if self._stack:
            self._stack[-1][1] = now

    @contextmanager
    def phase(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    def flush(self) -> Dict[str, float]:
        """Charge everything open up to now and return the totals (the
        stack stays usable — this is a cadence snapshot, not a close)."""
        now = self._clock()
        for frame in self._stack:
            name, since = frame
            self.seconds[name] = self.seconds.get(name, 0.0) + (now - since)
            frame[1] = now
        return dict(self.seconds)
