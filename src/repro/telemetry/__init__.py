"""Runtime telemetry: phase-level tracing, counters and trace export.

Everything is opt-in and threaded through the execution stack via a
``telemetry=`` keyword, mirroring the runtime resilience layer::

    from repro.telemetry import Telemetry, render_phase_table, write_chrome_trace

    tel = Telemetry()                       # or Telemetry(detail="trace")
    op.apply(time_M=nt, dt=dt, schedule=WavefrontSchedule(), telemetry=tel)
    print(render_phase_table(tel))
    write_chrome_trace(tel, "trace.json")   # open in https://ui.perfetto.dev

With no telemetry attached the executors pay a single ``is not None`` branch
per loop and record nothing.  See ``python -m repro.profile --help`` for the
command-line front-end.
"""

from .counters import Counters, derived_metrics, gathered_points, injected_points
from .export import (
    render_phase_table,
    telemetry_to_json,
    to_chrome_trace,
    write_chrome_trace,
)
from .merge import (
    merge_batch_trace,
    telemetry_payload,
    validate_chrome_trace,
    validate_payload,
    write_batch_trace,
)
from .metrics import (
    MetricsRegistry,
    MetricsServer,
    PhaseAccountant,
    validate_exposition,
)
from .spans import DETAIL_LEVELS, PHASES, Span, Telemetry

__all__ = [
    "Telemetry",
    "Span",
    "PHASES",
    "DETAIL_LEVELS",
    "Counters",
    "injected_points",
    "gathered_points",
    "derived_metrics",
    "telemetry_to_json",
    "render_phase_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "telemetry_payload",
    "validate_payload",
    "merge_batch_trace",
    "write_batch_trace",
    "validate_chrome_trace",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseAccountant",
    "validate_exposition",
]
