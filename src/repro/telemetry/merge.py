"""Batch-wide trace merging: stitch supervisor + per-attempt span trees.

Warm daemons run attempts under their own :class:`Telemetry` buffer (their
process, their ``perf_counter`` clock).  With tracing enabled the daemon
serializes that buffer with :func:`telemetry_payload` and ships it back over
the result pipe inside the attempt ``meta``; the supervisor stamps each
payload with a **clock offset** derived from the pipe handshake and
:func:`merge_batch_trace` stitches everything into one Chrome/Perfetto
``trace_event`` JSON with per-worker tracks.

Clock-offset correction
-----------------------
``perf_counter`` epochs are per-process, so child timestamps are meaningless
in the supervisor's frame until corrected.  The dispatch message carries the
parent's ``perf_counter`` reading taken immediately before the pipe write;
the child reads its own clock immediately after the pipe read.  Equating the
two instants (they differ by the one-way pipe latency, well under a
millisecond for these payloads)::

    offset = (dispatch_parent - batch_epoch) - recv_child

maps any child timestamp ``t`` to batch-relative seconds as ``t + offset``.
The error is bounded by the pipe latency and — crucially for trace sanity —
is *constant per payload*, so within-track ordering and span nesting are
preserved exactly (:func:`validate_chrome_trace` checks both).

Track layout
------------
* ``pid 1`` — the supervisor: lifecycle instants (``job.queued``,
  ``worker.crash`` …) plus one **async** ``b``/``e`` pair per job spanning
  queue-entry to terminal state.  Async events are keyed by ``id`` and
  exempt from B/E stack nesting, which matters because job lifetimes
  overlap arbitrarily.
* ``pid 2`` — the workers: one track (``tid`` = worker id) per daemon,
  carrying the corrected per-attempt span trees.  Serial (``workers=0``)
  attempts land on ``tid 0``.

Partial payloads from SIGKILLed daemons never reach the supervisor (the
result message dies with the process) — but a half-written or corrupt
payload that *does* arrive is dropped by :func:`validate_payload` rather
than corrupting the batch trace; drops are counted in
``otherData.dropped_payloads``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from .spans import Telemetry

__all__ = [
    "PAYLOAD_VERSION",
    "telemetry_payload",
    "validate_payload",
    "merge_batch_trace",
    "write_batch_trace",
    "validate_chrome_trace",
]

#: version stamp of the span-payload wire format (bump on breaking change)
PAYLOAD_VERSION = 1


def telemetry_payload(tel: Telemetry, **context) -> dict:
    """Serialize one attempt's buffer for the result pipe.

    Timestamps stay in the *recording process's* clock frame; the receiver
    applies the handshake offset.  ``context`` carries trace identity
    (job id, attempt, worker) plus the child-side handshake reading
    (``recv_perf``).  Only JSON-able attrs survive (the pipe uses pickle,
    but the payload must also round-trip through ``--trace`` JSON export).
    """
    return {
        "version": PAYLOAD_VERSION,
        "context": dict(context),
        "spans": [s.to_dict() for s in tel.spans],
        "events": [e.to_dict() for e in tel.events],
        "phase_seconds": {k: v for k, v in tel.phase_seconds.items() if v},
        "counters": tel.counters.to_dict(),
        "epoch": tel.epoch,
    }


def _finite(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def validate_payload(payload) -> Optional[str]:
    """Why this payload must be dropped, or ``None`` if it is sound.

    Checks shape, finite timestamps, non-negative durations, and — the
    property the merger depends on — that the span set is a *well-nested
    forest*: replaying spans in (start, -dur) order against a stack must
    close every span in strict LIFO order.  A daemon SIGKILLed mid-attempt
    that somehow flushed half a buffer fails here instead of producing a
    trace Perfetto rejects.
    """
    if not isinstance(payload, dict):
        return "payload is not a dict"
    if payload.get("version") != PAYLOAD_VERSION:
        return f"unknown payload version {payload.get('version')!r}"
    spans = payload.get("spans")
    events = payload.get("events")
    if not isinstance(spans, list) or not isinstance(events, list):
        return "spans/events are not lists"
    for kind, rows in (("span", spans), ("event", events)):
        for row in rows:
            if not isinstance(row, dict):
                return f"non-dict {kind}"
            if not _finite(row.get("start")):
                return f"{kind} {row.get('name')!r}: non-finite start"
            if not _finite(row.get("dur")) or row["dur"] < 0:
                return f"{kind} {row.get('name')!r}: bad dur"
            if not isinstance(row.get("name"), str) or not row["name"]:
                return f"{kind} without a name"
    # well-nested forest check: sweep span boundaries with a stack
    ordered = sorted(spans, key=lambda s: (s["start"], -s["dur"]))
    stack: List[Tuple[float, float]] = []  # (start, end)
    eps = 1e-9
    for s in ordered:
        start, end = s["start"], s["start"] + s["dur"]
        while stack and stack[-1][1] <= start + eps:
            stack.pop()
        if stack and end > stack[-1][1] + eps:
            return (
                f"span {s['name']!r} [{start:.6f}, {end:.6f}] overlaps its "
                f"enclosing span's end {stack[-1][1]:.6f} (not well-nested)"
            )
        stack.append((start, end))
    return None


def _us(t: float) -> float:
    return round(t * 1e6, 3)


def _args(attrs: dict) -> dict:
    def jsonable(v):
        if isinstance(v, tuple):
            return [jsonable(x) for x in v]
        return v

    return {k: jsonable(v) for k, v in attrs.items()}


_SUPERVISOR_PID = 1
_WORKER_PID = 2

#: terminal lifecycle kinds that close a job's async track event — the
#: ``job.<kind>`` marks :meth:`JobPool._finish` emits per terminal status
_TERMINAL_EVENTS = {
    "job.completed",
    "job.timeout",
    "job.exhausted",
    "job.quarantined",
    "job.interrupted",
}


def _payload_events(payload: dict, offset_s: float, tid: int) -> List[tuple]:
    """One attempt payload -> sort-keyed Chrome events on worker track *tid*.

    The sort key mirrors :func:`repro.telemetry.export.to_chrome_trace`:
    at a shared boundary closes sort before opens (parents open before
    children, children close before parents), so the completion-ordered
    span list replays as a valid B/E stream.
    """
    keyed: List[tuple] = []
    ctx = payload.get("context", {})
    base_args = {k: ctx[k] for k in ("job", "attempt") if k in ctx}
    for s in payload["spans"]:
        start = _us(s["start"] + offset_s)
        end = _us(s["start"] + s["dur"] + offset_s)
        common = {
            "name": s["name"],
            "cat": s.get("phase") or "structural",
            "pid": _WORKER_PID,
            "tid": tid,
        }
        b = {**common, "ph": "B", "ts": start}
        args = {**base_args, **_args(s.get("attrs", {}))}
        if args:
            b["args"] = args
        e = {**common, "ph": "E", "ts": end}
        keyed.append(((tid, end, 0, s["dur"]), e))
        keyed.append(((tid, start, 1, -s["dur"]), b))
    for ev in payload["events"]:
        ts = _us(ev["start"] + offset_s)
        item = {
            "name": ev["name"],
            "cat": ev.get("phase") or "structural",
            "ph": "i",
            "ts": ts,
            "pid": _WORKER_PID,
            "tid": tid,
            "s": "t",
        }
        args = {**base_args, **_args(ev.get("attrs", {}))}
        if args:
            item["args"] = args
        keyed.append(((tid, ts, 2, 0.0), item))
    return keyed


def merge_batch_trace(report, supervisor_telemetry: Optional[Telemetry] = None) -> dict:
    """Stitch a :class:`~repro.jobs.spec.BatchReport` into one Chrome trace.

    Consumes the per-attempt ``trace`` payloads stored on attempt records
    (each already stamped with ``clock_offset_s`` by the supervisor) plus
    the supervisor's own lifecycle events/spans.  Invalid payloads are
    dropped, not fatal; the count lands in ``otherData.dropped_payloads``.
    """
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": _SUPERVISOR_PID, "tid": 0,
         "args": {"name": "supervisor"}},
        {"name": "process_name", "ph": "M", "pid": _WORKER_PID, "tid": 0,
         "args": {"name": "workers"}},
        {"name": "thread_name", "ph": "M", "pid": _SUPERVISOR_PID, "tid": 0,
         "args": {"name": "pool"}},
    ]

    # -- supervisor track: lifecycle instants + async per-job lifetime bars ----
    job_open: Dict[str, float] = {}
    sup_keyed: List[tuple] = []
    if supervisor_telemetry is not None:
        # the supervisor's buffer records absolute perf_counter readings;
        # its epoch is the batch-relative zero the worker offsets map into
        epoch = supervisor_telemetry.epoch or 0.0
        for span in supervisor_telemetry.spans:
            start, end = _us(span.start - epoch), _us(span.end - epoch)
            common = {"name": span.name, "cat": span.phase or "structural",
                      "pid": _SUPERVISOR_PID, "tid": 0}
            b = {**common, "ph": "B", "ts": start}
            if span.attrs:
                b["args"] = _args(span.attrs)
            sup_keyed.append(((end, 0, span.dur), {**common, "ph": "E", "ts": end}))
            sup_keyed.append(((start, 1, -span.dur), b))
        for ev in supervisor_telemetry.events:
            ts = _us(ev.start - epoch)
            item = {"name": ev.name, "cat": ev.phase or "structural", "ph": "i",
                    "ts": ts, "pid": _SUPERVISOR_PID, "tid": 0, "s": "t"}
            if ev.attrs:
                item["args"] = _args(ev.attrs)
            sup_keyed.append(((ts, 2, 0.0), item))
            jid = ev.attrs.get("job")
            if jid is None:
                continue
            # async job-lifetime bars interleave with the B/E/i stream; sort
            # keys slot e before B-opens and b after E-closes at equal ts
            if ev.name == "job.queued" and jid not in job_open:
                job_open[jid] = ts
                sup_keyed.append(((ts, 1.5, 0.0), {
                    "name": f"job {jid}", "cat": "jobs", "ph": "b", "ts": ts,
                    "pid": _SUPERVISOR_PID, "tid": 0, "id": str(jid),
                }))
            elif ev.name in _TERMINAL_EVENTS and jid in job_open:
                end_ts = max(ts, job_open.pop(jid))
                sup_keyed.append(((end_ts, 0.5, 0.0), {
                    "name": f"job {jid}", "cat": "jobs", "ph": "e", "ts": end_ts,
                    "pid": _SUPERVISOR_PID, "tid": 0, "id": str(jid),
                    "args": {"outcome": ev.name.split(".", 1)[1]},
                }))
    sup_keyed.sort(key=lambda kv: kv[0])
    events.extend(ev for _, ev in sup_keyed)

    # -- worker tracks: corrected per-attempt span trees -----------------------
    dropped = 0
    worker_keyed: List[tuple] = []
    named_tracks: Dict[int, str] = {}
    for result in report.results:
        for rec in result.attempts:
            payload = getattr(rec, "trace", None)
            if payload is None:
                continue
            reason = validate_payload(payload)
            offset = payload.get("context", {}).get("clock_offset_s")
            if reason is not None or not _finite(offset):
                dropped += 1
                continue
            tid = int(payload["context"].get("worker") or 0)
            named_tracks.setdefault(
                tid, "serial" if tid == 0 else f"worker {tid}"
            )
            worker_keyed.extend(_payload_events(payload, float(offset), tid))
    for tid, name in sorted(named_tracks.items()):
        events.append({"name": "thread_name", "ph": "M", "pid": _WORKER_PID,
                       "tid": tid, "args": {"name": name}})
    worker_keyed.sort(key=lambda kv: kv[0])
    events.extend(ev for _, ev in worker_keyed)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "batch_id": getattr(report, "batch_id", None),
            "wall_seconds": report.wall_seconds,
            "jobs": len(report.results),
            "dropped_payloads": dropped,
        },
    }


def write_batch_trace(report, path, supervisor_telemetry=None) -> dict:
    """Serialise :func:`merge_batch_trace` to *path*; returns the trace."""
    trace = merge_batch_trace(report, supervisor_telemetry)
    with open(path, "w") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    return trace


def validate_chrome_trace(trace) -> List[str]:
    """Schema + structural check of a Chrome ``trace_event`` object.

    Returns a list of problems (empty == valid): required keys per event
    phase, finite timestamps, per-track (pid, tid) B/E stack balance with
    matching names, non-decreasing timestamps per track, and async b/e
    pairing per (pid, cat, id).  This is the validator the property tests
    and the CI smoke both run against ``--trace`` output.
    """
    problems: List[str] = []
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return ["trace is not a dict with a traceEvents list"]
    stacks: Dict[tuple, List[str]] = {}
    last_ts: Dict[tuple, float] = {}
    async_open: Dict[tuple, int] = {}
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not a dict")
            continue
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "M", "b", "e", "X"):
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"event {i}: missing name")
            continue
        if ph == "M":
            continue
        if "pid" not in ev or "tid" not in ev or not _finite(ev.get("ts")):
            problems.append(f"event {i} ({ev['name']!r}): missing pid/tid/finite ts")
            continue
        track = (ev["pid"], ev["tid"])
        if ev["ts"] + 1e-9 < last_ts.get(track, -math.inf):
            problems.append(
                f"event {i} ({ev['name']!r}): ts {ev['ts']} decreases on track {track}"
            )
        last_ts[track] = max(last_ts.get(track, -math.inf), ev["ts"])
        if ph == "B":
            stacks.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E {ev['name']!r} with empty stack on {track}")
            elif stack[-1] != ev["name"]:
                problems.append(
                    f"event {i}: E {ev['name']!r} does not match open "
                    f"{stack[-1]!r} on {track} (nesting violated)"
                )
                stack.pop()
            else:
                stack.pop()
        elif ph in ("b", "e"):
            if "id" not in ev:
                problems.append(f"event {i}: async {ph} without id")
                continue
            key = (ev["pid"], ev.get("cat", ""), str(ev["id"]))
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) <= 0:
                    problems.append(f"event {i}: async e {ev['name']!r} never opened")
                else:
                    async_open[key] -= 1
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B span(s): {stack}")
    for key, n in async_open.items():
        if n:
            problems.append(f"async {key}: {n} unclosed b event(s)")
    return problems
