"""Exporters: JSON, human-readable phase table, Chrome-trace/Perfetto.

Three views of one :class:`~repro.telemetry.spans.Telemetry` buffer:

* :func:`telemetry_to_json` — everything (phases, counters, derived metrics,
  spans, events) as one JSON-able dict; this is what ``repro.profile --json``
  prints and what ``bench_engine.py --telemetry`` folds into
  ``BENCH_engine.json``.
* :func:`render_phase_table` — the per-phase breakdown as a fixed-width
  table (via :func:`repro.analysis.report.render_table`) with the achieved
  GPts/s row joined in from the measured sweep time.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the
  ``trace_event`` format Perfetto (https://ui.perfetto.dev) and Chrome's
  ``about:tracing`` load: matched ``B``/``E`` duration events per span,
  microsecond timestamps relative to the trace epoch, instantaneous ``i``
  events for checkpoint/fallback marks.  Load the file in Perfetto to see
  the tile/sweep timeline of a wavefront run.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .counters import derived_metrics
from .spans import PHASES, Span, Telemetry

__all__ = [
    "telemetry_to_json",
    "render_phase_table",
    "to_chrome_trace",
    "write_chrome_trace",
]


def telemetry_to_json(tel: Telemetry, spans: bool = True) -> dict:
    """The whole buffer as a JSON-able dict (machine-readable report)."""
    out = {
        "detail": tel.detail,
        "meta": {k: v for k, v in tel.meta.items()},
        "total_seconds": tel.total_seconds(),
        "phase_seconds": tel.phase_totals(),
        "phase_sum": tel.phase_sum(),
        "coverage": tel.coverage(),
        "counters": tel.counters.to_dict(),
        "derived": derived_metrics(tel),
        "nspans": len(tel.spans),
        "nevents": len(tel.events),
    }
    if spans:
        out["spans"] = [s.to_dict() for s in tel.spans]
        out["events"] = [e.to_dict() for e in tel.events]
    return out


def render_phase_table(tel: Telemetry, title: str = "") -> str:
    """Phase breakdown + achieved throughput, ready to print.

    The ``share`` column is each phase's fraction of the outermost span's
    wall-time; the residual row makes the coverage explicit (the boundary
    accounting of the executors keeps it small).
    """
    from ..analysis.metrics import achieved_gpoints_per_s
    from ..analysis.report import render_table

    total = tel.total_seconds()
    totals = tel.phase_totals()
    rows = []
    for phase in totals:
        secs = totals[phase]
        if secs == 0.0 and phase not in PHASES:
            continue
        share = secs / total if total > 0 else 0.0
        rows.append([phase, f"{secs * 1e3:.3f}", f"{share:.1%}"])
    residual = max(total - tel.phase_sum(), 0.0)
    rows.append(["(unattributed)", f"{residual * 1e3:.3f}",
                 f"{residual / total:.1%}" if total > 0 else "-"])
    rows.append(["total", f"{total * 1e3:.3f}", "100.0%"])
    table = render_table(["phase", "ms", "share"], rows,
                         title=title or "phase breakdown")
    lines = [table]
    gpts = achieved_gpoints_per_s(tel)
    if gpts is not None:
        lines.append(f"achieved throughput : {gpts:.4f} GPts/s (measured stencil time)")
    derived = derived_metrics(tel)
    if derived["gflops_per_s"] is not None:
        lines.append(f"achieved compute    : {derived['gflops_per_s']:.3f} GFLOP/s")
    if derived["intensity_flops_per_byte"] is not None:
        lines.append(
            "achieved intensity  : "
            f"{derived['intensity_flops_per_byte']:.3f} flop/byte (min-traffic model)"
        )
    caches = []
    for label, key in (
        ("kernel", "kernel_cache"), ("step", "step_cache"), ("view", "view_cache")
    ):
        hits = int(tel.counters.get(f"{key}_hits", 0))
        misses = int(tel.counters.get(f"{key}_misses", 0))
        if hits or misses:
            caches.append(f"{label} {hits}/{hits + misses}")
    if caches:
        lines.append("cache hits          : " + "  ".join(caches))
    return "\n".join(lines)


def _event(span: Span, ph: str, ts: float, pid: int = 1, tid: int = 1) -> dict:
    ev = {
        "name": span.name,
        "cat": span.phase or "structural",
        "ph": ph,
        "ts": ts,
        "pid": pid,
        "tid": tid,
    }
    if ph in ("B", "i") and span.attrs:
        ev["args"] = {k: _jsonable(v) for k, v in span.attrs.items()}
    if ph == "i":
        ev["s"] = "t"  # thread-scoped instant
    return ev


def _jsonable(v):
    if isinstance(v, tuple):
        return [_jsonable(x) for x in v]
    return v


def to_chrome_trace(tel: Telemetry) -> dict:
    """Spans and events as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Every span becomes a matched ``B``/``E`` pair; timestamps are
    microseconds since the trace epoch.  The single-threaded executors
    guarantee proper nesting, so sorting by ``(ts, kind, extent)`` — closes
    before opens at a shared boundary, longer spans opening first, shorter
    spans closing first — reconstructs a valid event stream from the
    completion-ordered span list.
    """
    epoch = tel.epoch if tel.epoch is not None else 0.0

    def us(t: float) -> float:
        return round((t - epoch) * 1e6, 3)

    keyed: List[tuple] = []
    for span in tel.spans:
        # sort kind: E=0 before B=1 at equal ts; among Bs longer first
        # (parents open before children), among Es shorter first (children
        # close before parents)
        keyed.append(((us(span.end), 0, span.dur), _event(span, "E", us(span.end))))
        keyed.append(((us(span.start), 1, -span.dur), _event(span, "B", us(span.start))))
    for ev in tel.events:
        keyed.append(((us(ev.start), 2, 0.0), _event(ev, "i", us(ev.start))))
    keyed.sort(key=lambda kv: kv[0])
    trace_events = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "repro run"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": str(tel.meta.get("schedule", {}).get("kind", "executor"))
                  if isinstance(tel.meta.get("schedule"), dict) else "executor"}},
    ]
    trace_events.extend(ev for _, ev in keyed)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(tel: Telemetry, path) -> None:
    """Serialise :func:`to_chrome_trace` to *path* (open it in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tel), fh)
        fh.write("\n")
