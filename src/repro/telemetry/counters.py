"""Per-phase counters and the derived achieved-performance metrics.

:class:`Counters` is a plain ``dict`` of integer tallies with an ``add``
helper; the executors flush locally-accumulated tallies into it once per run
so the hot loops pay Python-int additions only.

Counter taxonomy (all optional — absent means the producer never ran):

* ``instances`` / ``sweep{j}.instances`` — executed sweep instances.
* ``points_updated`` — grid-point *updates* (box points × equations of the
  sweep); ``sweep{j}.points`` — box points per sweep (once per instance,
  not per equation) — the quantity flop/traffic models scale with.
* ``src_points_injected`` / ``rec_points_gathered`` / ``rec_rows_finalized``
  — sparse-operator work items (grid-aligned points for the precomputed
  path, support corners for the raw off-the-grid path).
* ``view_cache_hits`` / ``view_cache_misses`` — the fused engine's memoised
  ``(t, box)`` view bindings (:class:`~repro.execution.evalbox.BoundSweep`).
* ``kernel_cache_hits`` / ``kernel_cache_misses`` — process-wide compiled
  RHS/sweep kernel lookups during operator binding
  (:func:`repro.ir.pycodegen.kernel_cache_stats`); a warm worker's second
  job of a family is all hits, which is the whole point of keeping it alive.
* ``step_cache_hits`` / ``step_cache_misses`` — wavefront ``(tile, height)``
  step-plan lookups per time tile (:mod:`repro.execution.executors`); hits
  mean the tile geometry was replayed from a prior run (or a warm worker's
  persistent family cache) instead of recomputed.
* ``checkpoint_saves``, ``guard_ticks``, ``guard_checks``, ``faults_fired``
  — runtime-monitor activity (:mod:`repro.runtime`).
* ``engine_fallbacks`` — fused→kernel→interp ladder transitions during
  binding (:meth:`repro.ir.operator.Operator._build_sweeps`).
* ``jobs_{kind}`` — one per pool lifecycle event kind
  (:class:`repro.jobs.pool.JobPool`): ``queued``/``started``/``retried``/
  ``resumed``/``degraded``/``rerouted``/``completed``/``timeout``/
  ``exhausted``/``quarantined``/``interrupted`` job transitions,
  ``killed`` chaos kills, ``worker_spawned``/``worker_crashed``/
  ``worker_retired``/``worker_hung`` daemon lifecycle, plus batch-scoped
  ``drain`` and ``stream_failed``.
* ``jobs_warm_attempts`` / ``jobs_cold_attempts`` and
  ``worker{W}.jobs`` / ``worker{W}.warm_attempts`` — warm/cold attribution
  of completed attempts per daemon.
* ``journal_records`` — write-ahead journal appends
  (:mod:`repro.jobs.journal`): each one is a durable, fsynced state
  transition of the batch.

The derived metrics join the measured counters and phase seconds with the
*static* per-point costs of :mod:`repro.analysis.metrics` (flop and access
counts stored into ``telemetry.meta`` by ``Operator.apply``): achieved
GPts/s and GFLOP/s come from measured stencil seconds, and the achieved
arithmetic intensity uses a minimum-traffic byte model (each static access
moves its dtype width exactly once per point) — an optimistic bound, the
same convention the roofline model uses.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "Counters",
    "injected_points",
    "gathered_points",
    "derived_metrics",
]


class Counters(dict):
    """Integer tallies; missing keys read as 0."""

    def add(self, key: str, n: int = 1) -> None:
        self[key] = self.get(key, 0) + int(n)

    def __missing__(self, key):
        return 0

    def to_dict(self) -> Dict[str, int]:
        return {k: int(v) for k, v in sorted(self.items())}


def injected_points(inj, t: int, box) -> int:
    """Grid points the injection executor touches at ``(t, box)``.

    Duck-typed over both executor families: the grid-aligned
    :class:`~repro.core.aligned.AlignedInjection` (its memoised
    ``points_in_box`` makes the second lookup a cache hit, so counting costs
    a dict probe) and the raw off-the-grid
    :class:`~repro.execution.sparse.RawInjection` (``npoint × 2^d`` support
    corners, whole-grid only).
    """
    masks = getattr(inj, "masks", None)
    if masks is not None:  # grid-aligned path
        if not 0 <= t < inj.nt or masks.npts == 0:
            return 0
        if box is None:
            return int(masks.npts)
        return int(masks.points_in_box(box).size)
    indices = getattr(inj, "indices", None)
    if indices is None or not 0 <= t < inj.data.shape[0]:
        return 0
    return int(indices.shape[0] * indices.shape[1])


def gathered_points(rec, t: int, box) -> int:
    """Grid points the receiver executor stages at ``(t, box)`` (0 for the
    raw off-the-grid path, which measures only at ``finalize``)."""
    masks = getattr(rec, "masks", None)
    if masks is None or masks.npts == 0:
        return 0
    row = t + rec.time_offset
    if not 0 <= row < rec.output.shape[0]:
        return 0
    if box is None:
        return int(masks.npts)
    return int(masks.points_in_box(box).size)


def derived_metrics(telemetry) -> Dict[str, Optional[float]]:
    """Join measured counters/seconds with the static per-point costs.

    Returns ``gpoints_per_s`` (measured stencil seconds, see also
    :func:`repro.analysis.metrics.achieved_gpoints_per_s`),
    ``gflops_per_s`` and ``intensity_flops_per_byte`` (``None`` whenever the
    inputs to a metric are missing — e.g. no static costs registered, or the
    stencil phase never ran).
    """
    counters = telemetry.counters
    stencil = telemetry.phase_seconds.get("stencil", 0.0)
    points = counters.get("points_updated", 0)
    out: Dict[str, Optional[float]] = {
        "gpoints_per_s": points / stencil / 1e9 if stencil > 0 and points else None,
        "gflops_per_s": None,
        "intensity_flops_per_byte": None,
    }
    sweep_flops = telemetry.meta.get("sweep_flops")
    sweep_accesses = telemetry.meta.get("sweep_accesses")
    dtype_bytes = telemetry.meta.get("dtype_bytes", 4)
    if sweep_flops:
        flops = 0.0
        bytes_moved = 0.0
        for j, fl in enumerate(sweep_flops):
            pts = counters.get(f"sweep{j}.points", 0)
            flops += pts * fl
            if sweep_accesses:
                bytes_moved += pts * sweep_accesses[j] * dtype_bytes
        if stencil > 0 and flops:
            out["gflops_per_s"] = flops / stencil / 1e9
        if bytes_moved > 0 and flops:
            out["intensity_flops_per_byte"] = flops / bytes_moved
    return out
