"""Nested wall-clock spans and per-phase time accounting for one run.

A :class:`Telemetry` object is the per-run buffer everything records into.
It is threaded through the execution stack exactly like the
:class:`~repro.runtime.monitor.RuntimeMonitor`: ``Operator.apply(...,
telemetry=tel)`` / ``Propagator.forward(..., telemetry=tel)`` hand it down to
the executors, whose hot loops keep a single ``telemetry is not None`` branch
— with no telemetry attached nothing is constructed and nothing is timed.

Two kinds of record coexist:

* **Spans** — nested intervals with structured attributes (``schedule``,
  ``engine``, ``t``-range, tile id, sweep name).  Structural spans (``apply``
  > ``bind``/``preflight``/``run`` > ``tile``/``step`` > ``instance``) give
  the Chrome-trace/Perfetto timeline its shape.  Per-*instance* spans are
  only recorded at ``detail="trace"`` — they cost one object per sweep
  instance and exist for timeline inspection, not for accounting.
* **Phase seconds** — a flat ``phase -> seconds`` accumulation fed by the
  executors with *boundary-to-boundary* timing: each measurement picks up
  from the previous clock reading, so loop overhead is absorbed into the
  adjacent phase and the phase sum covers the run wall-time almost exactly
  (the ≥95% coverage contract of ``bench_engine.py --telemetry``).

Phases are the paper-facing cost centres: ``precompute`` (masks, wavelet
decomposition, kernel binding, preflight, step-plan geometry), ``stencil``
(sweep evaluation), ``injection`` (grid-aligned or raw source scatter),
``receivers`` (gather + trace reconstruction), ``checkpoint+guard`` (the
runtime monitor: health scans, snapshots, fault hooks), ``jobs`` (batch
supervisor work — admission, journaling, dispatch, drain — recorded by
:mod:`repro.jobs.pool`, not the executors) and ``other``.

The clock is injectable (``Telemetry(clock=...)``) so tests can drive spans
deterministically; it defaults to :func:`time.perf_counter`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .counters import Counters

__all__ = ["Span", "Telemetry", "PHASES", "DETAIL_LEVELS"]

#: the run cost centres, in reporting order
PHASES = (
    "precompute",
    "stencil",
    "injection",
    "receivers",
    "checkpoint+guard",
    "jobs",
    "other",
)

#: ``"phase"`` — per-phase seconds + structural spans only (the low-overhead
#: default); ``"trace"`` — additionally one span per executed sweep instance
#: (the timeline the Chrome-trace exporter renders).
DETAIL_LEVELS = ("phase", "trace")


@dataclass
class Span:
    """One completed (or in-flight) interval on the telemetry clock."""

    name: str
    phase: str = ""
    start: float = 0.0
    dur: float = 0.0
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.dur

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "dur": self.dur,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class Telemetry:
    """Per-run buffer of spans, phase seconds, counters and events.

    Parameters
    ----------
    detail:
        ``"phase"`` (default) or ``"trace"`` (adds per-instance spans).
    clock:
        Monotonic float-second clock; injectable for deterministic tests.
    """

    def __init__(self, detail: str = "phase", clock: Callable[[], float] = time.perf_counter):
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"unknown detail {detail!r}; expected one of {DETAIL_LEVELS}")
        self.detail = detail
        self._clock = clock
        #: completed spans, in completion order (children before parents)
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        #: instantaneous marks (checkpoint saves, engine fallbacks, ...)
        self.events: List[Span] = []
        self.counters = Counters()
        self.phase_seconds: Dict[str, float] = {p: 0.0 for p in PHASES}
        #: static context set by the entry points: schedule/engine descriptors,
        #: per-sweep flop and access counts from :mod:`repro.analysis.metrics`
        self.meta: Dict[str, object] = {}
        #: clock value of the first ``begin`` — the trace epoch
        self.epoch: Optional[float] = None

    # -- clock -------------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    @property
    def trace(self) -> bool:
        return self.detail == "trace"

    # -- spans -------------------------------------------------------------------
    def begin(self, name: str, phase: str = "", **attrs) -> Span:
        """Open a nested span; must be closed with :meth:`end` (LIFO)."""
        start = self._clock()
        if self.epoch is None:
            self.epoch = start
        span = Span(name, phase, start, depth=len(self._stack), attrs=attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close *span* (the innermost open span) and record it."""
        top = self._stack.pop()
        if top is not span:
            self._stack.append(top)
            raise ValueError(
                f"span nesting violated: closing {span.name!r} while "
                f"{top.name!r} is innermost"
            )
        span.dur = self._clock() - span.start
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, phase: str = "", **attrs):
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        span = self.begin(name, phase, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def record(self, name: str, phase: str, start: float, dur: float, depth: int, attrs: dict) -> None:
        """Append an already-timed span (the executors' per-instance path:
        the boundary clock readings double as span timestamps, so a traced
        instance costs no extra clock calls)."""
        if self.epoch is None:
            self.epoch = start
        self.spans.append(Span(name, phase, start, dur, depth, attrs))

    def event(self, name: str, phase: str = "", **attrs) -> Span:
        """An instantaneous mark (zero-duration) at the current clock."""
        ts = self._clock()
        if self.epoch is None:
            self.epoch = ts
        ev = Span(name, phase, ts, 0.0, len(self._stack), attrs)
        self.events.append(ev)
        return ev

    # -- phase accounting ----------------------------------------------------------
    def add_phase(self, phase: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-time into *phase*."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def phase_totals(self) -> Dict[str, float]:
        """Phase -> seconds, reporting order, zero phases included."""
        out = {p: self.phase_seconds.get(p, 0.0) for p in PHASES}
        for p, s in self.phase_seconds.items():  # custom phases, if any
            if p not in out:
                out[p] = s
        return out

    def phase_sum(self) -> float:
        return float(sum(self.phase_seconds.values()))

    # -- whole-run queries ----------------------------------------------------------
    def root_span(self) -> Optional[Span]:
        """The outermost completed span (depth 0) — normally ``apply``."""
        for span in reversed(self.spans):
            if span.depth == 0:
                return span
        return None

    def total_seconds(self) -> float:
        """Wall-time of the outermost span (0.0 before any run completed)."""
        root = self.root_span()
        return root.dur if root is not None else 0.0

    def coverage(self) -> float:
        """Fraction of the outermost span's wall-time the phase sum explains."""
        total = self.total_seconds()
        return self.phase_sum() / total if total > 0 else 0.0

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def __repr__(self) -> str:
        return (
            f"Telemetry(detail={self.detail!r}, spans={len(self.spans)}, "
            f"events={len(self.events)}, phases={ {k: round(v, 6) for k, v in self.phase_seconds.items() if v} })"
        )
