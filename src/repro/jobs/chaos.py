"""Chaos harness: per-job fault plans plus worker-kill budget.

Composes the deterministic :class:`~repro.runtime.faults.FaultInjector`
with process-level violence.  A :class:`ChaosConfig` describes the *rates*;
a :class:`ChaosPlan` resolves them into one :class:`ChaosEntry` per job,
derived purely from ``split_seed(batch_seed, job_index, CHAOS_SALT)`` — so
the set of faulting jobs, their fault timesteps and their corruption
positions replay identically regardless of worker scheduling order.

Three kinds of injected trouble:

* **in-run faults** (``fault_rate``) — an armed
  :class:`~repro.runtime.faults.Fault` fires inside the worker at a random
  timestep: ``raise`` aborts the attempt with
  :class:`~repro.errors.InjectedFault`; ``nan``/``inf`` corrupt the written
  buffer and a cadence-1 :class:`~repro.runtime.health.HealthGuard`
  (attached automatically) catches it at the same instance — *before* the
  next checkpoint, so a snapshot can never capture injected corruption and
  retry-from-checkpoint stays bit-identical.
* **engine breakage** (``break_rate``) — the worker runs under
  :func:`~repro.runtime.faults.break_engine`, making the fused compiler
  raise; exercises the engine ladder and feeds the pool's circuit breaker.
* **worker kills** (``kill_workers``) — the pool supervisor SIGKILLs up to
  that many attempt-0 workers, each as soon as its job has persisted its
  first checkpoint (guaranteeing the kill lands mid-run *and* that the
  retry is a genuine resume, not a restart).

Faults and breakage arm on attempt 0 only: a retry must make forward
progress, and the chaos gate's contract — every job completes with
receivers bit-identical to a fault-free serial run — depends on retries
running clean from the recovered checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional, Tuple

import numpy as np

from ..runtime.faults import split_seed

__all__ = ["ChaosConfig", "ChaosEntry", "ChaosPlan", "CHAOS_SALT"]

#: spawn-key salt separating the chaos substream from retry/fault streams
CHAOS_SALT = 0xC405


@dataclass(frozen=True)
class ChaosConfig:
    """Rates and budgets; resolved per job by :class:`ChaosPlan`."""

    #: fraction of jobs that get one injected in-run fault on attempt 0
    fault_rate: float = 0.0
    #: fault kinds drawn from (uniformly, per faulting job)
    kinds: Tuple[str, ...] = ("raise", "nan")
    #: fraction of jobs whose attempt 0 runs with a broken fused compiler
    break_rate: float = 0.0
    #: number of attempt-0 workers the supervisor SIGKILLs (after their
    #: first checkpoint lands on disk)
    kill_workers: int = 0

    def __post_init__(self):
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= self.break_rate <= 1.0:
            raise ValueError("break_rate must be in [0, 1]")
        if self.kill_workers < 0:
            raise ValueError("kill_workers must be >= 0")
        for kind in self.kinds:
            if kind not in ("raise", "nan", "inf"):
                raise ValueError(f"unknown fault kind {kind!r}")

    @property
    def active(self) -> bool:
        return self.fault_rate > 0 or self.break_rate > 0 or self.kill_workers > 0


@dataclass
class ChaosEntry:
    """Resolved chaos decisions for one job (picklable; crosses into the
    worker process)."""

    #: Fault constructor kwargs, or None
    fault: Optional[dict] = None
    #: seed of the injector's corruption stream
    fault_seed: int = 0
    break_fused: bool = False

    @property
    def needs_guard(self) -> bool:
        """Corruption faults need a cadence-1 health guard to be caught."""
        return self.fault is not None and self.fault.get("kind") in ("nan", "inf")


@dataclass
class ChaosPlan:
    """Deterministic per-job resolution of a :class:`ChaosConfig`."""

    config: ChaosConfig
    batch_seed: int = 0
    _entries: dict = dc_field(default_factory=dict)

    def entry(self, job_index: int, nt: int) -> ChaosEntry:
        """The chaos entry of job *job_index* (cached; depends only on
        ``(batch_seed, job_index, nt)``)."""
        key = (job_index, nt)
        if key in self._entries:
            return self._entries[key]
        rng = np.random.default_rng(split_seed(self.batch_seed, job_index, CHAOS_SALT))
        entry = ChaosEntry(fault_seed=split_seed(self.batch_seed, job_index))
        if rng.random() < self.config.fault_rate:
            kind = self.config.kinds[int(rng.integers(0, len(self.config.kinds)))]
            # fire somewhere in the middle 80% of the run: late enough that
            # checkpoints usually exist, early enough that work remains
            t = int(rng.integers(max(1, nt // 10), max(2, nt)))
            entry.fault = {"t": t, "kind": kind, "message": "chaos fault"}
        entry.break_fused = bool(rng.random() < self.config.break_rate)
        self._entries[key] = entry
        return entry
