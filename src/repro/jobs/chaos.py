"""Chaos harness: per-job fault plans plus worker-kill budget.

Composes the deterministic :class:`~repro.runtime.faults.FaultInjector`
with process-level violence.  A :class:`ChaosConfig` describes the *rates*;
a :class:`ChaosPlan` resolves them into one :class:`ChaosEntry` per job,
derived purely from ``split_seed(batch_seed, job_index, CHAOS_SALT)`` — so
the set of faulting jobs, their fault timesteps and their corruption
positions replay identically regardless of worker scheduling order.

Three kinds of injected trouble:

* **in-run faults** (``fault_rate``) — an armed
  :class:`~repro.runtime.faults.Fault` fires inside the worker at a random
  timestep: ``raise`` aborts the attempt with
  :class:`~repro.errors.InjectedFault`; ``nan``/``inf`` corrupt the written
  buffer and a cadence-1 :class:`~repro.runtime.health.HealthGuard`
  (attached automatically) catches it at the same instance — *before* the
  next checkpoint, so a snapshot can never capture injected corruption and
  retry-from-checkpoint stays bit-identical.
* **silent data corruption** (``sdc_rate``) — an armed ``bitflip`` fault
  rewrites the exponent field of one just-written value to a seeded
  high-but-finite pattern (:func:`~repro.runtime.faults.flip_finite`): no
  NaN, no Inf, nothing the health guard can see.  An
  :class:`~repro.runtime.abft.ABFTGuard` (attached automatically) catches
  the violated amplitude invariant at the next containment-unit boundary
  and re-executes just that tile from its entry micro-snapshot — the batch
  completes bit-identical to a fault-free run.
* **engine breakage** (``break_rate``) — the worker runs under
  :func:`~repro.runtime.faults.break_engine`, making the fused compiler
  raise; exercises the engine ladder and feeds the pool's circuit breaker.
* **worker kills** (``kill_workers``) — the pool supervisor SIGKILLs up to
  that many attempt-0 workers, each as soon as its job has persisted its
  first checkpoint (guaranteeing the kill lands mid-run *and* that the
  retry is a genuine resume, not a restart).
* **daemon hangs** (``hang_workers``) — the daemons of the first that many
  jobs wedge on attempt 0: heartbeats stop and the daemon sleeps
  ``hang_seconds``, simulating a livelock below the job deadline.  The
  supervisor's heartbeat liveness check must detect the silence, SIGKILL
  the daemon, prefork a replacement and retry the job — a hang must cost
  one heartbeat timeout, never a stalled lane.
* **poison jobs** (``poison_jobs``) — the first that many jobs hard-exit
  (``os._exit``) every daemon they are dispatched to, on *every* attempt.
  This is the pathology quarantine exists for: the supervisor must stop
  retrying after ``poison_threshold`` consecutive crashes and quarantine
  the job with forensics instead of burning the replacement budget.
* **supervisor kill** (``kill_supervisor_after``) — the *supervisor*
  SIGKILLs itself once that many jobs have reached a terminal state,
  simulating an OOM-killed parent mid-batch.  Exercised from a subprocess:
  the orphaned batch directory must then resume via ``JobPool.resume`` /
  ``--resume`` to 100% completion, bit-identical.

Faults, breakage and hangs arm on attempt 0 only: a retry must make
forward progress, and the chaos gate's contract — every job completes with
receivers bit-identical to a fault-free serial run — depends on retries
running clean from the recovered checkpoint.  Poison jobs are the
deliberate exception (a poison job is one that *never* stops crashing),
which is why their terminal state is quarantine, not completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional, Tuple

import numpy as np

from ..runtime.faults import split_seed

__all__ = ["ChaosConfig", "ChaosEntry", "ChaosPlan", "CHAOS_SALT"]

#: spawn-key salt separating the chaos substream from retry/fault streams
CHAOS_SALT = 0xC405


@dataclass(frozen=True)
class ChaosConfig:
    """Rates and budgets; resolved per job by :class:`ChaosPlan`."""

    #: fraction of jobs that get one injected in-run fault on attempt 0
    fault_rate: float = 0.0
    #: fault kinds drawn from (uniformly, per faulting job)
    kinds: Tuple[str, ...] = ("raise", "nan")
    #: fraction of jobs that get one injected finite bit-flip (silent data
    #: corruption) on attempt 0; detected by the auto-attached ABFT guard
    sdc_rate: float = 0.0
    #: fraction of jobs whose attempt 0 runs with a broken fused compiler
    break_rate: float = 0.0
    #: number of attempt-0 workers the supervisor SIGKILLs (after their
    #: first checkpoint lands on disk)
    kill_workers: int = 0
    #: the daemons of the first this many jobs (by submission index) wedge
    #: on attempt 0: heartbeats stop and the daemon sleeps ``hang_seconds``
    hang_workers: int = 0
    #: how long a chaos-hung daemon sleeps (it resumes normal service
    #: afterwards, so an undetected hang degrades to slowness, not deadlock)
    hang_seconds: float = 30.0
    #: the first this many jobs hard-exit every daemon they run on, on
    #: every attempt — the quarantine pathology
    poison_jobs: int = 0
    #: SIGKILL the supervisor itself once this many jobs are terminal
    #: (None = never); simulates an OOM-killed parent for resume tests
    kill_supervisor_after: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= self.sdc_rate <= 1.0:
            raise ValueError("sdc_rate must be in [0, 1]")
        if not 0.0 <= self.break_rate <= 1.0:
            raise ValueError("break_rate must be in [0, 1]")
        if self.kill_workers < 0:
            raise ValueError("kill_workers must be >= 0")
        if self.hang_workers < 0:
            raise ValueError("hang_workers must be >= 0")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.poison_jobs < 0:
            raise ValueError("poison_jobs must be >= 0")
        if self.kill_supervisor_after is not None and self.kill_supervisor_after < 1:
            raise ValueError("kill_supervisor_after must be >= 1 (or None)")
        for kind in self.kinds:
            if kind not in ("raise", "nan", "inf", "bitflip"):
                raise ValueError(f"unknown fault kind {kind!r}")

    @property
    def active(self) -> bool:
        return (
            self.fault_rate > 0
            or self.sdc_rate > 0
            or self.break_rate > 0
            or self.kill_workers > 0
            or self.hang_workers > 0
            or self.poison_jobs > 0
            or self.kill_supervisor_after is not None
        )


@dataclass
class ChaosEntry:
    """Resolved chaos decisions for one job (picklable; crosses into the
    worker process)."""

    #: Fault constructor kwargs, or None
    fault: Optional[dict] = None
    #: seed of the injector's corruption stream
    fault_seed: int = 0
    break_fused: bool = False
    #: > 0 ⇒ the attempt-0 daemon wedges (heartbeats stop) for this long
    hang_seconds: float = 0.0
    #: True ⇒ the job hard-exits its daemon on every attempt (quarantine
    #: fodder; daemon-only — the serial executor ignores it)
    poison: bool = False

    @property
    def needs_guard(self) -> bool:
        """Corruption faults need a cadence-1 health guard to be caught."""
        return self.fault is not None and self.fault.get("kind") in ("nan", "inf")

    @property
    def needs_abft(self) -> bool:
        """Finite bit-flips are invisible to the NaN/Inf guard; only the
        ABFT amplitude invariant detects them."""
        return self.fault is not None and self.fault.get("kind") == "bitflip"


@dataclass
class ChaosPlan:
    """Deterministic per-job resolution of a :class:`ChaosConfig`."""

    config: ChaosConfig
    batch_seed: int = 0
    _entries: dict = dc_field(default_factory=dict)

    def entry(self, job_index: int, nt: int) -> ChaosEntry:
        """The chaos entry of job *job_index* (cached; depends only on
        ``(batch_seed, job_index, nt)``)."""
        key = (job_index, nt)
        if key in self._entries:
            return self._entries[key]
        rng = np.random.default_rng(split_seed(self.batch_seed, job_index, CHAOS_SALT))
        entry = ChaosEntry(fault_seed=split_seed(self.batch_seed, job_index))
        if rng.random() < self.config.fault_rate:
            kind = self.config.kinds[int(rng.integers(0, len(self.config.kinds)))]
            # fire somewhere in the middle 80% of the run: late enough that
            # checkpoints usually exist, early enough that work remains
            t = int(rng.integers(max(1, nt // 10), max(2, nt)))
            entry.fault = {"t": t, "kind": kind, "message": "chaos fault"}
        entry.break_fused = bool(rng.random() < self.config.break_rate)
        # the sdc draw comes after the legacy draws so adding it does not
        # reshuffle fault decisions of pre-existing chaos configurations;
        # an in-run fault on the same job takes precedence (one armed fault
        # per attempt keeps attribution unambiguous)
        if rng.random() < self.config.sdc_rate and entry.fault is None:
            t = int(rng.integers(max(1, nt // 10), max(2, nt)))
            entry.fault = {"t": t, "kind": "bitflip", "message": "chaos sdc"}
        # hang/poison target the first N submission indices: budgets, not
        # rates, so a test or smoke names exactly how many lanes suffer
        if job_index < self.config.hang_workers:
            entry.hang_seconds = float(self.config.hang_seconds)
        entry.poison = job_index < self.config.poison_jobs
        self._entries[key] = entry
        return entry
