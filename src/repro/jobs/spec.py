"""Job model of the batch-execution service.

A :class:`JobSpec` is the *complete, picklable* description of one
propagation experiment — example physics, schedule, engine, timestep count
and a seed that deterministically perturbs the source position (a batch of
specs with distinct seeds is a miniature seismic survey: many independent
shots over one model).  Everything a worker process needs to run the job is
derivable from the spec alone, which is what makes retry-on-a-fresh-process
and the fault-free serial re-run of the chaos gate possible.

:class:`AttemptRecord`, :class:`JobResult` and :class:`BatchReport` are the
result-side mirror: per-attempt history (what ran, what failed, where it
resumed from), the terminal per-job outcome, and the whole-batch summary the
CLI and benchmark serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import List, Optional

import numpy as np

__all__ = [
    "EXAMPLES",
    "SCHEDULES",
    "JOB_ENGINES",
    "STATUSES",
    "JobSpec",
    "AttemptRecord",
    "JobResult",
    "BatchReport",
]

EXAMPLES = ("acoustic", "tti", "elastic")
SCHEDULES = ("naive", "spatial", "wavefront")
JOB_ENGINES = ("fused", "kernel", "interp")

#: terminal job states: ``completed`` (receivers produced), ``timeout``
#: (deadline exceeded, killed), ``exhausted`` (retry budget spent)
STATUSES = ("completed", "timeout", "exhausted")


@dataclass(frozen=True)
class JobSpec:
    """One propagation job: example + schedule + engine + nt + seed.

    Parameters
    ----------
    job_id:
        Unique name within the batch (used for the job's working directory).
    example:
        Which paper propagator to run (``acoustic``/``tti``/``elastic``) on
        the small verification grid.
    nt:
        Number of timesteps.
    schedule:
        Traversal: ``naive``, ``spatial`` or ``wavefront``.
    engine:
        Sweep engine requested (the ladder may degrade it, and the pool's
        circuit breaker may reroute it before dispatch).
    seed:
        Deterministically perturbs the source position inside the model, so
        distinct seeds are distinct shots of a survey.
    deadline:
        Optional total wall-clock budget in seconds, measured from the
        job's first dispatch across all attempts; exceeded ⇒ the running
        worker is killed and the job reports ``timeout``.
    max_attempts:
        Retry budget (total attempts, first one included).
    checkpoint_every:
        Snapshot cadence in timesteps (wavefront runs round up to the next
        time-tile boundary).
    """

    job_id: str
    example: str = "acoustic"
    nt: int = 16
    schedule: str = "wavefront"
    engine: str = "fused"
    seed: int = 0
    deadline: Optional[float] = None
    max_attempts: int = 3
    checkpoint_every: int = 4

    def __post_init__(self):
        if self.example not in EXAMPLES:
            raise ValueError(
                f"unknown example {self.example!r}; expected one of {EXAMPLES}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; expected one of {SCHEDULES}"
            )
        if self.engine not in JOB_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {JOB_ENGINES}"
            )
        if self.nt < 1:
            raise ValueError("nt must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")


@dataclass
class AttemptRecord:
    """What one attempt of one job did."""

    attempt: int
    started: float
    ended: float = 0.0
    #: "completed" | "fault" (worker reported a structured failure) |
    #: "crash" (worker died without reporting) | "timeout"
    outcome: str = ""
    #: one-line summary of the failure (type + message), "" on success
    error: str = ""
    #: engine the attempt actually executed with ("" when it never reported)
    engine: str = ""
    #: timestep the attempt resumed from (None = started from scratch)
    resumed_from: Optional[int] = None
    #: True when the dispatcher downgraded schedule/engine under deadline
    #: pressure or a tripped circuit breaker
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "started": self.started,
            "ended": self.ended,
            "outcome": self.outcome,
            "error": self.error,
            "engine": self.engine,
            "resumed_from": self.resumed_from,
            "degraded": self.degraded,
        }


@dataclass
class JobResult:
    """Terminal outcome of one job."""

    spec: JobSpec
    status: str
    #: receiver traces (``None`` unless status == "completed")
    receivers: Optional[np.ndarray] = None
    #: the terminal error (JobTimeoutError / RetryExhaustedError), if any
    error: Optional[BaseException] = None
    attempts: List[AttemptRecord] = dc_field(default_factory=list)
    #: engine the successful attempt ran with
    engine: str = ""
    #: wall-clock seconds from first dispatch to terminal state
    elapsed: float = 0.0
    #: fused→kernel→interp fallbacks the successful attempt reported
    fallbacks: List[dict] = dc_field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "completed"

    def to_dict(self) -> dict:
        return {
            "job_id": self.spec.job_id,
            "example": self.spec.example,
            "schedule": self.spec.schedule,
            "nt": self.spec.nt,
            "seed": self.spec.seed,
            "status": self.status,
            "engine": self.engine,
            "elapsed": self.elapsed,
            "error": f"{type(self.error).__name__}: {self.error}" if self.error else "",
            "attempts": [a.to_dict() for a in self.attempts],
            "fallbacks": list(self.fallbacks),
        }


@dataclass
class BatchReport:
    """Whole-batch summary: per-job results in submission order + totals."""

    results: List[JobResult]
    wall_seconds: float
    #: chronological pool events: {"ts", "kind", "job", ...}
    events: List[dict] = dc_field(default_factory=list)
    workers: int = 0
    kills: int = 0

    @property
    def completed(self) -> int:
        return sum(r.ok for r in self.results)

    @property
    def retries(self) -> int:
        return sum(max(0, len(r.attempts) - 1) for r in self.results)

    @property
    def completion_rate(self) -> float:
        return self.completed / len(self.results) if self.results else 0.0

    @property
    def throughput(self) -> float:
        """Completed jobs per second of batch wall-time."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def ok(self) -> bool:
        """Every submitted job reached ``completed`` (the zero-lost-jobs gate)."""
        return bool(self.results) and all(r.ok for r in self.results)

    def result_for(self, job_id: str) -> JobResult:
        for r in self.results:
            if r.spec.job_id == job_id:
                return r
        raise KeyError(job_id)

    def to_dict(self) -> dict:
        return {
            "jobs": [r.to_dict() for r in self.results],
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "completed": self.completed,
            "retries": self.retries,
            "kills": self.kills,
            "completion_rate": self.completion_rate,
            "throughput_jobs_per_s": self.throughput,
            "ok": self.ok,
        }
