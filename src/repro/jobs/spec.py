"""Job model of the batch-execution service.

A :class:`JobSpec` is the *complete, picklable* description of one
propagation experiment — example physics, schedule, engine, timestep count
and a seed that deterministically perturbs the source position (a batch of
specs with distinct seeds is a miniature seismic survey: many independent
shots over one model).  Everything a worker process needs to run the job is
derivable from the spec alone, which is what makes retry-on-a-fresh-process
and the fault-free serial re-run of the chaos gate possible.

:class:`AttemptRecord`, :class:`JobResult` and :class:`BatchReport` are the
result-side mirror: per-attempt history (what ran, what failed, where it
resumed from), the terminal per-job outcome, and the whole-batch summary the
CLI and benchmark serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "EXAMPLES",
    "SCHEDULES",
    "JOB_ENGINES",
    "STATUSES",
    "LANES",
    "PHASE_KEYS",
    "JobSpec",
    "AttemptRecord",
    "JobResult",
    "BatchReport",
]

EXAMPLES = ("acoustic", "tti", "elastic")
SCHEDULES = ("naive", "spatial", "wavefront")
JOB_ENGINES = ("fused", "kernel", "interp")

#: priority lanes of the streaming admission front-end, best first: within
#: the ready queue every ``interactive`` job dispatches before any ``batch``
#: job, which dispatches before any ``bulk`` job (FIFO within a lane)
LANES = ("interactive", "batch", "bulk")

#: per-attempt cost centres recorded by the warm workers: ``spawn``
#: (dispatch-to-receipt latency — fork + queueing on a cold worker, pipe
#: latency on a warm one), ``compile`` (IR derivation, kernel binding, step
#: plans, preflight), ``compute`` (stencil + sparse operators), ``io``
#: (checkpoints + health guards)
PHASE_KEYS = ("spawn", "compile", "compute", "io")

#: terminal job states: ``completed`` (receivers produced), ``timeout``
#: (deadline exceeded, killed), ``exhausted`` (retry budget spent),
#: ``quarantined`` (poison job: repeatedly crashed fresh daemons),
#: ``interrupted`` (batch drained before the job finished — resumable)
STATUSES = ("completed", "timeout", "exhausted", "quarantined", "interrupted")


@dataclass(frozen=True)
class JobSpec:
    """One propagation job: example + schedule + engine + nt + seed.

    Parameters
    ----------
    job_id:
        Unique name within the batch (used for the job's working directory).
    example:
        Which paper propagator to run (``acoustic``/``tti``/``elastic``) on
        the small verification grid.
    nt:
        Number of timesteps.
    schedule:
        Traversal: ``naive``, ``spatial`` or ``wavefront``.
    engine:
        Sweep engine requested (the ladder may degrade it, and the pool's
        circuit breaker may reroute it before dispatch).
    seed:
        Deterministically perturbs the source position inside the model, so
        distinct seeds are distinct shots of a survey.
    deadline:
        Optional total wall-clock budget in seconds, measured from the
        job's first dispatch across all attempts; exceeded ⇒ the running
        worker is killed and the job reports ``timeout``.
    max_attempts:
        Retry budget (total attempts, first one included).
    checkpoint_every:
        Snapshot cadence in timesteps (wavefront runs round up to the next
        time-tile boundary).
    tenant:
        Admission-quota bucket: a pool constructed with ``tenant_quota=N``
        admits at most N unfinished jobs per tenant at a time, so one
        streaming client cannot starve the others.
    lane:
        Priority lane (see :data:`LANES`): ``interactive`` jobs dispatch
        before ``batch`` jobs, which dispatch before ``bulk`` jobs.
    """

    job_id: str
    example: str = "acoustic"
    nt: int = 16
    schedule: str = "wavefront"
    engine: str = "fused"
    seed: int = 0
    deadline: Optional[float] = None
    max_attempts: int = 3
    checkpoint_every: int = 4
    tenant: str = "default"
    lane: str = "batch"

    def __post_init__(self):
        if self.example not in EXAMPLES:
            raise ValueError(
                f"unknown example {self.example!r}; expected one of {EXAMPLES}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; expected one of {SCHEDULES}"
            )
        if self.engine not in JOB_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {JOB_ENGINES}"
            )
        if self.nt < 1:
            raise ValueError("nt must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.lane not in LANES:
            raise ValueError(f"unknown lane {self.lane!r}; expected one of {LANES}")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")

    @property
    def lane_priority(self) -> int:
        return LANES.index(self.lane)

    def to_dict(self) -> dict:
        """JSON-serialisable form, sufficient to reconstruct the spec —
        what the batch journal's ``admit`` records persist."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Inverse of :meth:`to_dict` (unknown keys from newer journal
        versions are ignored rather than fatal)."""
        from dataclasses import fields

        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class AttemptRecord:
    """What one attempt of one job did."""

    attempt: int
    started: float
    ended: float = 0.0
    #: "completed" | "fault" (worker reported a structured failure) |
    #: "sdc" (silent data corruption: the worker's ABFT guard or shm
    #: checksum gate raised SilentCorruptionError — retried at flat backoff,
    #: never counted toward poison quarantine) |
    #: "crash" (worker died without reporting) | "timeout" |
    #: "hang" (daemon went heartbeat-silent and was killed)
    outcome: str = ""
    #: one-line summary of the failure (type + message), "" on success
    error: str = ""
    #: engine the attempt actually executed with ("" when it never reported)
    engine: str = ""
    #: timestep the attempt resumed from (None = started from scratch)
    resumed_from: Optional[int] = None
    #: True when the dispatcher downgraded schedule/engine under deadline
    #: pressure or a tripped circuit breaker
    degraded: bool = False
    #: warm-worker id the attempt ran on (None = serial in-process)
    worker: Optional[int] = None
    #: True when the attempt ran on a worker whose caches were already warm
    #: (it had completed at least one prior job)
    warm: bool = False
    #: per-attempt cost breakdown over :data:`PHASE_KEYS` (empty until the
    #: worker reports)
    phases: dict = dc_field(default_factory=dict)
    #: kernel/step cache activity of the attempt, e.g.
    #: ``{"kernel_hits": 4, "kernel_misses": 0, "step_hits": 16, ...}``
    caches: dict = dc_field(default_factory=dict)
    #: serialized span-tree payload of the attempt (tracing on), already
    #: stamped with its clock offset — consumed by
    #: :func:`repro.telemetry.merge.merge_batch_trace`; deliberately kept
    #: out of :meth:`to_dict` (it is trace-file material, not report JSON)
    trace: Optional[dict] = None

    @property
    def seconds(self) -> float:
        return max(0.0, self.ended - self.started)

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "started": self.started,
            "ended": self.ended,
            "outcome": self.outcome,
            "error": self.error,
            "engine": self.engine,
            "resumed_from": self.resumed_from,
            "degraded": self.degraded,
            "worker": self.worker,
            "warm": self.warm,
            "phases": dict(self.phases),
            "caches": dict(self.caches),
        }


@dataclass
class JobResult:
    """Terminal outcome of one job."""

    spec: JobSpec
    status: str
    #: receiver traces (``None`` unless status == "completed")
    receivers: Optional[np.ndarray] = None
    #: the terminal error (JobTimeoutError / RetryExhaustedError), if any
    error: Optional[BaseException] = None
    attempts: List[AttemptRecord] = dc_field(default_factory=list)
    #: engine the successful attempt ran with
    engine: str = ""
    #: wall-clock seconds from first dispatch to terminal state
    elapsed: float = 0.0
    #: fused→kernel→interp fallbacks the successful attempt reported
    fallbacks: List[dict] = dc_field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "completed"

    def to_dict(self) -> dict:
        return {
            "job_id": self.spec.job_id,
            "example": self.spec.example,
            "schedule": self.spec.schedule,
            "nt": self.spec.nt,
            "seed": self.spec.seed,
            "tenant": self.spec.tenant,
            "lane": self.spec.lane,
            "status": self.status,
            "engine": self.engine,
            "elapsed": self.elapsed,
            "error": f"{type(self.error).__name__}: {self.error}" if self.error else "",
            "attempts": [a.to_dict() for a in self.attempts],
            "fallbacks": list(self.fallbacks),
        }


@dataclass
class BatchReport:
    """Whole-batch summary: per-job results in submission order + totals."""

    results: List[JobResult]
    wall_seconds: float
    #: chronological pool events: {"ts", "kind", "job", ...}
    events: List[dict] = dc_field(default_factory=list)
    workers: int = 0
    kills: int = 0
    #: worker processes spawned over the batch (initial prefork + crash
    #: replacements); 0 in serial mode
    workers_spawned: int = 0
    #: True when the batch was gracefully drained (SIGTERM/SIGINT) before
    #: every job finished — the journal + checkpoints make it resumable
    drained: bool = False
    #: True when this report came from a journal-resumed supervisor
    resumed: bool = False
    #: daemons killed for heartbeat silence (livelocked/wedged, replaced)
    hung_workers: int = 0
    #: rendered StreamAdmissionErrors — spec streams that raised mid-pull
    #: (their admitted jobs were drained; un-admitted jobs never existed)
    stream_errors: List[str] = dc_field(default_factory=list)
    #: exclusive supervisor wall-time buckets (admission/journal/dispatch/
    #: execute/idle/drain under a ``supervise`` root) from the pool's
    #: :class:`~repro.telemetry.metrics.PhaseAccountant`
    supervisor_seconds: Dict[str, float] = dc_field(default_factory=dict)
    #: stable batch identity (the workdir name; survives resume)
    batch_id: str = ""
    #: final :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` of
    #: the batch's metrics registry (None when instrumentation is off)
    metrics: Optional[dict] = None

    @property
    def completed(self) -> int:
        return sum(r.ok for r in self.results)

    @property
    def quarantined(self) -> int:
        return sum(r.status == "quarantined" for r in self.results)

    @property
    def interrupted(self) -> int:
        return sum(r.status == "interrupted" for r in self.results)

    @property
    def retries(self) -> int:
        return sum(max(0, len(r.attempts) - 1) for r in self.results)

    @property
    def completion_rate(self) -> float:
        return self.completed / len(self.results) if self.results else 0.0

    @property
    def throughput(self) -> float:
        """Completed jobs per second of batch wall-time."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def ok(self) -> bool:
        """Every submitted job reached ``completed`` and no spec stream
        broke mid-pull (the zero-lost-jobs gate)."""
        return (
            bool(self.results)
            and all(r.ok for r in self.results)
            and not self.stream_errors
        )

    def result_for(self, job_id: str) -> JobResult:
        for r in self.results:
            if r.spec.job_id == job_id:
                return r
        raise KeyError(job_id)

    # -- warm/cold accounting -----------------------------------------------------
    def _completed_attempts(self) -> List[AttemptRecord]:
        return [
            a
            for r in self.results
            for a in r.attempts
            if a.outcome == "completed"
        ]

    @property
    def warm_attempts(self) -> int:
        return sum(a.warm for a in self._completed_attempts())

    @property
    def cold_attempts(self) -> int:
        return sum(not a.warm for a in self._completed_attempts())

    def phase_totals(self) -> Dict[str, float]:
        """Summed per-attempt phase seconds over completed attempts, keyed
        by :data:`PHASE_KEYS` (zeros where workers never reported), plus
        the supervisor-side buckets as ``supervisor.<bucket>`` keys.

        The supervisor's ``execute`` bucket (serial in-process attempt
        time) is excluded — it is the same wall-time the attempt phases
        already account for.  In serial mode the sum reconciles the batch
        wall to ≥95%; with parallel daemons it may legitimately exceed the
        wall (attempt seconds accrue concurrently)."""
        totals = {k: 0.0 for k in PHASE_KEYS}
        for a in self._completed_attempts():
            for k in PHASE_KEYS:
                totals[k] += float(a.phases.get(k, 0.0))
        for bucket, secs in self.supervisor_seconds.items():
            if bucket != "execute":
                totals[f"supervisor.{bucket}"] = float(secs)
        return totals

    def warm_over_cold(self) -> Optional[float]:
        """Mean cold-attempt seconds over mean warm-attempt seconds for
        completed attempts — >1 means cache warmth measurably pays; None
        when either population is empty."""
        warm = [a.seconds for a in self._completed_attempts() if a.warm]
        cold = [a.seconds for a in self._completed_attempts() if not a.warm]
        if not warm or not cold:
            return None
        mean_warm = sum(warm) / len(warm)
        if mean_warm <= 0:
            return None
        return (sum(cold) / len(cold)) / mean_warm

    def to_dict(self) -> dict:
        return {
            "jobs": [r.to_dict() for r in self.results],
            "workers": self.workers,
            "workers_spawned": self.workers_spawned,
            "wall_seconds": self.wall_seconds,
            "completed": self.completed,
            "retries": self.retries,
            "kills": self.kills,
            "drained": self.drained,
            "resumed": self.resumed,
            "hung_workers": self.hung_workers,
            "quarantined": self.quarantined,
            "interrupted": self.interrupted,
            "stream_errors": list(self.stream_errors),
            "supervisor_seconds": dict(self.supervisor_seconds),
            "batch_id": self.batch_id,
            "completion_rate": self.completion_rate,
            "throughput_jobs_per_s": self.throughput,
            "warm_attempts": self.warm_attempts,
            "cold_attempts": self.cold_attempts,
            "warm_over_cold": self.warm_over_cold(),
            "phase_totals": self.phase_totals(),
            "ok": self.ok,
        }
