"""Write-ahead batch journal: the durable spine of a crash-safe batch.

PRs 2/5/6 made every *worker-side* fault domain survivable, but the
supervisor itself was a single point of failure: a ``JobPool`` parent
OOM-killed mid-batch abandoned every completed result, every in-flight
checkpoint and the batch's admission state.  The journal fixes that by
recording every state transition *before* it happens, in an append-only,
line-oriented, fsynced file (``journal.jsonl`` in the batch workdir) that a
later :meth:`repro.jobs.pool.JobPool.resume` replays to reconstruct the
batch exactly where it died.

Record format — one JSON object per line, canonical key order, with a
SHA-256 trailer over the rest of the record::

    {"kind": "admit", "seq": 3, "ts": 1723111845.031337, ..., "sha256": "<hex>"}

``ts`` is the wall-clock append time (unix seconds, covered by the digest)
— it is what lets ``python -m repro.jobs.status`` reconstruct timings and
throughput of a finished or crashed batch from the journal alone.

Record kinds, in the order a batch emits them:

* ``batch``  — batch config header: seed, workers, capacity, retry policy,
  tenant quota, journal format version.  Always record 0.
* ``shm``    — names of the published shared-memory segments, so a resumed
  supervisor can unlink what its dead predecessor leaked.
* ``admit``  — one job admitted: full spec dict, submission index, lane.
* ``attempt``— an attempt is about to dispatch (job, attempt number,
  engine, resume step).  Written *before* the pipe send — write-ahead.
* ``outcome``— an attempt ended: ``completed``/``fault``/``crash``/
  ``timeout``, error summary, and for completions the SHA-256 digest of the
  durable ``result.npz``.
* ``terminal`` — a job reached a terminal status.
* ``stream_failed`` — a user-supplied spec stream raised while pulled.
* ``sdc``    — silent data corruption detected (ABFT guard or shm
  checksum): job, attempt, detection/recovery events.  Forensics only.
* ``storage_degraded`` — checkpoint or journal storage hit ENOSPC; the
  batch continues degraded (no further checkpoints / journaling suspended).
* ``drain``  — graceful shutdown began (SIGTERM/SIGINT).
* ``resume`` — a later supervisor took over this journal.
* ``batch_end`` — the drive loop finished (possibly drained).

Torn-write recovery: :func:`load_journal` verifies every record's digest
and sequence number and stops at the first bad one.  A torn *tail* — the
expected result of SIGKILLing a writer mid-append — is simply dropped: the
replay is the longest verified prefix, and resume truncates the file back
to it before appending (so the journal never grows a corrupt interior).
The corruption is surfaced as a :class:`~repro.errors.JournalCorruptError`
on the replay object (or raised, with ``strict=True``); it is only *fatal*
when the batch header itself is unreadable.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional

from ..errors import JournalCorruptError, JournalSchemaError, StorageExhaustedError

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "JOURNAL_KINDS",
    "BatchJournal",
    "JournalReplay",
    "load_journal",
    "verify_journal_schema",
]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_VERSION = 1

#: every record ``kind`` the supervisor may emit, mapped to its replay role:
#: ``"replayed"`` kinds are consumed by :meth:`JobPool.resume` to rebuild
#: batch state; ``"audit"`` kinds are forensic markers replay ignores.
#: :func:`verify_journal_schema` checks this table against ``pool.py``'s
#: source in both directions, so schema drift fails fast in development
#: instead of silently dropping state on the next crash recovery.
JOURNAL_KINDS = {
    "batch": "replayed",
    "shm": "replayed",
    "admit": "replayed",
    "attempt": "replayed",
    "outcome": "replayed",
    "terminal": "replayed",
    "stream_failed": "audit",
    "sdc": "audit",
    "storage_degraded": "audit",
    "drain": "audit",
    "resume": "audit",
    "batch_end": "audit",
}

_EMIT_RE = r"_journal_append\(\s*['\"](\w+)['\"]"
_CONSUME_RE = r"(?:for_kind|by_job)\(\s*['\"](\w+)['\"]"

_schema_checked = False


def verify_journal_schema() -> dict:
    """Static self-check: :data:`JOURNAL_KINDS` vs the ``pool.py`` source.

    Scans the supervisor's source text for every ``_journal_append("kind",
    ...)`` emission and every ``for_kind("kind")`` / ``by_job("kind")``
    replay consumption (plus the ``replay.header`` access, which consumes
    the ``batch`` record) and asserts, in both directions, that

    * every emitted kind is declared in :data:`JOURNAL_KINDS` and every
      declared kind is emitted somewhere, and
    * the kinds replay consumes are exactly the kinds declared
      ``"replayed"``.

    Raises :class:`~repro.errors.JournalSchemaError` on any drift; returns
    ``{"emitted": ..., "consumed": ...}`` (sorted lists) when consistent.
    The check is cached per process — :class:`repro.jobs.pool.JobPool`
    construction runs it once, for free thereafter.
    """
    import re

    global _schema_checked
    source = Path(__file__).with_name("pool.py").read_text()
    emitted = set(re.findall(_EMIT_RE, source))
    consumed = set(re.findall(_CONSUME_RE, source))
    if re.search(r"replay\.header", source):
        consumed.add("batch")  # .header property reads the "batch" record

    declared = set(JOURNAL_KINDS)
    if emitted != declared:
        raise JournalSchemaError(
            "journal schema drift: emitted kinds disagree with JOURNAL_KINDS",
            missing=sorted(emitted - declared),
            unused=sorted(declared - emitted),
            detail="pool.py _journal_append() calls vs JOURNAL_KINDS table",
        )
    replayed = {k for k, role in JOURNAL_KINDS.items() if role == "replayed"}
    if consumed != replayed:
        raise JournalSchemaError(
            "journal schema drift: replay consumes different kinds than "
            "JOURNAL_KINDS declares 'replayed'",
            missing=sorted(consumed - replayed),
            unused=sorted(replayed - consumed),
            detail="pool.py resume dispatch vs JOURNAL_KINDS 'replayed' roles",
        )
    _schema_checked = True
    return {"emitted": sorted(emitted), "consumed": sorted(consumed)}


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def record_digest(record: dict) -> str:
    """Hex SHA-256 over the record *without* its ``sha256`` trailer."""
    payload = {k: v for k, v in record.items() if k != "sha256"}
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass
class JournalReplay:
    """The longest verified prefix of a journal, plus what was cut off."""

    #: verified records in sequence order (``sha256`` trailers stripped)
    records: List[dict]
    #: the corruption that ended the replay, or None for a clean file
    corruption: Optional[JournalCorruptError] = None
    #: byte offset of the end of the last good record (truncation point)
    good_bytes: int = 0

    @property
    def header(self) -> dict:
        """The ``batch`` config header (record 0)."""
        if not self.records or self.records[0].get("kind") != "batch":
            raise JournalCorruptError(
                "journal has no usable batch header", reason="missing 'batch' record"
            )
        return self.records[0]

    def for_kind(self, kind: str) -> List[dict]:
        return [r for r in self.records if r.get("kind") == kind]

    def by_job(self, kind: str) -> dict:
        """``job_id -> [records]`` of the given kind, journal order."""
        out: dict = {}
        for rec in self.records:
            if rec.get("kind") == kind:
                out.setdefault(rec["job"], []).append(rec)
        return out


def load_journal(path, strict: bool = False) -> JournalReplay:
    """Replay *path*: verify digests and sequence, stop at the first bad
    record.  ``strict=True`` raises on any corruption; the default returns
    the good prefix with the corruption attached (resume's recovery mode).
    Raises :class:`JournalCorruptError` if the file is missing."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalCorruptError(
            f"journal {path} is unreadable",
            path=str(path),
            reason=f"{type(exc).__name__}: {exc}",
        ) from exc
    records: List[dict] = []
    corruption: Optional[JournalCorruptError] = None
    offset = 0
    lineno = 0
    while offset < len(data):
        lineno += 1
        end = data.find(b"\n", offset)
        if end < 0:  # torn tail: the writer died mid-append
            corruption = JournalCorruptError(
                f"journal record {lineno} is torn (no trailing newline)",
                path=str(path),
                line=lineno,
                reason="truncated append",
            )
            break
        raw = data[offset:end]
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            if record.get("sha256") != record_digest(record):
                raise ValueError("SHA-256 trailer mismatch")
            if record.get("seq") != len(records):
                raise ValueError(
                    f"sequence break: expected {len(records)}, got {record.get('seq')}"
                )
        except ValueError as exc:
            corruption = JournalCorruptError(
                f"journal record {lineno} fails verification",
                path=str(path),
                line=lineno,
                reason=str(exc),
            )
            break
        record.pop("sha256", None)
        records.append(record)
        offset = end + 1
    if strict and corruption is not None:
        raise corruption
    return JournalReplay(records=records, corruption=corruption, good_bytes=offset)


class BatchJournal:
    """Append-only writer with per-record SHA-256 trailers and fsync.

    ``append`` is write-ahead: it returns only after the record is on disk
    (flushed, and fsynced unless ``fsync=False``), so any state transition
    journaled before it is performed is recoverable after SIGKILL.  Opening
    with ``truncate_to`` (resume) cuts a torn tail back to the last
    verified record before the first append lands.

    *metrics* (a :class:`~repro.telemetry.metrics.MetricsRegistry`)
    instruments the durability cost: the ``journal_append_seconds``
    histogram times each append inclusive of flush+fsync, and
    ``journal_records_total{kind}`` counts what was written.
    """

    def __init__(
        self,
        path,
        fsync: bool = True,
        seq_start: int = 0,
        truncate_to: Optional[int] = None,
        metrics=None,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self._seq = int(seq_start)
        self.records_written = 0
        self._m_append = self._m_records = None
        if metrics is not None:
            self._m_append = metrics.histogram(
                "journal_append_seconds",
                "write-ahead journal append latency (flush + fsync included)",
            )
            self._m_records = metrics.counter(
                "journal_records_total", "journal records appended", ("kind",)
            )
        self._fh: Optional[IO[bytes]] = open(self.path, "ab")
        if truncate_to is not None:
            self._fh.truncate(int(truncate_to))
            self._fh.seek(int(truncate_to))

    @property
    def seq(self) -> int:
        return self._seq

    def append(self, kind: str, **payload) -> dict:
        """Durably append one record; returns it (without the trailer)."""
        if self._fh is None:
            raise ValueError("journal is closed")
        t0 = time.perf_counter()
        record = {"kind": kind, "seq": self._seq, "ts": round(time.time(), 6)}
        record.update(payload)
        record["sha256"] = record_digest(record)
        try:
            self._fh.write(_canonical(record) + b"\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            raise StorageExhaustedError(
                f"no space left on device while appending to journal "
                f"{self.path.name}",
                path=str(self.path),
                op="journal_append",
            ) from exc
        self._seq += 1
        self.records_written += 1
        record.pop("sha256")
        if self._m_append is not None:
            self._m_append.observe(time.perf_counter() - t0)
            self._m_records.inc(kind=kind)
        return record

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
            except (OSError, ValueError):
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        self.close()
